//! The SIMT core (streaming multiprocessor) timing model.

use std::collections::VecDeque;
use std::sync::Arc;

use gpumem_cache::{L1AccessOutcome, L1Dcache, L1Stats};
use gpumem_config::GpuConfig;
use gpumem_trace::{OccupancyProbe, TraceCollector, TraceConfig};
use gpumem_types::{
    AccessKind, CoreId, CtaId, Cycle, FetchId, LatencyStats, MemFetch, QueueStats, SimQueue,
};

use crate::warp::WarpSlot;
use crate::{KernelProgram, WarpInstr};

/// Why a core issued nothing in a cycle (one reason recorded per stalled
/// cycle, in the priority order the paper's analysis uses: memory first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// At least one warp was blocked waiting for a load value — the
    /// paper's critical-path exposure ①.
    Memory,
    /// The LSU memory pipeline was occupied, blocking a memory instruction.
    MemPipeline,
    /// Warps were only waiting at a barrier.
    Barrier,
    /// Warps were only waiting out ALU latencies.
    Compute,
    /// No instruction was available (empty slots / all retired).
    Idle,
}

/// Aggregate counters for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Warp instructions issued (the IPC numerator).
    pub instructions: u64,
    /// ALU instructions issued.
    pub alu_instrs: u64,
    /// Shared-memory instructions issued.
    pub shared_instrs: u64,
    /// Load instructions issued.
    pub load_instrs: u64,
    /// Store instructions issued.
    pub store_instrs: u64,
    /// Barriers executed.
    pub barriers: u64,
    /// Coalesced global accesses generated (loads + stores).
    pub global_accesses: u64,
    /// Stalled cycles blamed on memory (operand not returned).
    pub stall_memory: u64,
    /// Stalled cycles blamed on a busy LSU pipeline.
    pub stall_mem_pipeline: u64,
    /// Stalled cycles blamed on barriers.
    pub stall_barrier: u64,
    /// Stalled cycles blamed on ALU latency.
    pub stall_compute: u64,
    /// Cycles with no work resident.
    pub idle_cycles: u64,
    /// CTAs retired.
    pub ctas_retired: u64,
}

impl CoreStats {
    /// Accumulates another core's counters (for per-GPU aggregation).
    pub fn merge(&mut self, other: &CoreStats) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.alu_instrs += other.alu_instrs;
        self.shared_instrs += other.shared_instrs;
        self.load_instrs += other.load_instrs;
        self.store_instrs += other.store_instrs;
        self.barriers += other.barriers;
        self.global_accesses += other.global_accesses;
        self.stall_memory += other.stall_memory;
        self.stall_mem_pipeline += other.stall_mem_pipeline;
        self.stall_barrier += other.stall_barrier;
        self.stall_compute += other.stall_compute;
        self.idle_cycles += other.idle_cycles;
        self.ctas_retired += other.ctas_retired;
    }

    /// Warp-instruction IPC.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

#[derive(Debug)]
struct CtaState {
    cta: CtaId,
    live_warps: u32,
    barrier_arrived: u32,
    warp_slots: Vec<usize>,
}

/// Cycle lower bounds a core reports to the epoch-synchronized parallel
/// engine (see [`SimtCore::epoch_bounds`]). Both are counted from "now":
/// the event cannot happen for at least this many cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochBounds {
    /// No resident CTA can retire (freeing a dispatch slot) sooner than
    /// this. `u64::MAX` when no CTA is resident.
    pub cta_retirement: u64,
    /// No currently-unfinished warp can finish sooner than this. `0`
    /// when every assigned warp has already finished.
    pub warp_finish: u64,
}

#[derive(Debug)]
struct IssueReg {
    accesses: VecDeque<MemFetch>,
}

/// Trace state owned by one core: the stage-histogram collector fed at the
/// two completion points (response acceptance and ready-hit pop) plus the
/// core's queue-occupancy probes. Lives behind an `Option<Box<_>>` so an
/// untraced run pays one never-taken branch per hook.
#[derive(Debug, Clone)]
pub struct CoreTrace {
    /// Per-stage latency histograms and slowest-fetch capture.
    pub collector: TraceCollector,
    /// LSU pipeline depth series.
    pub lsu: OccupancyProbe,
    /// L1 miss-queue depth series.
    pub l1_miss: OccupancyProbe,
}

/// One streaming multiprocessor.
///
/// Driven by the full-system simulator (or a test harness) with, per cycle:
///
/// 1. [`accept_response`](SimtCore::accept_response) for every response
///    arriving from the interconnect;
/// 2. [`cycle`](SimtCore::cycle) — wakes completed hits, feeds the L1 from
///    the LSU pipeline, and issues new warp instructions (GTO scheduling);
/// 3. draining [`pop_memory_request`](SimtCore::pop_memory_request) into
///    the interconnect while it accepts packets;
/// 4. [`observe`](SimtCore::observe) for queue statistics.
pub struct SimtCore {
    id: CoreId,
    program: Arc<dyn KernelProgram>,
    warps: Vec<WarpSlot>,
    ctas: Vec<Option<CtaState>>,
    issue_width: usize,
    l1: L1Dcache,
    lsu_queue: SimQueue<MemFetch>,
    l1_retry: Option<MemFetch>,
    issue_reg: Option<IssueReg>,
    /// Assigned warp slots in age order (GTO's "oldest" order).
    issue_order: Vec<usize>,
    last_issued: Option<usize>,
    next_fetch_seq: u64,
    age_counter: u64,
    /// Lower bound on the earliest cycle at which any warp could pass the
    /// issue pre-check. While `now < ready_lb` the whole GTO scan is
    /// provably fruitless and [`cycle`](SimtCore::cycle) skips it. Raised
    /// only by a failed scan (which proves the bound); lowered to zero by
    /// every event that can make a warp eligible (CTA assignment, load
    /// completion, barrier release), so skipping is always conservative.
    ready_lb: Cycle,
    /// Memoized stall classification. While `Some`, consecutive stalled
    /// cycles replay this class without rescanning the warp set; every
    /// mutation that can change the classification (an issued instruction,
    /// a load completion, CTA assignment or retirement, a barrier release,
    /// an issue-register transition) clears it. Time alone cannot flip a
    /// cached class: see the argument in
    /// [`classify_stall_many`](SimtCore::classify_stall_many).
    stall_cache: Option<StallKind>,
    stats: CoreStats,
    miss_latency: LatencyStats,
    trace: Option<Box<CoreTrace>>,
    /// Host-time attribution: accumulate the wall time spent in the L1
    /// (hit wake-up, port access, fills) when profiling is enabled. Never
    /// read by the timing model, so it cannot affect results.
    host_profile: bool,
    host_l1_seconds: f64,
}

impl std::fmt::Debug for SimtCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimtCore")
            .field("id", &self.id)
            .field("program", &self.program.name())
            .field("resident_ctas", &self.resident_ctas())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl SimtCore {
    /// Builds a core executing `program` under `cfg`.
    pub fn new(id: CoreId, cfg: &GpuConfig, program: Arc<dyn KernelProgram>) -> Self {
        let max_resident_ctas = cfg.core.max_ctas.min(program.max_ctas_per_core()).max(1);
        SimtCore {
            id,
            warps: (0..cfg.core.max_warps).map(|_| WarpSlot::empty()).collect(),
            ctas: (0..max_resident_ctas).map(|_| None).collect(),
            issue_width: cfg.core.issue_width,
            l1: L1Dcache::new(cfg),
            lsu_queue: SimQueue::new("lsu_pipeline", cfg.core.mem_pipeline_width),
            l1_retry: None,
            issue_reg: None,
            issue_order: Vec::new(),
            last_issued: None,
            next_fetch_seq: 0,
            age_counter: 0,
            ready_lb: Cycle::ZERO,
            stall_cache: None,
            stats: CoreStats::default(),
            miss_latency: LatencyStats::new(),
            trace: None,
            host_profile: false,
            host_l1_seconds: 0.0,
            program,
        }
    }

    /// Starts attributing host wall time spent in the L1 data cache to
    /// [`host_l1_seconds`](SimtCore::host_l1_seconds).
    /// Timing-model-invisible; enable before running.
    pub fn enable_host_profile(&mut self) {
        self.host_profile = true;
    }

    /// Host seconds spent inside the L1 since profiling was enabled.
    pub fn host_l1_seconds(&self) -> f64 {
        self.host_l1_seconds
    }

    /// Turns on fetch-lifecycle tracing. Idempotent; enable before running.
    pub fn enable_trace(&mut self, cfg: &TraceConfig) {
        if self.trace.is_none() {
            self.trace = Some(Box::new(CoreTrace {
                collector: TraceCollector::new(*cfg),
                lsu: OccupancyProbe::new(cfg),
                l1_miss: OccupancyProbe::new(cfg),
            }));
        }
    }

    /// The core's trace state, if tracing was enabled.
    pub fn trace(&self) -> Option<&CoreTrace> {
        self.trace.as_deref()
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// CTAs currently resident.
    pub fn resident_ctas(&self) -> usize {
        self.ctas.iter().filter(|c| c.is_some()).count()
    }

    /// Ids of the CTAs currently resident (diagnostics).
    pub fn resident_cta_ids(&self) -> Vec<CtaId> {
        self.ctas.iter().flatten().map(|c| c.cta).collect()
    }

    /// True if another CTA can be accepted (free CTA slot and enough free
    /// warp slots).
    pub fn can_accept_cta(&self) -> bool {
        let free_warps = self.warps.iter().filter(|w| !w.assigned).count();
        self.ctas.iter().any(|c| c.is_none()) && free_warps >= self.program.warps_per_cta() as usize
    }

    /// Places CTA `cta` onto this core.
    ///
    /// # Panics
    ///
    /// Panics if [`can_accept_cta`](SimtCore::can_accept_cta) is false.
    pub fn assign_cta(&mut self, cta: CtaId) {
        assert!(self.can_accept_cta(), "no room for CTA on {}", self.id);
        let Some(slot) = self.ctas.iter().position(|c| c.is_none()) else {
            return; // unreachable: can_accept_cta asserted above
        };
        let mut warp_slots = Vec::with_capacity(self.program.warps_per_cta() as usize);
        let mut warp_in_cta = 0;
        for (idx, w) in self.warps.iter_mut().enumerate() {
            if warp_in_cta == self.program.warps_per_cta() {
                break;
            }
            if !w.assigned {
                w.assign(cta, slot, warp_in_cta, self.age_counter);
                self.age_counter += 1;
                warp_slots.push(idx);
                warp_in_cta += 1;
            }
        }
        self.ctas[slot] = Some(CtaState {
            cta,
            live_warps: warp_in_cta,
            barrier_arrived: 0,
            warp_slots,
        });
        self.ready_lb = Cycle::ZERO;
        self.stall_cache = None;
        self.rebuild_issue_order();
    }

    fn rebuild_issue_order(&mut self) {
        let mut order: Vec<usize> = (0..self.warps.len())
            .filter(|&i| self.warps[i].assigned)
            .collect();
        order.sort_by_key(|&i| self.warps[i].age);
        self.issue_order = order;
    }

    /// True once every assigned CTA has retired.
    pub fn all_ctas_retired(&self) -> bool {
        self.ctas.iter().all(|c| c.is_none())
    }

    /// True while any memory activity is still owned by this core (LSU,
    /// retry slot, issue register or outstanding L1 misses).
    pub fn has_pending_memory(&self) -> bool {
        self.issue_reg.is_some()
            || self.l1_retry.is_some()
            || !self.lsu_queue.is_empty()
            || self.l1.outstanding_misses() > 0
            || self.l1.peek_miss().is_some()
    }

    /// L1 misses queued for the interconnect but not yet injected. Each
    /// pops into the request crossbar's ingress port one per cycle, so
    /// the epoch engine budgets ingress headroom against this backlog.
    pub fn l1_miss_queue_len(&self) -> usize {
        self.l1.miss_queue_len()
    }

    /// L1 misses in flight past the interconnect (MSHR-held). Each needs
    /// a distinct response-delivery cycle, bounding how soon this core
    /// can drain to idle.
    pub fn l1_outstanding_misses(&self) -> usize {
        self.l1.outstanding_misses()
    }

    /// Conservative cycle lower bounds for the epoch-synchronized
    /// parallel engine, derived from [`KernelProgram::warp_instr_count`].
    ///
    /// A warp can issue at most `issue_width` instructions per cycle (the
    /// greedy-then-oldest loop may re-pick the same warp), so a warp with
    /// `rem` instructions left cannot finish before
    /// `ceil(rem / issue_width)` cycles from now, and a CTA cannot retire
    /// before its slowest unfinished warp finishes. A retirement landing
    /// on the last cycle of an epoch is tolerated: the serial engine
    /// would dispatch into the freed slot no earlier than the next cycle,
    /// which is the epoch boundary where the coordinator dispatches.
    ///
    /// Programs that do not implement the hint make every unfinished warp
    /// count as 1 remaining instruction — always sound, never fast.
    pub fn epoch_bounds(&self) -> EpochBounds {
        let width = self.issue_width.max(1) as u64;
        let mut cta_retirement = u64::MAX;
        let mut warp_finish = 0u64;
        for state in self.ctas.iter().flatten() {
            // A fully-finished CTA may retire on any cycle's response
            // drain, so it bounds retirement at 1.
            let mut cta_bound = 1u64;
            for &slot in &state.warp_slots {
                let warp = &self.warps[slot];
                if !warp.assigned || warp.finished {
                    continue;
                }
                let rem = match self.program.warp_instr_count(warp.cta, warp.warp_in_cta) {
                    Some(total) => u64::from(total.saturating_sub(warp.pc)).max(1),
                    None => 1,
                };
                let bound = rem.div_ceil(width).max(1);
                cta_bound = cta_bound.max(bound);
                warp_finish = warp_finish.max(bound);
            }
            cta_retirement = cta_retirement.min(cta_bound);
        }
        EpochBounds {
            cta_retirement,
            warp_finish,
        }
    }

    /// Next fill request to inject into the interconnect, if any.
    pub fn peek_memory_request(&self) -> Option<&MemFetch> {
        self.l1.peek_miss()
    }

    /// Removes the head fill request after a successful injection.
    pub fn pop_memory_request(&mut self) -> Option<MemFetch> {
        self.l1.pop_miss()
    }

    /// Delivers a response from the memory system: fills the L1 and wakes
    /// every merged access.
    pub fn accept_response(&mut self, fetch: MemFetch, now: Cycle) {
        debug_assert_eq!(fetch.core, self.id);
        let sw = self.host_profile.then(gpumem_types::host_wall_clock);
        let completed = self.l1.fill(fetch, now);
        for done in completed {
            if let Some(lat) = done.timeline.l1_miss_latency() {
                self.miss_latency.record(lat);
            }
            if let Some(tr) = self.trace.as_deref_mut() {
                tr.collector.record_fetch(&done);
            }
            self.complete_warp_access(&done);
        }
        if let Some(sw) = sw {
            self.host_l1_seconds += sw.elapsed_seconds();
        }
    }

    fn complete_warp_access(&mut self, fetch: &MemFetch) {
        if fetch.kind != AccessKind::Load {
            return;
        }
        let slot = fetch.warp_slot as usize;
        let warp = &mut self.warps[slot];
        if !warp.assigned {
            return; // stale completion after forced teardown (tests only)
        }
        // A completed load may unblock this warp's next instruction.
        self.ready_lb = Cycle::ZERO;
        self.stall_cache = None;
        warp.complete_access(fetch.load_tag);
        if warp.finished && warp.outstanding.is_empty() {
            let cta_slot = warp.cta_slot;
            self.maybe_retire_cta(cta_slot);
        }
    }

    fn maybe_retire_cta(&mut self, cta_slot: usize) {
        let Some(state) = &self.ctas[cta_slot] else {
            return;
        };
        if state.live_warps > 0 {
            return;
        }
        let drained = state
            .warp_slots
            .iter()
            .all(|&w| self.warps[w].outstanding.is_empty());
        if !drained {
            return;
        }
        let Some(state) = self.ctas[cta_slot].take() else {
            return;
        };
        for &w in &state.warp_slots {
            self.warps[w] = WarpSlot::empty();
        }
        self.stall_cache = None;
        self.stats.ctas_retired += 1;
        self.rebuild_issue_order();
    }

    /// Advances the core one cycle.
    pub fn cycle(&mut self, now: Cycle) {
        self.stats.cycles += 1;

        // Occupancy sampling happens at pre-step state on a pure-function-
        // of-cycle cadence, so every engine (and the fast-forward backfill)
        // observes identical depths.
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.lsu.sample(now, self.lsu_queue.len() as u64);
            tr.l1_miss.sample(now, self.l1.miss_queue_len() as u64);
        }

        let sw = self.host_profile.then(gpumem_types::host_wall_clock);

        // 1. Wake loads whose L1 hit latency elapsed.
        for done in self.l1.pop_ready_hits(now) {
            if let Some(tr) = self.trace.as_deref_mut() {
                tr.collector.record_fetch(&done);
            }
            self.complete_warp_access(&done);
        }

        // 2. Feed the L1 port (one access per cycle), retry slot first.
        let candidate = self.l1_retry.take().or_else(|| self.lsu_queue.pop());
        if let Some(access) = candidate {
            match self.l1.access(access, now) {
                L1AccessOutcome::Hit
                | L1AccessOutcome::Miss { .. }
                | L1AccessOutcome::StoreAccepted => {}
                L1AccessOutcome::Blocked(fetch, _) => {
                    self.l1_retry = Some(fetch);
                }
            }
        }

        if let Some(sw) = sw {
            self.host_l1_seconds += sw.elapsed_seconds();
        }

        // 3. Drain the issue register into the LSU pipeline (one coalesced
        //    access per cycle — the coalescer's throughput).
        if let Some(reg) = &mut self.issue_reg {
            if !self.lsu_queue.is_full() {
                if let Some(access) = reg.accesses.pop_front() {
                    if let Err(e) = self.lsu_queue.push(access) {
                        // Unreachable after is_full; retry next cycle.
                        reg.accesses.push_front(e.into_inner());
                    }
                }
            }
            if reg.accesses.is_empty() {
                self.issue_reg = None;
                // The pipeline freeing up changes the classification.
                self.stall_cache = None;
            }
        }

        // 4. Issue up to `issue_width` instructions from ready warps (GTO).
        //    While `ready_lb` proves no warp can pass the issue pre-check,
        //    the scan is skipped entirely — `try_issue_warp` is
        //    side-effect-free below its pre-check, so skipping it is
        //    observationally identical to running it and failing.
        let mut issued = 0;
        if self.ready_lb <= now {
            if let Some(last) = self.last_issued {
                while issued < self.issue_width && self.try_issue_warp(last, now) {
                    issued += 1;
                }
            }
            if issued < self.issue_width {
                let order = std::mem::take(&mut self.issue_order);
                for &w in &order {
                    if issued >= self.issue_width {
                        break;
                    }
                    if Some(w) == self.last_issued {
                        continue;
                    }
                    if self.try_issue_warp(w, now) {
                        self.last_issued = Some(w);
                        issued += 1;
                    }
                }
                self.issue_order = order;
            }
        }

        if issued == 0 {
            self.classify_stall(now);
        } else {
            // Warp state changed; the memoized classification is stale.
            self.stall_cache = None;
        }
    }

    /// Attempts to issue one instruction from warp `w`; returns success.
    fn try_issue_warp(&mut self, w: usize, now: Cycle) -> bool {
        {
            let warp = &self.warps[w];
            if !warp.assigned
                || warp.finished
                || warp.at_barrier
                || warp.ready_at > now
                || warp.blocked_on_memory()
            {
                return false;
            }
        }
        // Decode (cached across blocked cycles).
        if self.warps[w].decoded.is_none() {
            let warp = &self.warps[w];
            let instr = self.program.instr(warp.cta, warp.warp_in_cta, warp.pc);
            self.warps[w].decoded = Some(instr);
        }
        let Some(decoded) = self.warps[w].decoded.as_ref() else {
            return false; // unreachable: filled just above
        };

        match decoded {
            None => {
                self.warps[w].decoded = None;
                self.finish_warp(w);
                // Retiring is not an issued instruction.
                false
            }
            Some(WarpInstr::Alu { latency }) => {
                let latency = u64::from(*latency).max(1);
                let warp = &mut self.warps[w];
                warp.decoded = None;
                warp.ready_at = now + latency;
                warp.pc += 1;
                self.stats.instructions += 1;
                self.stats.alu_instrs += 1;
                true
            }
            Some(WarpInstr::Shared { latency }) => {
                let latency = u64::from(*latency).max(1);
                let warp = &mut self.warps[w];
                warp.decoded = None;
                warp.ready_at = now + latency;
                warp.pc += 1;
                self.stats.instructions += 1;
                self.stats.shared_instrs += 1;
                true
            }
            Some(WarpInstr::Barrier) => {
                self.warps[w].decoded = None;
                self.warps[w].pc += 1;
                self.warps[w].at_barrier = true;
                self.stats.instructions += 1;
                self.stats.barriers += 1;
                let cta_slot = self.warps[w].cta_slot;
                if let Some(cta) = &mut self.ctas[cta_slot] {
                    cta.barrier_arrived += 1;
                }
                self.maybe_release_barrier(cta_slot);
                true
            }
            Some(WarpInstr::Load {
                lines,
                consume_after,
            }) => {
                if self.issue_reg.is_some() {
                    return false; // memory pipeline busy; decoded stays cached
                }
                assert!(!lines.is_empty(), "load must touch at least one line");
                let lines = lines.clone();
                let consume_after = (*consume_after).max(1);
                self.warps[w].decoded = None;
                let tag = self.warps[w].post_load(consume_after, lines.len() as u32);
                let mut accesses = VecDeque::with_capacity(lines.len());
                for line in lines {
                    let mut f =
                        MemFetch::new(self.next_fetch_id(), AccessKind::Load, line, self.id);
                    f.warp_slot = w as u32;
                    f.load_tag = tag;
                    f.timeline.issued = Some(now);
                    accesses.push_back(f);
                }
                self.stats.global_accesses += accesses.len() as u64;
                self.issue_reg = Some(IssueReg { accesses });
                self.warps[w].pc += 1;
                self.stats.instructions += 1;
                self.stats.load_instrs += 1;
                true
            }
            Some(WarpInstr::Store { lines }) => {
                if self.issue_reg.is_some() {
                    return false;
                }
                assert!(!lines.is_empty(), "store must touch at least one line");
                let lines = lines.clone();
                self.warps[w].decoded = None;
                let mut accesses = VecDeque::with_capacity(lines.len());
                for line in lines {
                    let mut f =
                        MemFetch::new(self.next_fetch_id(), AccessKind::Store, line, self.id);
                    f.warp_slot = w as u32;
                    f.timeline.issued = Some(now);
                    accesses.push_back(f);
                }
                self.stats.global_accesses += accesses.len() as u64;
                self.issue_reg = Some(IssueReg { accesses });
                self.warps[w].pc += 1;
                self.stats.instructions += 1;
                self.stats.store_instrs += 1;
                true
            }
        }
    }

    fn next_fetch_id(&mut self) -> FetchId {
        let id = (u64::from(self.id.index() as u32) << 40) | self.next_fetch_seq;
        self.next_fetch_seq += 1;
        FetchId::new(id)
    }

    fn finish_warp(&mut self, w: usize) {
        let warp = &mut self.warps[w];
        if warp.finished {
            return;
        }
        warp.finished = true;
        self.stall_cache = None;
        let cta_slot = warp.cta_slot;
        if let Some(cta) = &mut self.ctas[cta_slot] {
            debug_assert!(cta.live_warps > 0);
            cta.live_warps -= 1;
        }
        // A finishing warp may satisfy a barrier its siblings wait at.
        self.maybe_release_barrier(cta_slot);
        self.maybe_retire_cta(cta_slot);
    }

    fn maybe_release_barrier(&mut self, cta_slot: usize) {
        let Some(cta) = &self.ctas[cta_slot] else {
            return;
        };
        if cta.live_warps == 0 || cta.barrier_arrived < cta.live_warps {
            return;
        }
        let slots = cta.warp_slots.clone();
        for s in slots {
            self.warps[s].at_barrier = false;
        }
        if let Some(cta) = &mut self.ctas[cta_slot] {
            cta.barrier_arrived = 0;
        }
        // Released warps become issue candidates again.
        self.ready_lb = Cycle::ZERO;
        self.stall_cache = None;
    }

    fn classify_stall(&mut self, now: Cycle) {
        self.classify_stall_many(now, 1);
    }

    /// Records `weight` stalled cycles under the classification that holds
    /// at `now`. The classification is constant over a window proven idle
    /// by [`next_event`](SimtCore::next_event): the memory/barrier flags
    /// only change on issue or response events, and every eligible warp's
    /// `ready_at` lies at or beyond the window end.
    fn classify_stall_many(&mut self, now: Cycle, weight: u64) {
        if let Some(kind) = self.stall_cache {
            // Nothing classification-relevant changed since the cached
            // scan (every such mutation clears the cache), so the class —
            // and the exact `ready_lb` that scan computed — still hold.
            // Time alone cannot flip a cached class: a class that outranks
            // Compute ignores `now` entirely, and a cached Compute class
            // implies a free issue register, so the first cycle to reach
            // `ready_lb` issues (or retires) a warp in the scan that runs
            // before classification, clearing the cache first.
            self.bump_stall(kind, weight);
            return;
        }
        let mut any_assigned = false;
        let mut mem_blocked = false;
        let mut barrier = false;
        let mut compute = false;
        // The same scan refreshes `ready_lb`: a stalled cycle proves no
        // warp passes the issue pre-check now, and the earliest it could
        // is the minimum `ready_at` over warps blocked on time alone.
        // Warps blocked on memory, barriers or assignment need an external
        // event first, and every such event resets the bound to zero.
        let mut ready_lb = Cycle::NEVER;
        for w in &self.warps {
            if !w.assigned || w.finished {
                continue;
            }
            any_assigned = true;
            if w.blocked_on_memory() {
                mem_blocked = true;
                continue;
            }
            if w.at_barrier {
                barrier = true;
                continue;
            }
            if w.ready_at > now {
                compute = true;
            }
            if w.ready_at < ready_lb {
                ready_lb = w.ready_at;
            }
        }
        self.ready_lb = ready_lb;
        let kind = if mem_blocked {
            StallKind::Memory
        } else if any_assigned && self.issue_reg.is_some() {
            StallKind::MemPipeline
        } else if barrier {
            StallKind::Barrier
        } else if compute {
            StallKind::Compute
        } else {
            StallKind::Idle
        };
        self.stall_cache = Some(kind);
        self.bump_stall(kind, weight);
    }

    fn bump_stall(&mut self, kind: StallKind, weight: u64) {
        match kind {
            StallKind::Memory => self.stats.stall_memory += weight,
            StallKind::MemPipeline => self.stats.stall_mem_pipeline += weight,
            StallKind::Barrier => self.stats.stall_barrier += weight,
            StallKind::Compute => self.stats.stall_compute += weight,
            StallKind::Idle => self.stats.idle_cycles += weight,
        }
    }

    /// The earliest cycle at or after `now` at which this core can make
    /// progress on its own (issue an instruction, retire a warp, feed the
    /// L1 port, or surface a completed hit), or `None` if it is fully
    /// quiescent until an external response arrives.
    ///
    /// A return value of `now` means "cannot skip this cycle". A future
    /// cycle is a proof that every cycle strictly before it changes
    /// nothing but per-cycle counters, which
    /// [`fast_forward`](SimtCore::fast_forward) replays in closed form.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.l1.peek_miss().is_some()
            || self.l1_retry.is_some()
            || !self.lsu_queue.is_empty()
            || self.issue_reg.is_some()
        {
            return Some(now);
        }
        let mut earliest = self.l1.next_ready_hit();
        if earliest.is_some_and(|t| t <= now) {
            return Some(now);
        }
        // `ready_lb` substitutes for a warp scan: it is a maintained lower
        // bound on the earliest cycle any warp can pass the issue
        // pre-check (exact after a stalled cycle's scan, zero after any
        // wake-up event), and `NEVER` means no warp is blocked on time
        // alone — only an external event (which resets the bound) can
        // create a candidate. Being a lower bound it can only produce
        // spurious wake-ups, which replay stalled cycles exactly as the
        // stepped oracle executes them.
        if self.ready_lb <= now {
            return Some(now);
        }
        if self.ready_lb != Cycle::NEVER {
            earliest = Some(match earliest {
                Some(e) if e <= self.ready_lb => e,
                _ => self.ready_lb,
            });
        }
        earliest
    }

    /// Replays `cycles` consecutive stalled cycles in closed form,
    /// starting at `now`. The caller must have proven via
    /// [`next_event`](SimtCore::next_event) that the core cannot act
    /// before `now + cycles`; counters advance exactly as if
    /// [`cycle`](SimtCore::cycle) and [`observe`](SimtCore::observe) had
    /// run for each skipped cycle.
    pub fn fast_forward(&mut self, now: Cycle, cycles: u64) {
        if cycles == 0 {
            return;
        }
        self.stats.cycles += cycles;
        self.classify_stall_many(now, cycles);
        self.l1.observe_many(cycles);
        self.lsu_queue.observe_many(cycles);
        // Queue depths are provably frozen over the skipped window, so the
        // probes backfill the cadence points with the current depths.
        if let Some(tr) = self.trace.as_deref_mut() {
            let lsu_depth = self.lsu_queue.len() as u64;
            let miss_depth = self.l1.miss_queue_len() as u64;
            tr.lsu.backfill(now, cycles, lsu_depth);
            tr.l1_miss.backfill(now, cycles, miss_depth);
        }
    }

    /// Per-cycle statistics bookkeeping.
    pub fn observe(&mut self) {
        self.l1.observe();
        self.lsu_queue.observe();
    }

    /// Activity counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// L1 controller counters.
    pub fn l1_stats(&self) -> &L1Stats {
        self.l1.stats()
    }

    /// L1 miss-queue occupancy statistics.
    pub fn l1_miss_queue_stats(&self) -> &QueueStats {
        self.l1.miss_queue_stats()
    }

    /// LSU pipeline occupancy statistics.
    pub fn lsu_queue_stats(&self) -> &QueueStats {
        self.lsu_queue.stats()
    }

    /// Distribution of observed L1 miss latencies (Fig. 1's x-axis
    /// quantity, measured).
    pub fn miss_latency(&self) -> &LatencyStats {
        &self.miss_latency
    }

    /// The kernel this core runs.
    pub fn program(&self) -> &Arc<dyn KernelProgram> {
        &self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_types::LineAddr;

    /// `n_alu` ALU ops then done.
    struct AluKernel {
        n_alu: u32,
    }
    impl KernelProgram for AluKernel {
        fn name(&self) -> &str {
            "alu"
        }
        fn grid_ctas(&self) -> u32 {
            2
        }
        fn warps_per_cta(&self) -> u32 {
            2
        }
        fn instr(&self, _cta: CtaId, _warp: u32, pc: u32) -> Option<WarpInstr> {
            (pc < self.n_alu).then_some(WarpInstr::Alu { latency: 4 })
        }
    }

    /// load → dependent ALU → done, one line per (cta, warp).
    struct LoadKernel;
    impl KernelProgram for LoadKernel {
        fn name(&self) -> &str {
            "load"
        }
        fn grid_ctas(&self) -> u32 {
            1
        }
        fn warps_per_cta(&self) -> u32 {
            2
        }
        fn instr(&self, cta: CtaId, warp: u32, pc: u32) -> Option<WarpInstr> {
            match pc {
                0 => Some(WarpInstr::load_line(
                    LineAddr::new(u64::from(cta.index() as u32 * 64 + warp)),
                    1,
                )),
                1 => Some(WarpInstr::Alu { latency: 1 }),
                _ => None,
            }
        }
    }

    /// Two warps: ALU-heavy warp 0, barrier at pc 3 for both.
    struct BarrierKernel;
    impl KernelProgram for BarrierKernel {
        fn name(&self) -> &str {
            "barrier"
        }
        fn grid_ctas(&self) -> u32 {
            1
        }
        fn warps_per_cta(&self) -> u32 {
            2
        }
        fn instr(&self, _cta: CtaId, warp: u32, pc: u32) -> Option<WarpInstr> {
            match (warp, pc) {
                (0, 0..=2) => Some(WarpInstr::Alu { latency: 8 }),
                (0, 3) | (1, 0) => Some(WarpInstr::Barrier),
                (0, 4) | (1, 1) => Some(WarpInstr::Alu { latency: 1 }),
                _ => None,
            }
        }
    }

    fn core_with(program: Arc<dyn KernelProgram>) -> SimtCore {
        let cfg = GpuConfig::tiny();
        SimtCore::new(CoreId::new(0), &cfg, program)
    }

    fn run_until_done(core: &mut SimtCore, max: u64, respond_after: Option<u64>) -> u64 {
        let mut pending: Vec<(Cycle, MemFetch)> = Vec::new();
        for t in 0..max {
            let now = Cycle::new(t);
            // deliver fixed-latency responses
            let due: Vec<_> = pending
                .iter()
                .enumerate()
                .filter(|(_, (at, _))| *at <= now)
                .map(|(i, _)| i)
                .collect();
            for i in due.into_iter().rev() {
                let (_, f) = pending.remove(i);
                core.accept_response(f, now);
            }
            core.cycle(now);
            if let Some(delay) = respond_after {
                while let Some(req) = core.pop_memory_request() {
                    pending.push((now + delay, req));
                }
            }
            core.observe();
            if core.all_ctas_retired() && !core.has_pending_memory() {
                return t;
            }
        }
        panic!("did not finish in {max} cycles; stats: {:?}", core.stats());
    }

    #[test]
    fn pure_alu_kernel_completes_and_counts() {
        let mut core = core_with(Arc::new(AluKernel { n_alu: 10 }));
        core.assign_cta(CtaId::new(0));
        core.assign_cta(CtaId::new(1));
        run_until_done(&mut core, 1000, None);
        // 2 CTAs × 2 warps × 10 instructions.
        assert_eq!(core.stats().instructions, 40);
        assert_eq!(core.stats().alu_instrs, 40);
        assert_eq!(core.stats().ctas_retired, 2);
        assert!(core.all_ctas_retired());
    }

    #[test]
    fn warp_parallelism_hides_alu_latency() {
        // One warp of 10 ALU @4 takes ~40 cycles; four warps interleave.
        let mut slow = core_with(Arc::new(AluKernel { n_alu: 10 }));
        slow.assign_cta(CtaId::new(0));
        let t1 = run_until_done(&mut slow, 1000, None);

        let mut fast = core_with(Arc::new(AluKernel { n_alu: 10 }));
        fast.assign_cta(CtaId::new(0));
        fast.assign_cta(CtaId::new(1));
        let t2 = run_until_done(&mut fast, 1000, None);
        // Twice the work in well under twice the time.
        assert!(t2 < t1 * 2, "t1={t1} t2={t2}");
        assert!(fast.stats().ipc() > slow.stats().ipc());
    }

    #[test]
    fn load_kernel_round_trips_through_l1() {
        let mut core = core_with(Arc::new(LoadKernel));
        core.assign_cta(CtaId::new(0));
        run_until_done(&mut core, 2000, Some(100));
        assert_eq!(core.stats().load_instrs, 2);
        assert_eq!(core.l1_stats().load_misses, 2);
        assert!(core.stats().stall_memory > 0, "latency must expose stalls");
        let lat = core.miss_latency();
        assert_eq!(lat.count(), 2);
        assert!(lat.mean() >= 100.0, "mean {}", lat.mean());
    }

    #[test]
    fn lower_latency_finishes_faster() {
        let mut a = core_with(Arc::new(LoadKernel));
        a.assign_cta(CtaId::new(0));
        let slow = run_until_done(&mut a, 4000, Some(400));

        let mut b = core_with(Arc::new(LoadKernel));
        b.assign_cta(CtaId::new(0));
        let fast = run_until_done(&mut b, 4000, Some(10));
        assert!(fast < slow, "fast={fast} slow={slow}");
    }

    #[test]
    fn barrier_synchronizes_warps() {
        let mut core = core_with(Arc::new(BarrierKernel));
        core.assign_cta(CtaId::new(0));
        run_until_done(&mut core, 1000, None);
        assert_eq!(core.stats().barriers, 2);
        // Warp 1 reached the barrier immediately and had to wait for warp
        // 0's three 8-cycle ALU ops.
        assert!(core.stats().stall_barrier > 0 || core.stats().stall_compute > 0);
    }

    #[test]
    fn cta_occupancy_is_bounded() {
        let mut core = core_with(Arc::new(AluKernel { n_alu: 1000 }));
        // tiny() allows 2 CTAs of 2 warps on 8 warp slots.
        assert!(core.can_accept_cta());
        core.assign_cta(CtaId::new(0));
        assert!(core.can_accept_cta());
        core.assign_cta(CtaId::new(1));
        assert!(!core.can_accept_cta());
    }

    #[test]
    fn divergent_load_generates_multiple_accesses() {
        struct Gather;
        impl KernelProgram for Gather {
            fn name(&self) -> &str {
                "gather"
            }
            fn grid_ctas(&self) -> u32 {
                1
            }
            fn warps_per_cta(&self) -> u32 {
                1
            }
            fn instr(&self, _c: CtaId, _w: u32, pc: u32) -> Option<WarpInstr> {
                match pc {
                    0 => Some(WarpInstr::Load {
                        lines: (0..8).map(|i| LineAddr::new(i * 97)).collect(),
                        consume_after: 1,
                    }),
                    1 => Some(WarpInstr::Alu { latency: 1 }),
                    _ => None,
                }
            }
        }
        let mut core = core_with(Arc::new(Gather));
        core.assign_cta(CtaId::new(0));
        run_until_done(&mut core, 4000, Some(50));
        assert_eq!(core.stats().global_accesses, 8);
        assert_eq!(core.l1_stats().load_misses, 8);
    }

    #[test]
    fn stores_do_not_block_warps() {
        struct StoreKernel;
        impl KernelProgram for StoreKernel {
            fn name(&self) -> &str {
                "store"
            }
            fn grid_ctas(&self) -> u32 {
                1
            }
            fn warps_per_cta(&self) -> u32 {
                1
            }
            fn instr(&self, _c: CtaId, _w: u32, pc: u32) -> Option<WarpInstr> {
                match pc {
                    0 => Some(WarpInstr::Store {
                        lines: vec![LineAddr::new(3)],
                    }),
                    1 => Some(WarpInstr::Alu { latency: 1 }),
                    _ => None,
                }
            }
        }
        let mut core = core_with(Arc::new(StoreKernel));
        core.assign_cta(CtaId::new(0));
        // Stores flow to the miss queue; drain them with a sink.
        for t in 0..200 {
            let now = Cycle::new(t);
            core.cycle(now);
            while core.pop_memory_request().is_some() {}
            core.observe();
            if core.all_ctas_retired() && !core.has_pending_memory() {
                break;
            }
        }
        assert!(core.all_ctas_retired(), "stats {:?}", core.stats());
        assert_eq!(core.stats().store_instrs, 1);
        assert_eq!(core.stats().stall_memory, 0);
    }

    #[test]
    fn ipc_of_empty_core_is_zero() {
        let core = core_with(Arc::new(AluKernel { n_alu: 1 }));
        assert_eq!(core.stats().ipc(), 0.0);
    }
}
