//! The kernel-program abstraction executed by SIMT cores.

use gpumem_types::{CtaId, LineAddr};

/// One warp-level instruction.
///
/// Workload models emit these procedurally; they are the only interface
/// between a benchmark model and the timing simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarpInstr {
    /// An arithmetic instruction. The issuing warp becomes ready again
    /// after `latency` cycles (the in-order dependent-chain approximation);
    /// other warps hide the latency.
    Alu {
        /// Issue-to-ready latency in cycles (≥ 1).
        latency: u32,
    },
    /// A shared-memory (scratchpad) instruction; like `Alu` but accounted
    /// separately. `latency` should include any bank-conflict
    /// serialization the workload wants to model.
    Shared {
        /// Issue-to-ready latency in cycles (≥ 1).
        latency: u32,
    },
    /// A global-memory load touching `lines` distinct cache lines after
    /// coalescing (1 = fully coalesced, up to 32 = fully divergent).
    ///
    /// The loaded value is consumed by the instruction `consume_after`
    /// slots later in the warp's stream (≥ 1); until all of the load's
    /// accesses return, the warp stalls upon reaching that instruction.
    Load {
        /// Distinct cache lines touched (the coalescer's output).
        lines: Vec<LineAddr>,
        /// Distance in instructions from this load to its first use.
        consume_after: u32,
    },
    /// A global-memory store touching `lines` distinct cache lines.
    /// Fire-and-forget for the warp, but consumes LSU, L1 miss-queue,
    /// interconnect, L2 and DRAM bandwidth (write-through L1).
    Store {
        /// Distinct cache lines touched.
        lines: Vec<LineAddr>,
    },
    /// CTA-wide barrier (`__syncthreads()`): the warp waits until every
    /// live warp of its CTA arrives.
    Barrier,
}

impl WarpInstr {
    /// Convenience constructor for a fully-coalesced single-line load.
    pub fn load_line(line: LineAddr, consume_after: u32) -> Self {
        WarpInstr::Load {
            lines: vec![line],
            consume_after,
        }
    }

    /// True for loads and stores.
    pub fn is_memory(&self) -> bool {
        matches!(self, WarpInstr::Load { .. } | WarpInstr::Store { .. })
    }
}

/// A GPU kernel as a pure, procedurally-generated instruction stream.
///
/// `instr(cta, warp, pc)` must be deterministic — the simulator may call it
/// any number of times — and return `None` when warp `warp` of CTA `cta`
/// has retired its last instruction.
///
/// # Example
///
/// ```
/// use gpumem_simt::{KernelProgram, WarpInstr};
/// use gpumem_types::{CtaId, LineAddr};
///
/// /// Every warp: one load, one dependent ALU op, done.
/// struct TinyKernel;
///
/// impl KernelProgram for TinyKernel {
///     fn name(&self) -> &str { "tiny" }
///     fn grid_ctas(&self) -> u32 { 4 }
///     fn warps_per_cta(&self) -> u32 { 2 }
///     fn instr(&self, cta: CtaId, warp: u32, pc: u32) -> Option<WarpInstr> {
///         match pc {
///             0 => Some(WarpInstr::load_line(
///                 LineAddr::new(u64::from(cta.index() as u32 * 2 + warp)), 1)),
///             1 => Some(WarpInstr::Alu { latency: 4 }),
///             _ => None,
///         }
///     }
/// }
///
/// let k = TinyKernel;
/// assert!(k.instr(CtaId::new(0), 0, 0).unwrap().is_memory());
/// assert_eq!(k.instr(CtaId::new(0), 0, 2), None);
/// ```
pub trait KernelProgram: Send + Sync {
    /// Human-readable kernel name (benchmark name in reports).
    fn name(&self) -> &str;

    /// Number of CTAs in the launch grid.
    fn grid_ctas(&self) -> u32;

    /// Warps per CTA.
    fn warps_per_cta(&self) -> u32;

    /// Occupancy limit: maximum CTAs concurrently resident on one core
    /// (models shared-memory/register pressure). Defaults to unlimited —
    /// the hardware limit in [`gpumem_config::CoreConfig::max_ctas`] still
    /// applies.
    fn max_ctas_per_core(&self) -> usize {
        usize::MAX
    }

    /// The instruction at `pc` for warp `warp` of CTA `cta`, or `None` once
    /// the warp has retired.
    fn instr(&self, cta: CtaId, warp: u32, pc: u32) -> Option<WarpInstr>;

    /// Exact instruction-stream length for `warp` of `cta`: the smallest
    /// `pc` at which [`instr`](KernelProgram::instr) returns `None`, when
    /// the program can state it cheaply.
    ///
    /// The epoch-synchronized parallel engine uses this as a lower bound
    /// on how many cycles remain before a warp can finish (and so before
    /// a CTA can retire and free a dispatch slot). Returning `None` is
    /// always safe — the engine falls back to the 1-cycle bound.
    /// Implementations must not overstate the count: claiming more
    /// instructions than `instr` actually serves would let the engine
    /// free-run past a retirement it promised could not happen.
    fn warp_instr_count(&self, cta: CtaId, warp: u32) -> Option<u32> {
        let _ = (cta, warp);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(WarpInstr::load_line(LineAddr::new(0), 1).is_memory());
        assert!(WarpInstr::Store { lines: vec![] }.is_memory());
        assert!(!WarpInstr::Alu { latency: 1 }.is_memory());
        assert!(!WarpInstr::Barrier.is_memory());
        assert!(!WarpInstr::Shared { latency: 8 }.is_memory());
    }

    #[test]
    fn load_line_builds_single_access() {
        match WarpInstr::load_line(LineAddr::new(9), 3) {
            WarpInstr::Load {
                lines,
                consume_after,
            } => {
                assert_eq!(lines, vec![LineAddr::new(9)]);
                assert_eq!(consume_after, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
