//! SIMT-core substrate for the `gpumem` simulator.
//!
//! A [`SimtCore`] models one Fermi streaming multiprocessor at the level
//! the paper's experiments need: enough warp-level parallelism mechanics to
//! measure how well memory latency is *hidden*, and a faithful memory
//! front end (coalesced accesses, an LSU pipeline of Table I's "memory
//! pipeline width", and the non-blocking L1D from `gpumem-cache`).
//!
//! Workloads implement [`KernelProgram`]: a pure function from
//! `(cta, warp, pc)` to the next [`WarpInstr`]. Warps execute their streams
//! in order; loads post entries on a per-warp scoreboard and the warp
//! blocks only when reaching the instruction that *consumes* a pending
//! value — so the distance between a load and its use (chosen by the
//! workload model) sets each benchmark's intrinsic latency tolerance,
//! exactly the property Fig. 1 of the paper sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core_model;
mod program;
mod warp;

pub use core_model::{CoreStats, EpochBounds, SimtCore, StallKind};
pub use program::{KernelProgram, WarpInstr};
pub use warp::{WarpSlot, WarpState};
