//! Per-warp execution state.

use gpumem_types::{CtaId, Cycle};

use crate::WarpInstr;

/// An outstanding load instruction on a warp's scoreboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Outstanding {
    /// Tag shared by all coalesced accesses of the load.
    pub tag: u32,
    /// PC of the instruction that consumes the loaded value.
    pub consume_pc: u32,
    /// Accesses still in flight.
    pub remaining: u32,
}

/// Where a warp is in its lifecycle (exposed for diagnostics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// No CTA assigned to this hardware slot.
    Idle,
    /// Assigned and executing.
    Active,
    /// Waiting at a CTA barrier.
    AtBarrier,
    /// Retired its last instruction.
    Finished,
}

/// One hardware warp slot of a [`crate::SimtCore`].
#[derive(Debug, Clone)]
pub struct WarpSlot {
    pub(crate) cta: CtaId,
    /// Core-local CTA slot index the warp belongs to.
    pub(crate) cta_slot: usize,
    pub(crate) warp_in_cta: u32,
    pub(crate) pc: u32,
    pub(crate) ready_at: Cycle,
    pub(crate) outstanding: Vec<Outstanding>,
    pub(crate) next_tag: u32,
    pub(crate) at_barrier: bool,
    pub(crate) finished: bool,
    pub(crate) assigned: bool,
    /// Monotonic age for GTO's "oldest" ordering.
    pub(crate) age: u64,
    /// Decoded-but-not-yet-issued instruction cache.
    pub(crate) decoded: Option<Option<WarpInstr>>,
}

impl WarpSlot {
    pub(crate) fn empty() -> Self {
        WarpSlot {
            cta: CtaId::new(0),
            cta_slot: 0,
            warp_in_cta: 0,
            pc: 0,
            ready_at: Cycle::ZERO,
            outstanding: Vec::new(),
            next_tag: 0,
            at_barrier: false,
            finished: false,
            assigned: false,
            age: 0,
            decoded: None,
        }
    }

    pub(crate) fn assign(&mut self, cta: CtaId, cta_slot: usize, warp_in_cta: u32, age: u64) {
        debug_assert!(!self.assigned, "warp slot already in use");
        *self = WarpSlot {
            cta,
            cta_slot,
            warp_in_cta,
            pc: 0,
            ready_at: Cycle::ZERO,
            outstanding: Vec::new(),
            next_tag: 0,
            at_barrier: false,
            finished: false,
            assigned: true,
            age,
            decoded: None,
        };
    }

    /// The warp's lifecycle state.
    pub fn state(&self) -> WarpState {
        if !self.assigned {
            WarpState::Idle
        } else if self.finished {
            WarpState::Finished
        } else if self.at_barrier {
            WarpState::AtBarrier
        } else {
            WarpState::Active
        }
    }

    /// True if a pending load blocks the instruction at the current PC.
    pub(crate) fn blocked_on_memory(&self) -> bool {
        self.outstanding.iter().any(|o| o.consume_pc <= self.pc)
    }

    /// Registers a new outstanding load; returns its tag.
    pub(crate) fn post_load(&mut self, consume_after: u32, accesses: u32) -> u32 {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        self.outstanding.push(Outstanding {
            tag,
            // `consume_after` counts from the load's own PC, which is still
            // the current PC at issue time (pc advances after).
            consume_pc: self.pc + consume_after,
            remaining: accesses,
        });
        tag
    }

    /// Completes one access of load `tag`; returns `true` if that load is
    /// now fully satisfied.
    pub(crate) fn complete_access(&mut self, tag: u32) -> bool {
        if let Some(pos) = self.outstanding.iter().position(|o| o.tag == tag) {
            let entry = &mut self.outstanding[pos];
            debug_assert!(entry.remaining > 0);
            entry.remaining -= 1;
            if entry.remaining == 0 {
                self.outstanding.swap_remove(pos);
                return true;
            }
        }
        false
    }

    /// Number of loads still in flight.
    pub fn loads_in_flight(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_warp() -> WarpSlot {
        let mut w = WarpSlot::empty();
        w.assign(CtaId::new(1), 0, 2, 5);
        w
    }

    #[test]
    fn lifecycle_states() {
        let mut w = WarpSlot::empty();
        assert_eq!(w.state(), WarpState::Idle);
        w.assign(CtaId::new(0), 0, 0, 1);
        assert_eq!(w.state(), WarpState::Active);
        w.at_barrier = true;
        assert_eq!(w.state(), WarpState::AtBarrier);
        w.at_barrier = false;
        w.finished = true;
        assert_eq!(w.state(), WarpState::Finished);
    }

    #[test]
    fn scoreboard_blocks_only_at_consume_pc() {
        let mut w = active_warp();
        w.pc = 10;
        let tag = w.post_load(3, 2); // consume at pc 13
        w.pc = 11;
        assert!(!w.blocked_on_memory());
        w.pc = 13;
        assert!(w.blocked_on_memory());
        assert!(!w.complete_access(tag));
        assert!(w.blocked_on_memory());
        assert!(w.complete_access(tag));
        assert!(!w.blocked_on_memory());
        assert_eq!(w.loads_in_flight(), 0);
    }

    #[test]
    fn multiple_outstanding_loads_tracked_independently() {
        let mut w = active_warp();
        let t0 = w.post_load(1, 1);
        w.pc += 1;
        let t1 = w.post_load(5, 1);
        assert_ne!(t0, t1);
        assert_eq!(w.loads_in_flight(), 2);
        // At pc 1: t0's consume_pc is 1 → blocked.
        assert!(w.blocked_on_memory());
        w.complete_access(t0);
        assert!(!w.blocked_on_memory());
        w.pc = 6; // t1's consume_pc
        assert!(w.blocked_on_memory());
        w.complete_access(t1);
        assert!(!w.blocked_on_memory());
    }

    #[test]
    fn stray_completion_is_ignored() {
        let mut w = active_warp();
        assert!(!w.complete_access(42));
    }
}
