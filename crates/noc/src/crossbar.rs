//! The wormhole crossbar.
//!
//! The crossbar is decomposed into per-port state and a central fabric so
//! the parallel stepper can hand each shard exclusive ownership of exactly
//! the ports it touches:
//!
//! * [`IngressPort`] — one bounded input buffer. Written only by the
//!   component that injects on it (core `c` on the request network,
//!   partition `p` on the response network).
//! * [`EgressPort`] — one output's streaming/in-flight/ejection state.
//!   Popped only by the component that drains it.
//! * [`CrossbarFabric`] — the arbitration logic and shared counters. Its
//!   [`tick`](CrossbarFabric::tick) is the single point that reads and
//!   writes *across* ports, which is why the parallel engine runs it
//!   serially at the cycle barrier.
//!
//! [`Crossbar`] owns all three and presents the same single-threaded facade
//! as before; [`Crossbar::take_ports`] / [`Crossbar::restore_ports`] let
//! the parallel engine dismantle it for a run and reassemble it afterwards.

use std::borrow::BorrowMut;
use std::collections::VecDeque;

use gpumem_config::NocConfig;
use gpumem_types::{Cycle, MemFetch, QueueStats, SimError, SimQueue};

use crate::Packet;

/// Aggregate activity counters for a [`Crossbar`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CrossbarStats {
    /// Packets accepted at input ports.
    pub packets_injected: u64,
    /// Packets handed to receivers at ejection ports.
    pub packets_ejected: u64,
    /// Flits moved through outputs.
    pub flits_transferred: u64,
    /// Output-cycles spent streaming (for utilization: divide by
    /// `outputs × cycles`).
    pub output_busy_cycles: u64,
    /// Cycles an output had a packet ready but no ejection credit
    /// (backpressure from the receiver).
    pub credit_stall_cycles: u64,
}

impl CrossbarStats {
    /// Accumulates another crossbar's counters.
    pub fn merge(&mut self, other: &CrossbarStats) {
        self.packets_injected += other.packets_injected;
        self.packets_ejected += other.packets_ejected;
        self.flits_transferred += other.flits_transferred;
        self.output_busy_cycles += other.output_busy_cycles;
        self.credit_stall_cycles += other.credit_stall_cycles;
    }
}

/// One bounded input buffer of the crossbar.
///
/// Injection-side state only: safe to own exclusively in the shard that
/// injects on this port while the fabric is quiescent.
#[derive(Debug)]
pub struct IngressPort {
    queue: SimQueue<Packet>,
    /// Number of outputs on the fabric this port belongs to (for
    /// destination validation at injection time).
    dest_limit: usize,
    /// Packets accepted on this port (merged into
    /// [`CrossbarStats::packets_injected`]).
    injected: u64,
    /// Fault injection: the fabric will not arbitrate packets out of this
    /// port before this cycle. `Cycle::ZERO` (the default) means never
    /// held, so the field is inert unless a `ChaosConfig` drives it.
    held_until: Cycle,
    /// Destination of the head packet, mirrored out of the ring buffer
    /// (`usize::MAX` when empty) so per-cycle arbitration compares one
    /// word per port instead of dereferencing the queue front for every
    /// input × output pair. Maintained by every head mutation
    /// (`try_inject` into an empty queue, the arbitration pop,
    /// `chaos_rotate_head`).
    head_dest: usize,
}

impl IngressPort {
    fn new(cfg: &NocConfig, dest_limit: usize) -> Self {
        IngressPort {
            queue: SimQueue::new("noc_input", cfg.input_buffer_pkts),
            dest_limit,
            injected: 0,
            held_until: Cycle::ZERO,
            head_dest: usize::MAX,
        }
    }

    /// A detached buffer that is never arbitrated by any fabric: the
    /// epoch-synchronized parallel engine hands one to each partition
    /// shard so the shard can free-run `MemoryPartition::cycle` (which
    /// wants an ingress port to inject responses into) against private
    /// state, then [`drain`](IngressPort::drain)s it into the shard's
    /// epoch mailbox every local cycle.
    pub fn scratch(capacity: usize, dest_limit: usize) -> Self {
        IngressPort {
            queue: SimQueue::new("noc_input", capacity.max(1)),
            dest_limit,
            injected: 0,
            held_until: Cycle::ZERO,
            head_dest: usize::MAX,
        }
    }

    /// Removes and returns the head packet (epoch-mailbox drain; the
    /// fabric never sees a scratch port, so the shard pops it directly).
    pub fn drain(&mut self) -> Option<Packet> {
        let pkt = self.queue.pop();
        if pkt.is_some() {
            self.refresh_head();
        }
        pkt
    }

    /// Re-derives the mirrored head destination from the queue front.
    fn refresh_head(&mut self) {
        self.head_dest = self.queue.front().map_or(usize::MAX, |p| p.dest);
    }

    /// True while a chaos hold prevents the fabric from draining this port.
    pub fn held(&self, now: Cycle) -> bool {
        now < self.held_until
    }

    /// Fault injection: forbid arbitration out of this port until `until`.
    /// Holds only ever extend — a later, shorter hold must not release a
    /// longer one (notably the permanent `Cycle::NEVER` wedge fixture).
    pub fn chaos_hold(&mut self, until: Cycle) {
        self.held_until = self.held_until.max(until);
    }

    /// Fault injection: "drop" the head packet and immediately reinject it
    /// at the tail of the same buffer. Conservation-safe (the packet never
    /// leaves the port) but perturbs ordering like a retried transfer.
    pub fn chaos_rotate_head(&mut self) {
        if self.queue.len() < 2 {
            return;
        }
        if let Some(pkt) = self.queue.pop() {
            // Cannot fail: we just popped, so a slot is free.
            let _ = self.queue.push(pkt);
        }
        self.refresh_head();
    }

    /// True if this port can accept a packet this cycle.
    pub fn can_inject(&self) -> bool {
        !self.queue.is_full()
    }

    /// Offers `packet` to this input buffer.
    ///
    /// # Errors
    ///
    /// Hands the packet back if the buffer is full.
    ///
    /// # Panics
    ///
    /// Panics if the packet's destination is out of range.
    #[allow(clippy::result_large_err)] // the rejected packet is handed back by design
    pub fn try_inject(&mut self, packet: Packet) -> Result<(), Packet> {
        assert!(packet.dest < self.dest_limit, "destination out of range");
        let dest = packet.dest;
        match self.queue.push(packet) {
            Ok(()) => {
                self.injected += 1;
                if self.queue.len() == 1 {
                    self.head_dest = dest;
                }
                Ok(())
            }
            Err(e) => Err(e.into_inner()),
        }
    }

    /// Queued packets.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when the buffer holds no packet.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Per-cycle occupancy bookkeeping.
    pub fn observe(&mut self) {
        self.queue.observe();
    }

    /// Batch bookkeeping for `cycles` quiescent cycles.
    pub fn observe_many(&mut self, cycles: u64) {
        self.queue.observe_many(cycles);
    }

    /// Occupancy statistics of this input buffer.
    pub fn queue_stats(&self) -> &QueueStats {
        self.queue.stats()
    }
}

/// One output's worth of crossbar state: the packet being streamed, the
/// hop pipeline, and the bounded ejection queue the receiver drains.
///
/// Ejection-side state only: safe to own exclusively in the shard that
/// drains this port while the fabric is quiescent.
#[derive(Debug)]
pub struct EgressPort {
    /// Packet currently being streamed and its remaining flits.
    streaming: Option<(Packet, u64)>,
    /// Round-robin pointer over inputs.
    rr: usize,
    /// Packets that finished streaming and are traversing the pipeline
    /// (FIFO per output; arrivals are naturally ordered).
    in_flight: VecDeque<(Cycle, Packet)>,
    /// Delivered packets awaiting the receiver.
    ejection: SimQueue<Packet>,
    /// Free slots the output may still claim in its ejection queue
    /// (ejection capacity minus queued, streaming and in-flight packets).
    credits: usize,
    /// Packets popped from this port (merged into
    /// [`CrossbarStats::packets_ejected`]).
    ejected: u64,
}

impl EgressPort {
    /// Running count of packets popped from this port's ejection queue.
    /// A change signals that a receiver returned a credit (the engine
    /// uses this to re-arm a sleeping crossbar).
    pub fn ejected_count(&self) -> u64 {
        self.ejected
    }
}

impl EgressPort {
    fn new(cfg: &NocConfig) -> Self {
        EgressPort {
            streaming: None,
            rr: 0,
            in_flight: VecDeque::new(),
            ejection: SimQueue::new("noc_ejection", cfg.ejection_queue),
            credits: cfg.ejection_queue,
            ejected: 0,
        }
    }

    /// Takes a delivered packet, if any.
    pub fn pop_ejected(&mut self) -> Option<Packet> {
        let pkt = self.ejection.pop();
        if pkt.is_some() {
            self.credits += 1;
            self.ejected += 1;
        }
        pkt
    }

    /// Peeks the next deliverable packet.
    pub fn peek_ejected(&self) -> Option<&Packet> {
        self.ejection.front()
    }

    /// True when nothing is streaming, in flight, or awaiting ejection.
    pub fn is_idle(&self) -> bool {
        self.streaming.is_none() && self.in_flight.is_empty() && self.ejection.is_empty()
    }

    /// Packets currently inside this output's pipeline.
    pub fn packets(&self) -> usize {
        usize::from(self.streaming.is_some()) + self.in_flight.len() + self.ejection.len()
    }

    /// Per-cycle occupancy bookkeeping.
    pub fn observe(&mut self) {
        self.ejection.observe();
    }

    /// Batch bookkeeping for `cycles` quiescent cycles.
    pub fn observe_many(&mut self, cycles: u64) {
        self.ejection.observe_many(cycles);
    }

    /// Occupancy statistics of this ejection queue.
    pub fn queue_stats(&self) -> &QueueStats {
        self.ejection.stats()
    }

    /// Ejection credits currently available on this port.
    pub fn credits(&self) -> usize {
        self.credits
    }

    /// Overwrites the credit count. The epoch engine snapshots credits
    /// before a shard free-runs (popping ejected packets returns credits
    /// shard-side) and resets them before replaying the epoch's fabric
    /// ticks, so each credit return is observed exactly once and at the
    /// serial-equivalent cycle.
    pub fn set_credits(&mut self, credits: usize) {
        self.credits = credits;
    }

    /// Splits off every in-flight packet arriving strictly before
    /// `until` as a [`LandingSchedule`] the owning shard lands locally
    /// while the fabric is quiescent. Must be paired with
    /// [`restore_landings`](EgressPort::restore_landings) on every exit
    /// path (simlint enforces the pairing, like take/restore_ports).
    ///
    /// Arrival cycles of packets claimed during the epoch replay are at
    /// least `epoch start + hop latency`, so as long as `until` does not
    /// exceed that bound the schedule is complete: no replayed tick can
    /// add a landing the shard should have seen.
    pub fn take_landings(&mut self, until: Cycle) -> LandingSchedule {
        let mut entries = VecDeque::new();
        while let Some(&(arrive, _)) = self.in_flight.front() {
            if arrive >= until {
                break;
            }
            if let Some(entry) = self.in_flight.pop_front() {
                entries.push_back(entry);
            }
        }
        LandingSchedule { entries }
    }

    /// Returns the unlanded remainder of a [`LandingSchedule`] to the
    /// front of the hop pipeline, preserving arrival order (every
    /// remaining entry predates anything the replayed ticks pushed).
    pub fn restore_landings(&mut self, schedule: LandingSchedule) {
        let LandingSchedule { mut entries } = schedule;
        while let Some(entry) = entries.pop_back() {
            self.in_flight.push_front(entry);
        }
    }
}

/// In-flight packets split off an [`EgressPort`] for one epoch, with
/// their arrival cycles. The owning shard lands them into the ejection
/// queue cycle by cycle via [`land_into`](LandingSchedule::land_into),
/// mirroring the fabric's own landing step bit for bit.
#[derive(Debug, Default)]
pub struct LandingSchedule {
    entries: VecDeque<(Cycle, Packet)>,
}

impl LandingSchedule {
    /// Lands every packet due at or before `now` into `port`'s ejection
    /// queue, exactly as [`CrossbarFabric::tick`]'s landing step would.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QueueOverflow`] if a landing packet finds the
    /// ejection queue full — a credit-accounting invariant violation,
    /// identical to the fabric's own landing error.
    pub fn land_into(&mut self, now: Cycle, port: &mut EgressPort) -> Result<(), SimError> {
        while matches!(
            self.entries.front(),
            Some((arrive, _)) if *arrive <= now && !port.ejection.is_full()
        ) {
            let Some((_, pkt)) = self.entries.pop_front() else {
                break;
            };
            if port.ejection.push(pkt).is_err() {
                return Err(SimError::QueueOverflow {
                    cycle: now.raw(),
                    component: "crossbar",
                    queue: "noc_ejection",
                });
            }
        }
        Ok(())
    }

    /// True when every scheduled landing has been delivered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Scheduled landings not yet delivered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Earliest scheduled arrival, if any.
    pub fn next_arrival(&self) -> Option<Cycle> {
        self.entries.front().map(|&(arrive, _)| arrive)
    }
}

/// The arbitration core of a crossbar: hop latency, streaming bandwidth
/// and the counters that are inherently cross-port.
#[derive(Debug)]
pub struct CrossbarFabric {
    hop_latency: u64,
    flits_per_cycle: u64,
    flits_transferred: u64,
    output_busy_cycles: u64,
    credit_stall_cycles: u64,
}

impl CrossbarFabric {
    fn new(cfg: &NocConfig) -> Self {
        CrossbarFabric {
            hop_latency: cfg.hop_latency,
            flits_per_cycle: cfg.flits_per_cycle.max(1),
            flits_transferred: 0,
            output_busy_cycles: 0,
            credit_stall_cycles: 0,
        }
    }

    /// Advances the crossbar by one cycle, arbitrating the given port sets.
    ///
    /// The slices must be the complete port sets of this fabric, in port
    /// order; the generic bounds let callers pass either owned slices
    /// (`&mut [IngressPort]`, the serial facade) or slices of mutable
    /// borrows (`&mut [&mut IngressPort]`, the parallel engine
    /// reassembling ports held in per-shard packs).
    ///
    /// # Errors
    ///
    /// Returns a typed [`SimError`] if an internal invariant is violated
    /// (ejection queue overflow after a fullness check, ejection-credit
    /// underflow) — the machine state is broken, not merely congested.
    pub fn tick<I, E>(
        &mut self,
        now: Cycle,
        inputs: &mut [I],
        outputs: &mut [E],
    ) -> Result<(), SimError>
    where
        I: BorrowMut<IngressPort>,
        E: BorrowMut<EgressPort>,
    {
        for (out_idx, out_slot) in outputs.iter_mut().enumerate() {
            // 1. Land in-flight packets whose hop latency elapsed.
            loop {
                let out = out_slot.borrow_mut();
                let landable = matches!(
                    out.in_flight.front(),
                    Some((arrive, _)) if *arrive <= now && !out.ejection.is_full()
                );
                if !landable {
                    break;
                }
                let Some((_, pkt)) = out.in_flight.pop_front() else {
                    break;
                };
                if out.ejection.push(pkt).is_err() {
                    return Err(SimError::QueueOverflow {
                        component: "crossbar",
                        queue: "noc_ejection",
                        cycle: now.raw(),
                    });
                }
            }

            // 2. Stream up to `flits_per_cycle` flits of the current
            //    packet (the interconnect runs above the core clock).
            let out = out_slot.borrow_mut();
            if let Some((pkt, remaining)) = out.streaming.take() {
                let moved = remaining.min(self.flits_per_cycle);
                let remaining = remaining - moved;
                self.flits_transferred += moved;
                self.output_busy_cycles += 1;
                if remaining == 0 {
                    out.in_flight.push_back((now + self.hop_latency, pkt));
                } else {
                    out.streaming = Some((pkt, remaining));
                }
                continue;
            }

            // 3. Arbitrate for a new packet (needs an ejection credit).
            // Chaos-held inputs are invisible to arbitration until their
            // hold expires.
            if out_slot.borrow_mut().credits == 0 {
                let wanted = inputs.iter_mut().any(|q| {
                    let q = q.borrow_mut();
                    q.head_dest == out_idx && !q.held(now)
                });
                if wanted {
                    self.credit_stall_cycles += 1;
                }
                continue;
            }
            let n_inputs = inputs.len();
            let start = out_slot.borrow_mut().rr;
            for step in 0..n_inputs {
                let in_idx = (start + step) % n_inputs;
                let input = inputs[in_idx].borrow_mut();
                // The mirrored head destination stands in for a queue-front
                // dereference; `usize::MAX` (empty) never matches a port.
                if input.head_dest != out_idx || input.held(now) {
                    continue;
                }
                let Some(pkt) = input.queue.pop() else {
                    continue;
                };
                // Later outputs in this same tick must see the post-pop head.
                input.refresh_head();
                debug_assert_eq!(pkt.dest, out_idx);
                let out = out_slot.borrow_mut();
                out.rr = (in_idx + 1) % n_inputs;
                out.credits = match out.credits.checked_sub(1) {
                    Some(c) => c,
                    None => {
                        return Err(SimError::CreditUnderflow {
                            component: "crossbar",
                            port: out_idx,
                            cycle: now.raw(),
                        });
                    }
                };
                // Transfer the first flit(s) this same cycle.
                let moved = pkt.flits.min(self.flits_per_cycle);
                self.flits_transferred += moved;
                self.output_busy_cycles += 1;
                if pkt.flits <= moved {
                    out.in_flight.push_back((now + self.hop_latency, pkt));
                } else {
                    let remaining = pkt.flits - moved;
                    out.streaming = Some((pkt, remaining));
                }
                break;
            }
        }
        Ok(())
    }
}

/// A flit-level wormhole crossbar with `inputs × outputs` ports.
///
/// Per cycle ([`tick`](Crossbar::tick)):
///
/// 1. Packets whose pipeline (hop) latency elapsed move into their
///    output's bounded ejection queue.
/// 2. Every output streaming a packet moves one flit; a packet whose last
///    flit moved enters the hop pipeline.
/// 3. Every idle output round-robins over the inputs and claims the first
///    head-of-queue packet addressed to it — but only if it holds an
///    ejection credit, so a stalled receiver propagates backpressure all
///    the way to the injecting miss queue.
///
/// Injection ([`try_inject`](Crossbar::try_inject)) places a packet in a
/// bounded input queue; head-of-line blocking across destinations is
/// modelled faithfully.
#[derive(Debug)]
pub struct Crossbar {
    fabric: CrossbarFabric,
    ingress: Vec<IngressPort>,
    egress: Vec<EgressPort>,
}

impl Crossbar {
    /// Builds an `inputs × outputs` crossbar from the interconnect
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `outputs` is zero.
    pub fn new(inputs: usize, outputs: usize, cfg: &NocConfig) -> Self {
        assert!(inputs > 0, "crossbar needs at least one input");
        assert!(outputs > 0, "crossbar needs at least one output");
        Crossbar {
            fabric: CrossbarFabric::new(cfg),
            ingress: (0..inputs)
                .map(|_| IngressPort::new(cfg, outputs))
                .collect(),
            egress: (0..outputs).map(|_| EgressPort::new(cfg)).collect(),
        }
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.ingress.len()
    }

    /// Number of output ports.
    pub fn num_outputs(&self) -> usize {
        self.egress.len()
    }

    /// True if input `port` can accept a packet this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn can_inject(&self, port: usize) -> bool {
        self.ingress[port].can_inject()
    }

    /// Offers `packet` to input `port`.
    ///
    /// # Errors
    ///
    /// Hands the packet back if the input buffer is full.
    ///
    /// # Panics
    ///
    /// Panics if `port` or the packet's destination is out of range.
    #[allow(clippy::result_large_err)] // the rejected packet is handed back by design
    pub fn try_inject(&mut self, port: usize, packet: Packet) -> Result<(), Packet> {
        self.ingress[port].try_inject(packet)
    }

    /// Takes a delivered packet from ejection port `port`, if any.
    pub fn pop_ejected(&mut self, port: usize) -> Option<Packet> {
        self.egress[port].pop_ejected()
    }

    /// Peeks the next deliverable packet on ejection port `port`.
    pub fn peek_ejected(&self, port: usize) -> Option<&Packet> {
        self.egress[port].peek_ejected()
    }

    /// Exclusive access to input port `port` (for shard-local injection).
    pub fn ingress_mut(&mut self, port: usize) -> &mut IngressPort {
        &mut self.ingress[port]
    }

    /// Exclusive access to output port `port` (for shard-local draining).
    pub fn egress_mut(&mut self, port: usize) -> &mut EgressPort {
        &mut self.egress[port]
    }

    /// Advances the crossbar by one cycle.
    ///
    /// # Errors
    ///
    /// Propagates fabric invariant violations (see
    /// [`CrossbarFabric::tick`]).
    pub fn tick(&mut self, now: Cycle) -> Result<(), SimError> {
        self.fabric.tick(now, &mut self.ingress, &mut self.egress)
    }

    /// Exclusive access to all input ports in port order (for the serial
    /// engine's chaos hooks).
    pub fn ingress_ports_mut(&mut self) -> &mut [IngressPort] {
        &mut self.ingress
    }

    /// Iterates over every fetch currently inside the crossbar (input
    /// buffers, streaming, hop pipeline, ejection queues), for wedge
    /// diagnosis.
    pub fn fetches(&self) -> impl Iterator<Item = &MemFetch> {
        let ingress = self.ingress.iter().flat_map(|p| p.queue.iter());
        let egress = self.egress.iter().flat_map(|o| {
            o.streaming
                .iter()
                .map(|(pkt, _)| pkt)
                .chain(o.in_flight.iter().map(|(_, pkt)| pkt))
                .chain(o.ejection.iter())
        });
        ingress.chain(egress).map(|pkt| &pkt.fetch)
    }

    /// Indices of input ports whose buffer is full (for wedge diagnosis).
    pub fn full_ingress_ports(&self) -> Vec<usize> {
        (0..self.ingress.len())
            .filter(|&i| self.ingress[i].queue.is_full())
            .collect()
    }

    /// Indices of input ports currently under a chaos hold.
    pub fn held_ingress_ports(&self, now: Cycle) -> Vec<usize> {
        (0..self.ingress.len())
            .filter(|&i| self.ingress[i].held(now))
            .collect()
    }

    /// Indices of output ports whose ejection queue is full.
    pub fn full_ejection_ports(&self) -> Vec<usize> {
        (0..self.egress.len())
            .filter(|&i| self.egress[i].ejection.is_full())
            .collect()
    }

    /// Removes every port from the crossbar so they can be distributed
    /// across per-shard packs; the facade is unusable until
    /// [`restore_ports`](Crossbar::restore_ports) puts them back.
    pub fn take_ports(&mut self) -> (Vec<IngressPort>, Vec<EgressPort>) {
        (
            std::mem::take(&mut self.ingress),
            std::mem::take(&mut self.egress),
        )
    }

    /// Reinstalls ports previously removed with
    /// [`take_ports`](Crossbar::take_ports), in original port order.
    ///
    /// # Panics
    ///
    /// Panics if called while ports are still installed (the port vectors
    /// must be empty) — mixing two port sets would corrupt arbitration.
    pub fn restore_ports(&mut self, ingress: Vec<IngressPort>, egress: Vec<EgressPort>) {
        assert!(
            self.ingress.is_empty() && self.egress.is_empty(),
            "restore_ports on a crossbar that still has ports"
        );
        self.ingress = ingress;
        self.egress = egress;
    }

    /// The central arbitration state (for parallel tick windows while the
    /// ports live in shard packs).
    pub fn fabric_mut(&mut self) -> &mut CrossbarFabric {
        &mut self.fabric
    }

    /// Per-cycle queue-statistics bookkeeping; call once per cycle.
    pub fn observe(&mut self) {
        for q in &mut self.ingress {
            q.observe();
        }
        for out in &mut self.egress {
            out.observe();
        }
    }

    /// Batch bookkeeping for `cycles` consecutive cycles during which no
    /// packet moves (see `SimQueue::observe_many`). Callers prove such a
    /// window via [`next_event`](Crossbar::next_event).
    pub fn observe_many(&mut self, cycles: u64) {
        for q in &mut self.ingress {
            q.observe_many(cycles);
        }
        for out in &mut self.egress {
            out.observe_many(cycles);
        }
    }

    /// The earliest cycle at or after `now` at which a tick of this
    /// crossbar can move a packet, or `None` when no self-generated event
    /// is pending.
    ///
    /// `Some(now)` whenever a tick would act: an output is mid-stream, an
    /// in-flight packet has arrived, or an output holding a credit has a
    /// head-of-queue packet addressed to it. A credit-starved crossbar —
    /// packets queued but every wanted output out of credits — reports
    /// the earliest in-flight arrival (or `None`): ticking it would move
    /// nothing, and the events that unblock it (a receiver popping an
    /// ejection queue, a fresh injection) re-arm it from outside.
    /// [`fast_forward`](Crossbar::fast_forward) replays the per-cycle
    /// credit-stall accounting such a window accrues.
    ///
    /// Chaos-held inputs are treated as visible here, which can only
    /// produce spurious wake-ups (a tick that moves nothing is
    /// stat-identical to a skipped cycle); chaos runs use the stepped
    /// engine anyway.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut earliest: Option<Cycle> = None;
        for (out_idx, out) in self.egress.iter().enumerate() {
            if out.streaming.is_some() {
                return Some(now);
            }
            if let Some((arrive, _)) = out.in_flight.front() {
                if *arrive <= now {
                    return Some(now);
                }
                earliest = Some(match earliest {
                    Some(e) if e <= *arrive => e,
                    _ => *arrive,
                });
            }
            if out.credits > 0 && self.ingress.iter().any(|q| q.head_dest == out_idx) {
                return Some(now);
            }
        }
        earliest
    }

    /// Replays `cycles` consecutive skipped ticks starting at `now`, over
    /// a window [`next_event`](Crossbar::next_event) proved inert: no
    /// packet moves, but a credit-starved output with a waiting
    /// head-of-queue packet still counts a stall every cycle, exactly as
    /// per-cycle ticking would. Also backfills queue-occupancy
    /// observations for the window.
    pub fn fast_forward(&mut self, now: Cycle, cycles: u64) {
        if cycles == 0 {
            return;
        }
        self.account_stalls_many(now, cycles);
        self.observe_many(cycles);
    }

    /// Counts this cycle's credit stalls without ticking: the stall side
    /// of a tick that [`next_event`](Crossbar::next_event) proved would
    /// move nothing. The engine calls this when a later pipeline stage is
    /// about to mutate a sleeping crossbar mid-cycle: the stall must be
    /// charged against the pre-mutation state the skipped tick would have
    /// seen, while the end-of-cycle occupancy observation happens after
    /// the mutation.
    pub fn account_stalls(&mut self, now: Cycle) {
        self.account_stalls_many(now, 1);
    }

    fn account_stalls_many(&mut self, now: Cycle, cycles: u64) {
        let mut starved = 0u64;
        for (out_idx, out) in self.egress.iter().enumerate() {
            if out.credits != 0 {
                continue;
            }
            let wanted = self
                .ingress
                .iter()
                .any(|q| q.head_dest == out_idx && !q.held(now));
            if wanted {
                starved += 1;
            }
        }
        self.fabric.credit_stall_cycles += starved * cycles;
    }

    /// True if no packet is anywhere inside the crossbar (for liveness and
    /// conservation checks).
    pub fn is_idle(&self) -> bool {
        self.ingress.iter().all(|q| q.is_empty()) && self.egress.iter().all(|o| o.is_idle())
    }

    /// Number of packets currently inside the crossbar.
    pub fn packets_in_network(&self) -> usize {
        self.ingress.iter().map(|q| q.len()).sum::<usize>()
            + self.egress.iter().map(|o| o.packets()).sum::<usize>()
    }

    /// Activity counters, aggregated over the fabric and all ports.
    pub fn stats(&self) -> CrossbarStats {
        CrossbarStats {
            packets_injected: self.ingress.iter().map(|p| p.injected).sum(),
            packets_ejected: self.egress.iter().map(|p| p.ejected).sum(),
            flits_transferred: self.fabric.flits_transferred,
            output_busy_cycles: self.fabric.output_busy_cycles,
            credit_stall_cycles: self.fabric.credit_stall_cycles,
        }
    }

    /// Merged occupancy statistics over all input buffers.
    pub fn input_queue_stats(&self) -> QueueStats {
        let mut s = QueueStats::default();
        for q in &self.ingress {
            s.merge(q.queue_stats());
        }
        s
    }

    /// Merged occupancy statistics over all ejection queues.
    pub fn ejection_queue_stats(&self) -> QueueStats {
        let mut s = QueueStats::default();
        for o in &self.egress {
            s.merge(o.queue_stats());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_types::{AccessKind, CoreId, FetchId, LineAddr, MemFetch};

    fn cfg() -> NocConfig {
        NocConfig {
            flit_bytes: 4,
            flits_per_cycle: 1,
            hop_latency: 2,
            input_buffer_pkts: 2,
            ejection_queue: 2,
        }
    }

    fn pkt(id: u64, dest: usize, flits: u64) -> Packet {
        Packet {
            fetch: MemFetch::new(
                FetchId::new(id),
                AccessKind::Load,
                LineAddr::new(id),
                CoreId::new(0),
            ),
            dest,
            flits,
        }
    }

    fn run(xbar: &mut Crossbar, from: Cycle, cycles: u64) -> Cycle {
        let mut now = from;
        for _ in 0..cycles {
            xbar.tick(now).unwrap();
            xbar.observe();
            now = now.next();
        }
        now
    }

    #[test]
    fn single_packet_latency_is_flits_plus_hop() {
        let mut x = Crossbar::new(2, 2, &cfg());
        x.try_inject(0, pkt(1, 1, 3)).unwrap();
        let mut now = Cycle::ZERO;
        let mut delivered_at = None;
        for _ in 0..20 {
            x.tick(now).unwrap();
            if x.peek_ejected(1).is_some() && delivered_at.is_none() {
                delivered_at = Some(now);
            }
            now = now.next();
        }
        // Streaming occupies cycles 0..=2 (3 flits), hop latency 2 lands it
        // in the ejection queue at the tick where now >= 2+2.
        assert_eq!(delivered_at, Some(Cycle::new(4)));
        assert_eq!(x.pop_ejected(1).unwrap().fetch.id, FetchId::new(1));
        assert!(x.is_idle());
    }

    #[test]
    fn distinct_outputs_stream_in_parallel() {
        let mut x = Crossbar::new(2, 2, &cfg());
        x.try_inject(0, pkt(1, 0, 4)).unwrap();
        x.try_inject(1, pkt(2, 1, 4)).unwrap();
        run(&mut x, Cycle::ZERO, 8);
        assert!(x.pop_ejected(0).is_some());
        assert!(x.pop_ejected(1).is_some());
        // 8 flits total over 4 busy cycles per output.
        assert_eq!(x.stats().flits_transferred, 8);
    }

    #[test]
    fn same_output_serializes() {
        let mut x = Crossbar::new(2, 1, &cfg());
        x.try_inject(0, pkt(1, 0, 4)).unwrap();
        x.try_inject(1, pkt(2, 0, 4)).unwrap();
        run(&mut x, Cycle::ZERO, 4);
        // After 4 cycles only the first packet finished streaming.
        assert_eq!(x.stats().flits_transferred, 4);
        run(&mut x, Cycle::new(4), 8);
        assert_eq!(x.stats().packets_ejected, 0); // not popped yet
        assert_eq!(x.stats().flits_transferred, 8);
        assert!(x.pop_ejected(0).is_some());
        assert!(x.pop_ejected(0).is_some());
    }

    #[test]
    fn round_robin_is_fair() {
        let mut x = Crossbar::new(3, 1, &cfg());
        for input in 0..3 {
            x.try_inject(input, pkt(input as u64, 0, 1)).unwrap();
        }
        // Single-flit packets: one claimed per cycle, RR order 0,1,2.
        let mut order = Vec::new();
        let mut now = Cycle::ZERO;
        for _ in 0..12 {
            x.tick(now).unwrap();
            now = now.next();
            while let Some(p) = x.pop_ejected(0) {
                order.push(p.fetch.id.raw());
            }
        }
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn ejection_backpressure_stalls_streaming() {
        let mut x = Crossbar::new(1, 1, &cfg());
        // Capacity 2 ejection; send 4 single-flit packets, never pop.
        for i in 0..2 {
            x.try_inject(0, pkt(i, 0, 1)).unwrap();
        }
        run(&mut x, Cycle::ZERO, 10);
        for i in 2..4 {
            x.try_inject(0, pkt(i, 0, 1)).unwrap();
        }
        run(&mut x, Cycle::new(10), 10);
        // Only 2 packets could be claimed (credits exhausted).
        assert_eq!(x.stats().flits_transferred, 2);
        assert!(x.stats().credit_stall_cycles > 0);
        // Draining restores progress.
        assert!(x.pop_ejected(0).is_some());
        assert!(x.pop_ejected(0).is_some());
        run(&mut x, Cycle::new(20), 10);
        assert!(x.pop_ejected(0).is_some());
        assert!(x.pop_ejected(0).is_some());
        assert!(x.is_idle());
    }

    #[test]
    fn input_buffer_rejects_when_full() {
        let mut x = Crossbar::new(1, 1, &cfg());
        assert!(x.can_inject(0));
        x.try_inject(0, pkt(1, 0, 8)).unwrap();
        x.try_inject(0, pkt(2, 0, 8)).unwrap();
        assert!(!x.can_inject(0));
        let back = x.try_inject(0, pkt(3, 0, 8)).unwrap_err();
        assert_eq!(back.fetch.id, FetchId::new(3));
    }

    #[test]
    fn head_of_line_blocking() {
        // Input 0 head targets output 0 which is busy with a long packet
        // from input 1; a packet behind it targeting free output 1 waits.
        let mut x = Crossbar::new(2, 2, &cfg());
        x.try_inject(1, pkt(9, 0, 20)).unwrap();
        x.tick(Cycle::ZERO).unwrap(); // output 0 claims the long packet
        x.try_inject(0, pkt(1, 0, 1)).unwrap();
        x.try_inject(0, pkt(2, 1, 1)).unwrap();
        run(&mut x, Cycle::new(1), 10);
        // Packet 2 cannot overtake packet 1 inside input 0.
        assert!(x.pop_ejected(1).is_none());
    }

    #[test]
    fn packet_conservation() {
        let mut x = Crossbar::new(3, 2, &cfg());
        let mut injected = 0u64;
        let mut ejected = 0u64;
        let mut now = Cycle::ZERO;
        let mut next_id = 0u64;
        for round in 0..200u64 {
            for input in 0..3 {
                if round % (input as u64 + 1) == 0 {
                    let p = pkt(next_id, (next_id % 2) as usize, 1 + next_id % 5);
                    if x.try_inject(input, p).is_ok() {
                        injected += 1;
                        next_id += 1;
                    }
                }
            }
            x.tick(now).unwrap();
            now = now.next();
            for output in 0..2 {
                while x.pop_ejected(output).is_some() {
                    ejected += 1;
                }
            }
        }
        // Drain.
        for _ in 0..500 {
            x.tick(now).unwrap();
            now = now.next();
            for output in 0..2 {
                while x.pop_ejected(output).is_some() {
                    ejected += 1;
                }
            }
        }
        assert_eq!(injected, ejected);
        assert!(x.is_idle());
        assert_eq!(x.packets_in_network(), 0);
        assert_eq!(x.stats().packets_injected, injected);
        assert_eq!(x.stats().packets_ejected, ejected);
    }

    #[test]
    #[should_panic(expected = "destination out of range")]
    fn inject_validates_destination() {
        let mut x = Crossbar::new(1, 1, &cfg());
        let _ = x.try_inject(0, pkt(1, 5, 1));
    }

    #[test]
    fn chaos_hold_freezes_arbitration_until_expiry() {
        let mut x = Crossbar::new(1, 1, &cfg());
        x.try_inject(0, pkt(1, 0, 1)).unwrap();
        x.ingress_ports_mut()[0].chaos_hold(Cycle::new(5));
        assert_eq!(x.held_ingress_ports(Cycle::ZERO), vec![0]);
        run(&mut x, Cycle::ZERO, 5);
        // Held: nothing moved in cycles 0..5.
        assert_eq!(x.stats().flits_transferred, 0);
        assert!(x.peek_ejected(0).is_none());
        run(&mut x, Cycle::new(5), 10);
        assert!(x.pop_ejected(0).is_some());
        assert!(x.is_idle());
    }

    #[test]
    fn chaos_rotate_head_preserves_conservation() {
        let mut x = Crossbar::new(1, 2, &cfg());
        x.try_inject(0, pkt(1, 0, 1)).unwrap();
        x.try_inject(0, pkt(2, 1, 1)).unwrap();
        x.ingress_ports_mut()[0].chaos_rotate_head();
        run(&mut x, Cycle::ZERO, 10);
        // Both packets still arrive, head rotation only reordered them.
        assert_eq!(x.pop_ejected(0).unwrap().fetch.id, FetchId::new(1));
        assert_eq!(x.pop_ejected(1).unwrap().fetch.id, FetchId::new(2));
        assert!(x.is_idle());
        assert_eq!(x.stats().packets_injected, 2);
        assert_eq!(x.stats().packets_ejected, 2);
    }

    #[test]
    fn fetches_surveys_every_stage() {
        let mut x = Crossbar::new(2, 2, &cfg());
        x.try_inject(0, pkt(1, 1, 8)).unwrap(); // will be streaming
        x.try_inject(1, pkt(2, 0, 1)).unwrap(); // will be in flight / ejected
        x.try_inject(1, pkt(3, 0, 1)).unwrap(); // still queued behind it
        x.tick(Cycle::ZERO).unwrap();
        x.tick(Cycle::new(1)).unwrap();
        let ids: Vec<u64> = x.fetches().map(|f| f.id.raw()).collect();
        assert_eq!(ids.len(), 3, "every in-network fetch surveyed: {ids:?}");
        for id in [1, 2, 3] {
            assert!(ids.contains(&id));
        }
    }

    #[test]
    fn take_and_restore_ports_roundtrip() {
        let mut x = Crossbar::new(2, 2, &cfg());
        x.try_inject(0, pkt(1, 1, 3)).unwrap();
        let (mut ins, mut outs) = x.take_ports();
        assert_eq!(ins.len(), 2);
        assert_eq!(outs.len(), 2);
        // Tick through port borrows, exactly as the parallel engine does.
        let mut now = Cycle::ZERO;
        for _ in 0..20 {
            let mut iref: Vec<&mut IngressPort> = ins.iter_mut().collect();
            let mut oref: Vec<&mut EgressPort> = outs.iter_mut().collect();
            x.fabric_mut().tick(now, &mut iref, &mut oref).unwrap();
            now = now.next();
        }
        assert!(outs[1].peek_ejected().is_some());
        x.restore_ports(ins, outs);
        assert_eq!(x.pop_ejected(1).unwrap().fetch.id, FetchId::new(1));
        assert!(x.is_idle());
        assert_eq!(x.stats().packets_injected, 1);
        assert_eq!(x.stats().packets_ejected, 1);
    }

    #[test]
    fn take_landings_lands_at_the_fabric_equivalent_cycle() {
        let mut x = Crossbar::new(1, 2, &cfg());
        // Single-flit packet: claimed and fully streamed at cycle 0,
        // entering the hop pipeline with arrival = 0 + hop_latency (2).
        x.try_inject(0, pkt(1, 1, 1)).unwrap();
        x.tick(Cycle::ZERO).unwrap();
        let (ins, mut outs) = x.take_ports();
        let mut sched = outs[1].take_landings(Cycle::new(4));
        assert_eq!(sched.len(), 1);
        assert_eq!(sched.next_arrival(), Some(Cycle::new(2)));
        // Before the arrival cycle nothing lands; at it, the packet does.
        sched.land_into(Cycle::new(1), &mut outs[1]).unwrap();
        assert!(outs[1].peek_ejected().is_none());
        sched.land_into(Cycle::new(2), &mut outs[1]).unwrap();
        assert!(sched.is_empty());
        assert_eq!(outs[1].pop_ejected().unwrap().fetch.id, FetchId::new(1));
        outs[1].restore_landings(sched);
        x.restore_ports(ins, outs);
        assert!(x.is_idle());
    }

    #[test]
    fn take_landings_excludes_arrivals_at_or_past_the_bound() {
        let mut x = Crossbar::new(1, 2, &cfg());
        x.try_inject(0, pkt(1, 1, 1)).unwrap();
        x.tick(Cycle::ZERO).unwrap(); // in flight, arrives at cycle 2
        let (ins, mut outs) = x.take_ports();
        let sched = outs[1].take_landings(Cycle::new(2));
        assert!(sched.is_empty());
        outs[1].restore_landings(sched);
        x.restore_ports(ins, outs);
        // The packet still lands through the normal fabric path.
        run(&mut x, Cycle::new(1), 4);
        assert_eq!(x.pop_ejected(1).unwrap().fetch.id, FetchId::new(1));
        assert!(x.is_idle());
    }

    #[test]
    fn restore_landings_preserves_arrival_order() {
        let mut x = Crossbar::new(1, 1, &cfg());
        // Two single-flit packets to the same output: claimed at cycles
        // 0 and 1, arriving at cycles 2 and 3.
        x.try_inject(0, pkt(1, 0, 1)).unwrap();
        x.try_inject(0, pkt(2, 0, 1)).unwrap();
        x.tick(Cycle::ZERO).unwrap();
        x.tick(Cycle::new(1)).unwrap();
        let (ins, mut outs) = x.take_ports();
        let mut sched = outs[0].take_landings(Cycle::new(4));
        assert_eq!(sched.len(), 2);
        // Land only the first, restore the rest: order must survive.
        sched.land_into(Cycle::new(2), &mut outs[0]).unwrap();
        assert_eq!(sched.len(), 1);
        outs[0].restore_landings(sched);
        x.restore_ports(ins, outs);
        assert_eq!(x.pop_ejected(0).unwrap().fetch.id, FetchId::new(1));
        run(&mut x, Cycle::new(2), 4);
        assert_eq!(x.pop_ejected(0).unwrap().fetch.id, FetchId::new(2));
        assert!(x.is_idle());
    }

    #[test]
    fn credit_snapshot_roundtrip_neutralizes_shard_side_returns() {
        let mut x = Crossbar::new(1, 1, &cfg());
        x.try_inject(0, pkt(1, 0, 1)).unwrap();
        run(&mut x, Cycle::ZERO, 4); // delivered into the ejection queue
        let (ins, mut outs) = x.take_ports();
        let before = outs[0].credits();
        let c = outs[0].pop_ejected();
        assert!(c.is_some());
        assert_eq!(outs[0].credits(), before + 1);
        // The epoch coordinator rewinds the shard-side credit return and
        // replays it through the serial-order credit path instead.
        outs[0].set_credits(before);
        assert_eq!(outs[0].credits(), before);
        outs[0].set_credits(before + 1);
        x.restore_ports(ins, outs);
        assert!(x.is_idle());
    }

    #[test]
    fn scratch_port_buffers_and_drains_fifo() {
        let mut scratch = IngressPort::scratch(2, 4);
        assert!(scratch.can_inject());
        scratch.try_inject(pkt(1, 3, 1)).unwrap();
        scratch.try_inject(pkt(2, 0, 1)).unwrap();
        assert!(!scratch.can_inject());
        assert_eq!(scratch.drain().unwrap().fetch.id, FetchId::new(1));
        assert_eq!(scratch.drain().unwrap().fetch.id, FetchId::new(2));
        assert!(scratch.drain().is_none());
        assert!(scratch.is_empty());
        assert!(scratch.can_inject());
    }
}
