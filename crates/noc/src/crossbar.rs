//! The wormhole crossbar.

use std::collections::VecDeque;

use gpumem_config::NocConfig;
use gpumem_types::{Cycle, QueueStats, SimQueue};

use crate::Packet;

/// Aggregate activity counters for a [`Crossbar`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CrossbarStats {
    /// Packets accepted at input ports.
    pub packets_injected: u64,
    /// Packets handed to receivers at ejection ports.
    pub packets_ejected: u64,
    /// Flits moved through outputs.
    pub flits_transferred: u64,
    /// Output-cycles spent streaming (for utilization: divide by
    /// `outputs × cycles`).
    pub output_busy_cycles: u64,
    /// Cycles an output had a packet ready but no ejection credit
    /// (backpressure from the receiver).
    pub credit_stall_cycles: u64,
}

impl CrossbarStats {
    /// Accumulates another crossbar's counters.
    pub fn merge(&mut self, other: &CrossbarStats) {
        self.packets_injected += other.packets_injected;
        self.packets_ejected += other.packets_ejected;
        self.flits_transferred += other.flits_transferred;
        self.output_busy_cycles += other.output_busy_cycles;
        self.credit_stall_cycles += other.credit_stall_cycles;
    }
}

#[derive(Debug)]
struct Output {
    /// Packet currently being streamed and its remaining flits.
    streaming: Option<(Packet, u64)>,
    /// Round-robin pointer over inputs.
    rr: usize,
    /// Packets that finished streaming and are traversing the pipeline
    /// (FIFO per output; arrivals are naturally ordered).
    in_flight: VecDeque<(Cycle, Packet)>,
    /// Delivered packets awaiting the receiver.
    ejection: SimQueue<Packet>,
    /// Free slots the output may still claim in its ejection queue
    /// (ejection capacity minus queued, streaming and in-flight packets).
    credits: usize,
}

/// A flit-level wormhole crossbar with `inputs × outputs` ports.
///
/// Per cycle ([`tick`](Crossbar::tick)):
///
/// 1. Packets whose pipeline (hop) latency elapsed move into their
///    output's bounded ejection queue.
/// 2. Every output streaming a packet moves one flit; a packet whose last
///    flit moved enters the hop pipeline.
/// 3. Every idle output round-robins over the inputs and claims the first
///    head-of-queue packet addressed to it — but only if it holds an
///    ejection credit, so a stalled receiver propagates backpressure all
///    the way to the injecting miss queue.
///
/// Injection ([`try_inject`](Crossbar::try_inject)) places a packet in a
/// bounded input queue; head-of-line blocking across destinations is
/// modelled faithfully.
#[derive(Debug)]
pub struct Crossbar {
    inputs: Vec<SimQueue<Packet>>,
    outputs: Vec<Output>,
    hop_latency: u64,
    flits_per_cycle: u64,
    stats: CrossbarStats,
}

impl Crossbar {
    /// Builds an `inputs × outputs` crossbar from the interconnect
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `outputs` is zero.
    pub fn new(inputs: usize, outputs: usize, cfg: &NocConfig) -> Self {
        assert!(inputs > 0, "crossbar needs at least one input");
        assert!(outputs > 0, "crossbar needs at least one output");
        Crossbar {
            inputs: (0..inputs)
                .map(|_| SimQueue::new("noc_input", cfg.input_buffer_pkts))
                .collect(),
            outputs: (0..outputs)
                .map(|_| Output {
                    streaming: None,
                    rr: 0,
                    in_flight: VecDeque::new(),
                    ejection: SimQueue::new("noc_ejection", cfg.ejection_queue),
                    credits: cfg.ejection_queue,
                })
                .collect(),
            hop_latency: cfg.hop_latency,
            flits_per_cycle: cfg.flits_per_cycle.max(1),
            stats: CrossbarStats::default(),
        }
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output ports.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// True if input `port` can accept a packet this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn can_inject(&self, port: usize) -> bool {
        !self.inputs[port].is_full()
    }

    /// Offers `packet` to input `port`.
    ///
    /// # Errors
    ///
    /// Hands the packet back if the input buffer is full.
    ///
    /// # Panics
    ///
    /// Panics if `port` or the packet's destination is out of range.
    #[allow(clippy::result_large_err)] // the rejected packet is handed back by design
    pub fn try_inject(&mut self, port: usize, packet: Packet) -> Result<(), Packet> {
        assert!(packet.dest < self.outputs.len(), "destination out of range");
        match self.inputs[port].push(packet) {
            Ok(()) => {
                self.stats.packets_injected += 1;
                Ok(())
            }
            Err(e) => Err(e.into_inner()),
        }
    }

    /// Takes a delivered packet from ejection port `port`, if any.
    pub fn pop_ejected(&mut self, port: usize) -> Option<Packet> {
        let out = &mut self.outputs[port];
        let pkt = out.ejection.pop();
        if pkt.is_some() {
            out.credits += 1;
            self.stats.packets_ejected += 1;
        }
        pkt
    }

    /// Peeks the next deliverable packet on ejection port `port`.
    pub fn peek_ejected(&self, port: usize) -> Option<&Packet> {
        self.outputs[port].ejection.front()
    }

    /// Advances the crossbar by one cycle.
    pub fn tick(&mut self, now: Cycle) {
        for out_idx in 0..self.outputs.len() {
            // 1. Land in-flight packets whose hop latency elapsed.
            loop {
                let out = &mut self.outputs[out_idx];
                match out.in_flight.front() {
                    Some((arrive, _)) if *arrive <= now && !out.ejection.is_full() => {
                        let (_, pkt) = out.in_flight.pop_front().expect("peeked");
                        out.ejection.push(pkt).expect("fullness checked");
                    }
                    _ => break,
                }
            }

            // 2. Stream up to `flits_per_cycle` flits of the current
            //    packet (the interconnect runs above the core clock).
            let out = &mut self.outputs[out_idx];
            if let Some((_, remaining)) = &mut out.streaming {
                let moved = (*remaining).min(self.flits_per_cycle);
                *remaining -= moved;
                self.stats.flits_transferred += moved;
                self.stats.output_busy_cycles += 1;
                if *remaining == 0 {
                    let (pkt, _) = out.streaming.take().expect("checked above");
                    out.in_flight.push_back((now + self.hop_latency, pkt));
                }
                continue;
            }

            // 3. Arbitrate for a new packet (needs an ejection credit).
            if self.outputs[out_idx].credits == 0 {
                let wanted = self
                    .inputs
                    .iter()
                    .any(|q| q.front().is_some_and(|p| p.dest == out_idx));
                if wanted {
                    self.stats.credit_stall_cycles += 1;
                }
                continue;
            }
            let n_inputs = self.inputs.len();
            let start = self.outputs[out_idx].rr;
            for step in 0..n_inputs {
                let in_idx = (start + step) % n_inputs;
                let matches = self.inputs[in_idx]
                    .front()
                    .is_some_and(|p| p.dest == out_idx);
                if !matches {
                    continue;
                }
                let pkt = self.inputs[in_idx].pop().expect("front checked");
                let out = &mut self.outputs[out_idx];
                out.rr = (in_idx + 1) % n_inputs;
                out.credits -= 1;
                // Transfer the first flit(s) this same cycle.
                let moved = pkt.flits.min(self.flits_per_cycle);
                self.stats.flits_transferred += moved;
                self.stats.output_busy_cycles += 1;
                if pkt.flits <= moved {
                    out.in_flight.push_back((now + self.hop_latency, pkt));
                } else {
                    let remaining = pkt.flits - moved;
                    out.streaming = Some((pkt, remaining));
                }
                break;
            }
        }
    }

    /// Per-cycle queue-statistics bookkeeping; call once per cycle.
    pub fn observe(&mut self) {
        for q in &mut self.inputs {
            q.observe();
        }
        for out in &mut self.outputs {
            out.ejection.observe();
        }
    }

    /// Batch bookkeeping for `cycles` consecutive cycles during which no
    /// packet moves (see `SimQueue::observe_many`). Callers prove such a
    /// window via [`next_event`](Crossbar::next_event).
    pub fn observe_many(&mut self, cycles: u64) {
        for q in &mut self.inputs {
            q.observe_many(cycles);
        }
        for out in &mut self.outputs {
            out.ejection.observe_many(cycles);
        }
    }

    /// The earliest cycle at or after `now` at which this crossbar can
    /// move a packet or at which a receiver could drain one, or `None`
    /// when it is completely empty.
    ///
    /// `Some(now)` whenever any input holds a packet (arbitration or a
    /// credit stall happens this cycle), any output is mid-stream, any
    /// delivered packet awaits a receiver, or an in-flight packet has
    /// already arrived. Otherwise the only self-generated future event is
    /// the earliest in-flight arrival (per-output FIFOs are
    /// arrival-ordered, so the fronts suffice).
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let busy_now = self.inputs.iter().any(|q| !q.is_empty())
            || self
                .outputs
                .iter()
                .any(|o| o.streaming.is_some() || !o.ejection.is_empty());
        if busy_now {
            return Some(now);
        }
        let mut earliest: Option<Cycle> = None;
        for out in &self.outputs {
            if let Some((arrive, _)) = out.in_flight.front() {
                if *arrive <= now {
                    return Some(now);
                }
                earliest = Some(match earliest {
                    Some(e) if e <= *arrive => e,
                    _ => *arrive,
                });
            }
        }
        earliest
    }

    /// True if no packet is anywhere inside the crossbar (for liveness and
    /// conservation checks).
    pub fn is_idle(&self) -> bool {
        self.inputs.iter().all(|q| q.is_empty())
            && self
                .outputs
                .iter()
                .all(|o| o.streaming.is_none() && o.in_flight.is_empty() && o.ejection.is_empty())
    }

    /// Number of packets currently inside the crossbar.
    pub fn packets_in_network(&self) -> usize {
        self.inputs.iter().map(|q| q.len()).sum::<usize>()
            + self
                .outputs
                .iter()
                .map(|o| usize::from(o.streaming.is_some()) + o.in_flight.len() + o.ejection.len())
                .sum::<usize>()
    }

    /// Activity counters.
    pub fn stats(&self) -> &CrossbarStats {
        &self.stats
    }

    /// Merged occupancy statistics over all input buffers.
    pub fn input_queue_stats(&self) -> QueueStats {
        let mut s = QueueStats::default();
        for q in &self.inputs {
            s.merge(q.stats());
        }
        s
    }

    /// Merged occupancy statistics over all ejection queues.
    pub fn ejection_queue_stats(&self) -> QueueStats {
        let mut s = QueueStats::default();
        for o in &self.outputs {
            s.merge(o.ejection.stats());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_types::{AccessKind, CoreId, FetchId, LineAddr, MemFetch};

    fn cfg() -> NocConfig {
        NocConfig {
            flit_bytes: 4,
            flits_per_cycle: 1,
            hop_latency: 2,
            input_buffer_pkts: 2,
            ejection_queue: 2,
        }
    }

    fn pkt(id: u64, dest: usize, flits: u64) -> Packet {
        Packet {
            fetch: MemFetch::new(
                FetchId::new(id),
                AccessKind::Load,
                LineAddr::new(id),
                CoreId::new(0),
            ),
            dest,
            flits,
        }
    }

    fn run(xbar: &mut Crossbar, from: Cycle, cycles: u64) -> Cycle {
        let mut now = from;
        for _ in 0..cycles {
            xbar.tick(now);
            xbar.observe();
            now = now.next();
        }
        now
    }

    #[test]
    fn single_packet_latency_is_flits_plus_hop() {
        let mut x = Crossbar::new(2, 2, &cfg());
        x.try_inject(0, pkt(1, 1, 3)).unwrap();
        let mut now = Cycle::ZERO;
        let mut delivered_at = None;
        for _ in 0..20 {
            x.tick(now);
            if x.peek_ejected(1).is_some() && delivered_at.is_none() {
                delivered_at = Some(now);
            }
            now = now.next();
        }
        // Streaming occupies cycles 0..=2 (3 flits), hop latency 2 lands it
        // in the ejection queue at the tick where now >= 2+2.
        assert_eq!(delivered_at, Some(Cycle::new(4)));
        assert_eq!(x.pop_ejected(1).unwrap().fetch.id, FetchId::new(1));
        assert!(x.is_idle());
    }

    #[test]
    fn distinct_outputs_stream_in_parallel() {
        let mut x = Crossbar::new(2, 2, &cfg());
        x.try_inject(0, pkt(1, 0, 4)).unwrap();
        x.try_inject(1, pkt(2, 1, 4)).unwrap();
        run(&mut x, Cycle::ZERO, 8);
        assert!(x.pop_ejected(0).is_some());
        assert!(x.pop_ejected(1).is_some());
        // 8 flits total over 4 busy cycles per output.
        assert_eq!(x.stats().flits_transferred, 8);
    }

    #[test]
    fn same_output_serializes() {
        let mut x = Crossbar::new(2, 1, &cfg());
        x.try_inject(0, pkt(1, 0, 4)).unwrap();
        x.try_inject(1, pkt(2, 0, 4)).unwrap();
        run(&mut x, Cycle::ZERO, 4);
        // After 4 cycles only the first packet finished streaming.
        assert_eq!(x.stats().flits_transferred, 4);
        run(&mut x, Cycle::new(4), 8);
        assert_eq!(x.stats().packets_ejected, 0); // not popped yet
        assert_eq!(x.stats().flits_transferred, 8);
        assert!(x.pop_ejected(0).is_some());
        assert!(x.pop_ejected(0).is_some());
    }

    #[test]
    fn round_robin_is_fair() {
        let mut x = Crossbar::new(3, 1, &cfg());
        for input in 0..3 {
            x.try_inject(input, pkt(input as u64, 0, 1)).unwrap();
        }
        // Single-flit packets: one claimed per cycle, RR order 0,1,2.
        let mut order = Vec::new();
        let mut now = Cycle::ZERO;
        for _ in 0..12 {
            x.tick(now);
            now = now.next();
            while let Some(p) = x.pop_ejected(0) {
                order.push(p.fetch.id.raw());
            }
        }
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn ejection_backpressure_stalls_streaming() {
        let mut x = Crossbar::new(1, 1, &cfg());
        // Capacity 2 ejection; send 4 single-flit packets, never pop.
        for i in 0..2 {
            x.try_inject(0, pkt(i, 0, 1)).unwrap();
        }
        run(&mut x, Cycle::ZERO, 10);
        for i in 2..4 {
            x.try_inject(0, pkt(i, 0, 1)).unwrap();
        }
        run(&mut x, Cycle::new(10), 10);
        // Only 2 packets could be claimed (credits exhausted).
        assert_eq!(x.stats().flits_transferred, 2);
        assert!(x.stats().credit_stall_cycles > 0);
        // Draining restores progress.
        assert!(x.pop_ejected(0).is_some());
        assert!(x.pop_ejected(0).is_some());
        run(&mut x, Cycle::new(20), 10);
        assert!(x.pop_ejected(0).is_some());
        assert!(x.pop_ejected(0).is_some());
        assert!(x.is_idle());
    }

    #[test]
    fn input_buffer_rejects_when_full() {
        let mut x = Crossbar::new(1, 1, &cfg());
        assert!(x.can_inject(0));
        x.try_inject(0, pkt(1, 0, 8)).unwrap();
        x.try_inject(0, pkt(2, 0, 8)).unwrap();
        assert!(!x.can_inject(0));
        let back = x.try_inject(0, pkt(3, 0, 8)).unwrap_err();
        assert_eq!(back.fetch.id, FetchId::new(3));
    }

    #[test]
    fn head_of_line_blocking() {
        // Input 0 head targets output 0 which is busy with a long packet
        // from input 1; a packet behind it targeting free output 1 waits.
        let mut x = Crossbar::new(2, 2, &cfg());
        x.try_inject(1, pkt(9, 0, 20)).unwrap();
        x.tick(Cycle::ZERO); // output 0 claims the long packet
        x.try_inject(0, pkt(1, 0, 1)).unwrap();
        x.try_inject(0, pkt(2, 1, 1)).unwrap();
        run(&mut x, Cycle::new(1), 10);
        // Packet 2 cannot overtake packet 1 inside input 0.
        assert!(x.pop_ejected(1).is_none());
    }

    #[test]
    fn packet_conservation() {
        let mut x = Crossbar::new(3, 2, &cfg());
        let mut injected = 0u64;
        let mut ejected = 0u64;
        let mut now = Cycle::ZERO;
        let mut next_id = 0u64;
        for round in 0..200u64 {
            for input in 0..3 {
                if round % (input as u64 + 1) == 0 {
                    let p = pkt(next_id, (next_id % 2) as usize, 1 + next_id % 5);
                    if x.try_inject(input, p).is_ok() {
                        injected += 1;
                        next_id += 1;
                    }
                }
            }
            x.tick(now);
            now = now.next();
            for output in 0..2 {
                while x.pop_ejected(output).is_some() {
                    ejected += 1;
                }
            }
        }
        // Drain.
        for _ in 0..500 {
            x.tick(now);
            now = now.next();
            for output in 0..2 {
                while x.pop_ejected(output).is_some() {
                    ejected += 1;
                }
            }
        }
        assert_eq!(injected, ejected);
        assert!(x.is_idle());
        assert_eq!(x.packets_in_network(), 0);
        assert_eq!(x.stats().packets_injected, injected);
        assert_eq!(x.stats().packets_ejected, ejected);
    }

    #[test]
    #[should_panic(expected = "destination out of range")]
    fn inject_validates_destination() {
        let mut x = Crossbar::new(1, 1, &cfg());
        let _ = x.try_inject(0, pkt(1, 5, 1));
    }
}
