//! Interconnect substrate for the `gpumem` simulator.
//!
//! The GTX480's cores and memory partitions communicate over two crossbars
//! (one per direction). Packets are segmented into *flits* of
//! `noc.flit_bytes` (Table I baseline: **4 bytes**), and each crossbar
//! output moves one flit per cycle — so a 136-byte read-response packet
//! occupies a core's ejection port for **34 cycles** at the baseline. This
//! serialization is one of the principal cache-hierarchy bandwidth limits
//! the paper identifies; the Table I "Flit size (crossbar)" scaling (4 B →
//! 16 B) quarters it.
//!
//! The model is a wormhole crossbar: an output claims an input's head
//! packet through round-robin arbitration, streams its flits back to back,
//! and only then arbitrates again. Delivery into the bounded ejection
//! queues is credit-controlled, so a stalled receiver (e.g. a full L2
//! access queue) back-pressures the crossbar and, transitively, every
//! miss queue feeding it — the paper's congestion-propagation effect ③.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crossbar;
mod packet;

pub use crossbar::{
    Crossbar, CrossbarFabric, CrossbarStats, EgressPort, IngressPort, LandingSchedule,
};
pub use packet::Packet;
