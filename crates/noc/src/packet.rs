//! Interconnect packets.

use gpumem_types::MemFetch;

/// A packet travelling across a [`crate::Crossbar`].
///
/// Carries the [`MemFetch`] it transports, the destination port index and
/// its size in flits (computed once at injection from the payload size and
/// the configured flit width).
///
/// # Example
///
/// ```
/// use gpumem_noc::Packet;
/// use gpumem_types::{AccessKind, CoreId, FetchId, LineAddr, MemFetch};
///
/// let fetch = MemFetch::new(FetchId::new(1), AccessKind::Load, LineAddr::new(3), CoreId::new(0));
/// // A read request: 8 control bytes at 4-byte flits = 2 flits.
/// let pkt = Packet::new(fetch, 5, 8, 4);
/// assert_eq!(pkt.flits, 2);
/// assert_eq!(pkt.dest, 5);
/// ```
#[derive(Debug, Clone)]
pub struct Packet {
    /// The transported memory request or response.
    pub fetch: MemFetch,
    /// Destination port index on the crossbar.
    pub dest: usize,
    /// Packet length in flits (≥ 1).
    pub flits: u64,
}

impl Packet {
    /// Builds a packet of `bytes` payload segmented into `flit_bytes`
    /// flits.
    ///
    /// # Panics
    ///
    /// Panics if `flit_bytes` is zero or `bytes` is zero.
    pub fn new(fetch: MemFetch, dest: usize, bytes: u64, flit_bytes: u64) -> Self {
        assert!(flit_bytes > 0, "flit size must be positive");
        assert!(bytes > 0, "packet payload must be positive");
        Packet {
            fetch,
            dest,
            flits: bytes.div_ceil(flit_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_types::{AccessKind, CoreId, FetchId, LineAddr};

    fn fetch() -> MemFetch {
        MemFetch::new(
            FetchId::new(0),
            AccessKind::Load,
            LineAddr::new(0),
            CoreId::new(0),
        )
    }

    #[test]
    fn flit_rounding() {
        assert_eq!(Packet::new(fetch(), 0, 136, 4).flits, 34);
        assert_eq!(Packet::new(fetch(), 0, 136, 16).flits, 9);
        assert_eq!(Packet::new(fetch(), 0, 8, 16).flits, 1);
        assert_eq!(Packet::new(fetch(), 0, 1, 4).flits, 1);
    }

    #[test]
    #[should_panic(expected = "flit size must be positive")]
    fn zero_flit_size_panics() {
        let _ = Packet::new(fetch(), 0, 8, 0);
    }
}
