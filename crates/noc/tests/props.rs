//! Property tests for the crossbar interconnect.

use gpumem_config::NocConfig;
use gpumem_noc::{Crossbar, Packet};
use gpumem_types::{AccessKind, CoreId, Cycle, FetchId, LineAddr, MemFetch};
use proptest::prelude::*;

fn cfg(flit_rate: u64, eject: usize) -> NocConfig {
    NocConfig {
        flit_bytes: 4,
        flits_per_cycle: flit_rate,
        hop_latency: 3,
        input_buffer_pkts: 4,
        ejection_queue: eject,
    }
}

fn packet(id: u64, dest: usize, flits: u64) -> Packet {
    Packet {
        fetch: MemFetch::new(
            FetchId::new(id),
            AccessKind::Load,
            LineAddr::new(id),
            CoreId::new(0),
        ),
        dest,
        flits,
    }
}

proptest! {
    /// No packet is ever lost or duplicated, regardless of traffic shape,
    /// flit rate or ejection capacity.
    #[test]
    fn conservation_under_arbitrary_traffic(
        inputs in 1usize..5,
        outputs in 1usize..5,
        flit_rate in 1u64..5,
        eject in 1usize..5,
        traffic in prop::collection::vec((0usize..5, 0usize..5, 1u64..40), 0..120),
    ) {
        let mut x = Crossbar::new(inputs, outputs, &cfg(flit_rate, eject));
        let mut injected: Vec<u64> = Vec::new();
        let mut ejected: Vec<u64> = Vec::new();
        let mut now = Cycle::ZERO;

        for (id, (inp, dest, flits)) in traffic.into_iter().enumerate() {
            let id = id as u64;
            let inp = inp % inputs;
            let dest = dest % outputs;
            if x.try_inject(inp, packet(id, dest, flits)).is_ok() {
                injected.push(id);
            }
            x.tick(now).unwrap();
            x.observe();
            now = now.next();
            for o in 0..outputs {
                while let Some(p) = x.pop_ejected(o) {
                    prop_assert_eq!(p.dest, o, "misrouted packet");
                    ejected.push(p.fetch.id.raw());
                }
            }
        }
        // Drain: bounded by worst-case serialization.
        for _ in 0..(40 * 130 + 200) {
            if x.is_idle() {
                break;
            }
            x.tick(now).unwrap();
            now = now.next();
            for o in 0..outputs {
                while let Some(p) = x.pop_ejected(o) {
                    ejected.push(p.fetch.id.raw());
                }
            }
        }
        prop_assert!(x.is_idle(), "crossbar failed to drain");
        injected.sort_unstable();
        ejected.sort_unstable();
        prop_assert_eq!(injected, ejected);
    }

    /// Packets from one input to one output are delivered in injection
    /// order (the wormhole crossbar must not reorder a flow).
    #[test]
    fn per_flow_ordering(
        flits in prop::collection::vec(1u64..20, 1..30),
        flit_rate in 1u64..4,
    ) {
        let mut x = Crossbar::new(2, 2, &cfg(flit_rate, 3));
        let mut now = Cycle::ZERO;
        let mut sent = Vec::new();
        let mut received = Vec::new();
        let mut queue: std::collections::VecDeque<Packet> = flits
            .iter()
            .enumerate()
            .map(|(i, &f)| packet(i as u64, 0, f))
            .collect();

        for _ in 0..20_000 {
            if let Some(p) = queue.front() {
                let id = p.fetch.id.raw();
                if x.try_inject(0, queue.pop_front().unwrap()).is_ok() {
                    sent.push(id);
                } else {
                    // put it back (front) — try again next cycle
                    queue.push_front(packet(id, 0, flits[id as usize]));
                }
            }
            x.tick(now).unwrap();
            now = now.next();
            while let Some(p) = x.pop_ejected(0) {
                received.push(p.fetch.id.raw());
            }
            if queue.is_empty() && x.is_idle() {
                break;
            }
        }
        prop_assert_eq!(&sent, &received, "flow reordered");
        prop_assert_eq!(received.len(), flits.len());
    }

    /// Throughput sanity: a single saturated output moves at most
    /// `flits_per_cycle` flits per cycle, and total latency of an
    /// uncontended packet equals ceil(flits/rate) + hop latency.
    #[test]
    fn uncontended_latency_formula(flits in 1u64..64, rate in 1u64..5) {
        let conf = cfg(rate, 4);
        let mut x = Crossbar::new(1, 1, &conf);
        x.try_inject(0, packet(0, 0, flits)).unwrap();
        let mut now = Cycle::ZERO;
        let mut delivered_at = None;
        for _ in 0..1000 {
            x.tick(now).unwrap();
            if x.peek_ejected(0).is_some() {
                delivered_at = Some(now);
                break;
            }
            now = now.next();
        }
        let expected = (flits.div_ceil(rate) - 1) + conf.hop_latency;
        prop_assert_eq!(delivered_at, Some(Cycle::new(expected)));
    }
}
