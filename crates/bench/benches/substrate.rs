//! Microbenchmarks of the substrate components: how fast the simulator's
//! building blocks themselves run (simulation throughput, not simulated
//! performance).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gpumem_cache::{L1Dcache, MshrTable, TagArray};
use gpumem_config::GpuConfig;
use gpumem_dram::DramChannel;
use gpumem_noc::{Crossbar, Packet};
use gpumem_types::{AccessKind, CoreId, Cycle, FetchId, LineAddr, MemFetch, SimRng};

fn fetch(id: u64, line: u64) -> MemFetch {
    MemFetch::new(
        FetchId::new(id),
        AccessKind::Load,
        LineAddr::new(line),
        CoreId::new(0),
    )
}

fn bench_tag_array(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/tag_array");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("access_mixed", |b| {
        let mut tags = TagArray::new(64, 8);
        let mut rng = SimRng::new(1);
        // Warm.
        for i in 0..512 {
            tags.fill((i % 64) as usize, LineAddr::new(i), Cycle::new(i));
        }
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..1024u64 {
                let line = rng.gen_range(1024);
                let set = (line % 64) as usize;
                if tags.access(set, LineAddr::new(line), Cycle::new(i)) {
                    hits += 1;
                } else {
                    tags.fill(set, LineAddr::new(line), Cycle::new(i));
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_mshr(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/mshr");
    group.throughput(Throughput::Elements(256));
    group.bench_function("allocate_complete", |b| {
        b.iter(|| {
            let mut mshr: MshrTable<u64> = MshrTable::new(64, 8);
            for i in 0..256u64 {
                let line = LineAddr::new(i % 48);
                if mshr.can_accept(line) {
                    let _ = mshr.allocate(line, i);
                }
                if i.is_multiple_of(3) {
                    black_box(mshr.complete(LineAddr::new(i % 48)));
                }
            }
            black_box(mshr.len())
        })
    });
    group.finish();
}

fn bench_l1(c: &mut Criterion) {
    let cfg = GpuConfig::gtx480();
    let mut group = c.benchmark_group("substrate/l1");
    group.throughput(Throughput::Elements(512));
    group.bench_function("access_fill_loop", |b| {
        b.iter(|| {
            let mut l1 = L1Dcache::new(&cfg);
            let mut now = Cycle::ZERO;
            for i in 0..512u64 {
                now += 1;
                let _ = l1.access(fetch(i, i % 96), now);
                if let Some(req) = l1.pop_miss() {
                    black_box(l1.fill(req, now + 100));
                }
                black_box(l1.pop_ready_hits(now).len());
            }
        })
    });
    group.finish();
}

fn bench_crossbar(c: &mut Criterion) {
    let cfg = GpuConfig::gtx480();
    let mut group = c.benchmark_group("substrate/crossbar");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("tick_loaded_15x6", |b| {
        b.iter(|| {
            let mut x = Crossbar::new(15, 6, &cfg.noc);
            let mut now = Cycle::ZERO;
            let mut delivered = 0u64;
            for i in 0..1000u64 {
                let input = (i % 15) as usize;
                if x.can_inject(input) {
                    let f = fetch(i, i);
                    let pkt = Packet::new(f, (i % 6) as usize, 8, cfg.noc.flit_bytes);
                    let _ = x.try_inject(input, pkt);
                }
                x.tick(now).unwrap();
                now = now.next();
                for o in 0..6 {
                    while x.pop_ejected(o).is_some() {
                        delivered += 1;
                    }
                }
            }
            black_box(delivered)
        })
    });
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let cfg = GpuConfig::gtx480();
    let mut group = c.benchmark_group("substrate/dram");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("tick_loaded", |b| {
        b.iter(|| {
            let mut d = DramChannel::new(&cfg, 0);
            let mut now = Cycle::ZERO;
            let mut rng = SimRng::new(7);
            let mut done = 0u64;
            for i in 0..1000u64 {
                if d.can_accept(AccessKind::Load) && i % 2 == 0 {
                    let _ = d.try_push(fetch(i, rng.gen_range(1_000_000)), now);
                }
                d.tick(now).unwrap();
                now = now.next();
                while d.pop_return().is_some() {
                    done += 1;
                }
            }
            black_box(done)
        })
    });
    group.finish();
}

fn bench_full_system_cycles(c: &mut Criterion) {
    use gpumem_sim::{GpuSimulator, MemoryMode};
    let cfg = GpuConfig::gtx480();
    let program = gpumem_bench::scaled_benchmark("sc", 0.08).expect("canonical name");
    let mut group = c.benchmark_group("substrate/full_system");
    group.sample_size(10);
    group.bench_function("sc_small_run", |b| {
        b.iter(|| {
            let mut sim = GpuSimulator::new(cfg.clone(), program.clone(), MemoryMode::Hierarchy);
            let report = sim.run(10_000_000).expect("completes");
            black_box(report.cycles)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tag_array,
    bench_mshr,
    bench_l1,
    bench_crossbar,
    bench_dram,
    bench_full_system_cycles
);
criterion_main!(benches);
