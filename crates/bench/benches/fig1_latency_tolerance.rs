//! Criterion bench regenerating the paper's **Fig. 1** (latency-tolerance
//! profile) on a scaled-down suite.
//!
//! Each benchmark id is `fig1/<workload>`; one iteration performs the full
//! sweep (baseline + fixed-latency points) and asserts the figure's shape
//! (monotone-decreasing curve). Criterion's time measures the simulator's
//! throughput on this experiment; the *scientific* output — the curve —
//! is printed once per workload.

use criterion::{criterion_group, criterion_main, Criterion};
use gpumem::experiments::latency_tolerance::latency_tolerance_profile;
use gpumem::prelude::*;
use gpumem_bench::scaled_benchmark;

const SCALE: f64 = 0.12;
const LATENCIES: [u64; 5] = [0, 200, 400, 600, 800];

fn bench_fig1(c: &mut Criterion) {
    let cfg = GpuConfig::gtx480();
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);

    for name in BENCHMARK_NAMES {
        let program = scaled_benchmark(name, SCALE).expect("canonical name");
        // Print the series once, like the paper's figure rows.
        let profile =
            latency_tolerance_profile(&cfg, &program, &LATENCIES).expect("sweep completes");
        let series: Vec<String> = profile
            .points
            .iter()
            .map(|p| format!("{}:{:.2}", p.latency, p.normalized_ipc))
            .collect();
        eprintln!("fig1 {name}: {}", series.join(" "));

        group.bench_function(name, |b| {
            b.iter(|| {
                let profile =
                    latency_tolerance_profile(&cfg, &program, &LATENCIES).expect("sweep completes");
                // Shape assertion: the curve never rises with latency
                // (beyond noise).
                for w in profile.points.windows(2) {
                    assert!(
                        w[1].normalized_ipc <= w[0].normalized_ipc * 1.05,
                        "{name}: IPC rose with latency"
                    );
                }
                profile
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
