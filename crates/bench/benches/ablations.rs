//! Criterion bench for the per-row ablations (the design choices DESIGN.md
//! calls out): each Table I parameter scaled alone, plus the paper's
//! Section V future-work cost-effectiveness ranking.

use criterion::{criterion_group, criterion_main, Criterion};
use gpumem::experiments::ablation::{ablation_study, ablation_table};
use gpumem::prelude::*;
use gpumem_bench::{scaled_benchmark, scaled_suite};
use gpumem_config::single_parameter_ablations;
use gpumem_sim::MemoryMode;

const SCALE: f64 = 0.12;

fn bench_ablations(c: &mut Criterion) {
    let base = GpuConfig::gtx480();

    // Print the ranked table once (three memory-bound representatives keep
    // it quick).
    let mini: Vec<_> = ["nn", "sc", "lbm"]
        .iter()
        .map(|n| scaled_benchmark(n, SCALE).expect("canonical name"))
        .collect();
    let study = ablation_study(&base, &mini).expect("ablation study completes");
    eprintln!("{}", ablation_table(&study));

    // Per-row benches: run one representative workload against each
    // single-parameter configuration. Ids are `ablation/<row>`.
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let program = scaled_benchmark("sc", SCALE).expect("canonical name");
    for a in single_parameter_ablations(&base) {
        group.bench_function(a.name, |b| {
            b.iter(|| run_benchmark(&a.config, &program, MemoryMode::Hierarchy).expect("completes"))
        });
    }

    // The whole suite-level study.
    group.bench_function("full_study", |b| {
        let suite = scaled_suite(SCALE);
        b.iter(|| ablation_study(&base, &suite).expect("study completes"))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
