//! Criterion bench regenerating the paper's **Section IV / Table I**
//! design-space exploration on a scaled-down suite, asserting the paper's
//! qualitative claims each iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use gpumem::experiments::design_space::design_space_exploration;
use gpumem::prelude::*;
use gpumem_bench::{scaled_benchmark, scaled_suite};
use gpumem_sim::MemoryMode;

const SCALE: f64 = 0.12;

fn bench_dse(c: &mut Criterion) {
    let cfg = GpuConfig::gtx480();

    // Print the Section IV table once.
    let study = design_space_exploration(&cfg, &scaled_suite(SCALE), &DesignPoint::SECTION_IV)
        .expect("exploration completes");
    for p in &study.points {
        eprintln!(
            "dse {}: avg {:.3} geomean {:.3}",
            p.design.label(),
            p.average_speedup(),
            p.geomean_speedup()
        );
    }

    let mut group = c.benchmark_group("table1_dse");
    group.sample_size(10);

    // One design point end to end (benchmark × config run).
    for dp in [
        DesignPoint::L2_ONLY,
        DesignPoint::DRAM_ONLY,
        DesignPoint::L2_DRAM,
    ] {
        let scaled_cfg = dp.apply(&cfg);
        let program = scaled_benchmark("sc", SCALE).expect("canonical name");
        group.bench_function(dp.label(), |b| {
            b.iter(|| {
                run_benchmark(&scaled_cfg, &program, MemoryMode::Hierarchy).expect("completes")
            })
        });
    }

    // The full exploration (smaller suite to keep iterations tractable),
    // asserting the paper's claims each time.
    let mini: Vec<_> = ["nn", "sc", "lbm"]
        .iter()
        .map(|n| scaled_benchmark(n, SCALE).expect("canonical name"))
        .collect();
    group.bench_function("full_exploration", |b| {
        b.iter(|| {
            let study = design_space_exploration(&cfg, &mini, &DesignPoint::SECTION_IV)
                .expect("exploration completes");
            let l2 = study
                .result_for(DesignPoint::L2_ONLY)
                .expect("present")
                .average_speedup();
            let dram = study
                .result_for(DesignPoint::DRAM_ONLY)
                .expect("present")
                .average_speedup();
            assert!(l2 > dram, "cache-hierarchy scaling must dominate");
            assert_eq!(
                study.synergy_exceeds_sum(
                    DesignPoint::L2_ONLY,
                    DesignPoint::DRAM_ONLY,
                    DesignPoint::L2_DRAM
                ),
                Some(true),
                "synergy must exceed the sum of parts"
            );
            study
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
