//! Criterion bench regenerating the paper's **Section III** congestion
//! numbers (L2 access queues full 46% of usage lifetime, DRAM scheduler
//! queues 39%) on a scaled-down suite.

use criterion::{criterion_group, criterion_main, Criterion};
use gpumem::experiments::congestion::congestion_study;
use gpumem::prelude::*;
use gpumem_bench::{scaled_benchmark, scaled_suite};
use gpumem_sim::MemoryMode;

const SCALE: f64 = 0.12;

fn bench_congestion(c: &mut Criterion) {
    let cfg = GpuConfig::gtx480();

    // Print the Section III rows once.
    let study = congestion_study(&cfg, &scaled_suite(SCALE)).expect("study completes");
    for r in &study.rows {
        eprintln!(
            "congestion {}: L2accq {:.0}% DRAMschq {:.0}% missLat {:.0}",
            r.benchmark,
            r.l2_access_full * 100.0,
            r.dram_sched_full * 100.0,
            r.avg_l1_miss_latency
        );
    }
    eprintln!(
        "congestion AVERAGE: L2 {:.0}% (paper 46%), DRAM {:.0}% (paper 39%)",
        study.avg_l2_access_full * 100.0,
        study.avg_dram_sched_full * 100.0
    );

    let mut group = c.benchmark_group("congestion");
    group.sample_size(10);

    // Per-benchmark baseline run (the measurement behind each row).
    for name in ["cfd", "nn", "lbm"] {
        let program = scaled_benchmark(name, SCALE).expect("canonical name");
        group.bench_function(name, |b| {
            b.iter(|| {
                let report =
                    run_benchmark(&cfg, &program, MemoryMode::Hierarchy).expect("completes");
                assert!(report.l2_access_queue_full_fraction().is_some());
                report
            })
        });
    }

    // The whole-suite study as one unit (what `repro congestion` runs).
    group.bench_function("full_study", |b| {
        let suite = scaled_suite(SCALE);
        b.iter(|| congestion_study(&cfg, &suite).expect("study completes"))
    });
    group.finish();
}

criterion_group!(benches, bench_congestion);
criterion_main!(benches);
