//! CLI contract tests for the `repro` binary: the typed-error exits the
//! trace frontend and sweep store promise, plus a trace-gen → run round
//! trip. Each test invokes the real binary (`CARGO_BIN_EXE_repro`), so
//! exit codes and diagnostics are checked exactly as CI and users see
//! them.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Per-test scratch path that does not exist yet.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpumem-repro-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn query_on_missing_store_is_typed_exit_2_and_mints_nothing() {
    let store = scratch("absent-store");
    let out = repro(&["sweep", "--query", store.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("no results store"),
        "diagnostic must name the missing store, got: {}",
        stderr_of(&out)
    );
    assert!(
        !store.exists(),
        "a read-only query must not create a store skeleton"
    );
}

#[test]
fn sweep_with_unknown_workload_spec_is_typed_exit_2() {
    let dir = scratch("bad-spec");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("spec.json");
    std::fs::write(
        &spec,
        r#"{"name":"bad","scale":0.1,"workloads":["nonesuch"],"design_points":["baseline"],
           "seeds":[0],"modes":["hierarchy"],"engines":["event"],"max_cycles":1000000,
           "deadline_seconds":null}"#,
    )
    .unwrap();
    let store = dir.join("store");
    let out = repro(&[
        "sweep",
        "--store",
        store.to_str().unwrap(),
        "--spec",
        spec.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("nonesuch"),
        "diagnostic must name the unknown workload, got: {}",
        stderr_of(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_trace_is_a_line_numbered_exit_2() {
    let dir = scratch("bad-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("bad.trace");
    std::fs::write(&trace, "gpumem-trace v1\nkernel name=x grid=zero\n").unwrap();
    let out = repro(&["run", "--trace-file", trace.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(
        err.contains("line 2"),
        "diagnostic must carry the offending line number, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_rejects_unknown_benchmarks_and_empty_worklists() {
    let out = repro(&["run", "nonesuch"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("unknown benchmark"));

    let out = repro(&["run"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("needs at least one workload"));
}

#[test]
fn trace_gen_round_trips_through_run_bit_identically() {
    let dir = scratch("roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("gemm.trace");
    let out = repro(&[
        "trace-gen",
        "gemm",
        "--scale",
        "0.05",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(text.starts_with("gpumem-trace v1\n"));

    // The traced replay and the synthetic original run side by side
    // through all three engines; `run` exits non-zero on any divergence.
    let out = repro(&[
        "run",
        "gemm",
        "--scale",
        "0.05",
        "--trace-file",
        trace.to_str().unwrap(),
        "--threads",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let cycle_counts: std::collections::BTreeSet<&str> = stdout
        .lines()
        .filter(|l| l.contains("/ hierarchy:"))
        .collect();
    assert_eq!(
        cycle_counts.len(),
        1,
        "synthetic and traced gemm must report identical cycles/instructions:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
