//! Deep-inspection tool: runs selected benchmarks on the baseline and
//! dumps every component's counters (queue occupancies, stall reasons,
//! NoC utilization, DRAM row behaviour). Used for calibrating the model;
//! kept as a diagnostic for anyone extending it.
//!
//! ```text
//! cargo run --release -p gpumem-bench --bin probe [bench ...]
//! ```

fn main() {
    use gpumem::prelude::*;
    let cfg = GpuConfig::gtx480();
    // simlint::allow(no-env, reason = "host CLI argument parsing")
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        vec!["nn", "lbm", "cfd"]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for name in names {
        let Some(p) = by_name(name) else {
            eprintln!("unknown benchmark {name}");
            continue;
        };
        let r = run_benchmark(&cfg, &p, MemoryMode::Hierarchy).unwrap();
        let l2 = r.l2.as_ref().unwrap();
        let d = r.dram.as_ref().unwrap();
        println!(
            "== {name}: ipc {:.2} cycles {} missLat {:.0}",
            r.ipc,
            r.cycles,
            r.avg_l1_miss_latency()
        );
        println!("  L1: {:?}", r.l1.stats);
        println!("  L2 stats: {:?}", l2.stats);
        println!(
            "  L2 accq: full% {:.2} mean {:.2} pushes {}",
            l2.access_queue.full_fraction_of_usage(),
            l2.access_queue.mean_occupancy(),
            l2.access_queue.pushes
        );
        println!(
            "  L2 missq: full% {:.2} mean {:.2}",
            l2.miss_queue.full_fraction_of_usage(),
            l2.miss_queue.mean_occupancy()
        );
        println!(
            "  L2 respq: full% {:.2} mean {:.2}",
            l2.response_queue.full_fraction_of_usage(),
            l2.response_queue.mean_occupancy()
        );
        println!(
            "  L2 toicnt: full% {:.2} mean {:.2}",
            l2.to_icnt_queue.full_fraction_of_usage(),
            l2.to_icnt_queue.mean_occupancy()
        );
        println!(
            "  DRAM: {:?} rowhit {:.2} schedq full% {:.2} mean {:.2} svc {:.0}",
            d.stats,
            d.stats.row_hit_rate(),
            d.scheduler_queue.full_fraction_of_usage(),
            d.scheduler_queue.mean_occupancy(),
            d.service_latency.mean()
        );
        let noc = r.noc.as_ref().unwrap();
        println!("  NOC resp: {:?}", noc.response);
        println!(
            "  NOC resp busy/cyc: {:.2}",
            noc.response.output_busy_cycles as f64 / (r.cycles as f64 * 15.0)
        );
    }
}
