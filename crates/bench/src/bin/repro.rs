//! Regenerates every table and figure of *Characterizing Memory
//! Bottlenecks in GPGPU Workloads* (IISWC 2016).
//!
//! ```text
//! repro [--scale F] [--json DIR] [fig1|congestion|dse|table1|latency|ablation|all]
//! ```
//!
//! * `fig1`       — Fig. 1 latency-tolerance sweep (17 points × 8 benchmarks)
//! * `congestion` — Section III queue-occupancy study
//! * `dse`        — Section IV / Table I design-space exploration
//! * `table1`     — prints Table I itself (configuration values)
//! * `latency`    — Section II baseline-vs-ideal latency comparison
//! * `ablation`   — Section V future work: per-row ablation + cost ranking
//! * `all`        — everything above (default)
//!
//! `--scale F` scales the workloads (grid × F, iterations × √F) for quick
//! runs; the shipped EXPERIMENTS.md numbers use the full scale (1.0).
//! `--json DIR` additionally dumps raw results as JSON.

use std::sync::Arc;

use gpumem::experiments::ablation::{ablation_study, ablation_table};
use gpumem::experiments::congestion::congestion_study;
use gpumem::experiments::design_space::design_space_exploration;
use gpumem::experiments::latency_tolerance::{latency_tolerance_profile, FIG1_LATENCIES};
use gpumem::prelude::*;
use gpumem::text;
use gpumem_simt::KernelProgram;

struct Args {
    scale: f64,
    json_dir: Option<String>,
    command: String,
}

fn parse_args() -> Args {
    let mut scale = 1.0;
    let mut json_dir = None;
    let mut command = "all".to_owned();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--json" => {
                json_dir = Some(it.next().unwrap_or_else(|| die("--json needs a directory")));
            }
            "fig1" | "congestion" | "dse" | "table1" | "latency" | "ablation" | "all" => {
                command = arg;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    Args {
        scale,
        json_dir,
        command,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: repro [--scale F] [--json DIR] [fig1|congestion|dse|table1|latency|ablation|all]"
    );
    std::process::exit(2)
}

fn suite(scale: f64) -> Vec<Arc<dyn KernelProgram>> {
    if (scale - 1.0).abs() < f64::EPSILON {
        benchmarks()
    } else {
        gpumem_bench::scaled_suite(scale)
    }
}

fn dump_json<T: serde::Serialize>(dir: &Option<String>, name: &str, value: &T) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{name}.json");
        let json = serde_json::to_string_pretty(value).expect("serialize");
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

fn run_fig1(cfg: &GpuConfig, scale: f64, json: &Option<String>) {
    let mut profiles = Vec::new();
    for program in suite(scale) {
        eprintln!("fig1: sweeping {} ...", program.name());
        let profile = latency_tolerance_profile(cfg, &program, &FIG1_LATENCIES)
            .expect("fig1 sweep completes");
        profiles.push(profile);
    }
    println!("{}", text::fig1_table(&profiles));
    dump_json(json, "fig1", &profiles);
}

fn run_congestion(cfg: &GpuConfig, scale: f64, json: &Option<String>) {
    eprintln!("congestion: running suite on baseline ...");
    let study = congestion_study(cfg, &suite(scale)).expect("congestion study completes");
    println!("{}", text::congestion_table(&study));
    dump_json(json, "congestion", &study);
}

fn run_dse(cfg: &GpuConfig, scale: f64, json: &Option<String>) {
    eprintln!("dse: running suite over Section IV design points ...");
    let study = design_space_exploration(cfg, &suite(scale), &DesignPoint::SECTION_IV)
        .expect("design-space exploration completes");
    println!("{}", text::dse_table(&study));
    dump_json(json, "dse", &study);
}

fn run_latency(cfg: &GpuConfig, scale: f64, json: &Option<String>) {
    eprintln!("latency: measuring loaded baseline latencies ...");
    let study = congestion_study(cfg, &suite(scale)).expect("baseline runs complete");
    println!("SECTION II — BASELINE MEMORY LATENCIES vs IDEAL");
    println!("(ideal: L2 hit 120 cycles, DRAM 220 cycles via L2)");
    println!("{:>10} {:>24}", "benchmark", "avg L1 miss latency (cyc)");
    for r in &study.rows {
        println!("{:>10} {:>24.0}", r.benchmark, r.avg_l1_miss_latency);
    }
    let avg = study.rows.iter().map(|r| r.avg_l1_miss_latency).sum::<f64>()
        / study.rows.len().max(1) as f64;
    println!("{:>10} {avg:>24.0}", "AVERAGE");
    dump_json(json, "latency", &study);
}

fn run_ablation(cfg: &GpuConfig, scale: f64, json: &Option<String>) {
    eprintln!("ablation: scaling each Table I row individually ...");
    let study = ablation_study(cfg, &suite(scale)).expect("ablation study completes");
    println!("{}", ablation_table(&study));
    dump_json(json, "ablation", &study);
}

fn main() {
    let args = parse_args();
    let cfg = GpuConfig::gtx480();
    if (args.scale - 1.0).abs() > f64::EPSILON {
        eprintln!("note: workloads scaled by {} — numbers differ from EXPERIMENTS.md", args.scale);
    }
    match args.command.as_str() {
        "table1" => println!("{}", text::table_i()),
        "fig1" => run_fig1(&cfg, args.scale, &args.json_dir),
        "congestion" => run_congestion(&cfg, args.scale, &args.json_dir),
        "dse" => run_dse(&cfg, args.scale, &args.json_dir),
        "ablation" => run_ablation(&cfg, args.scale, &args.json_dir),
        "latency" => run_latency(&cfg, args.scale, &args.json_dir),
        "all" => {
            println!("{}", text::table_i());
            run_latency(&cfg, args.scale, &args.json_dir);
            println!();
            run_fig1(&cfg, args.scale, &args.json_dir);
            println!();
            run_congestion(&cfg, args.scale, &args.json_dir);
            println!();
            run_dse(&cfg, args.scale, &args.json_dir);
            println!();
            run_ablation(&cfg, args.scale, &args.json_dir);
        }
        other => die(&format!("unknown command {other}")),
    }
}
