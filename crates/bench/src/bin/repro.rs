//! Regenerates every table and figure of *Characterizing Memory
//! Bottlenecks in GPGPU Workloads* (IISWC 2016).
//!
//! ```text
//! repro [--scale F] [--json DIR] [fig1|congestion|dse|table1|latency|ablation|perf|all]
//! ```
//!
//! * `fig1`       — Fig. 1 latency-tolerance sweep (17 points × 8 benchmarks)
//! * `congestion` — Section III queue-occupancy study
//! * `dse`        — Section IV / Table I design-space exploration
//! * `table1`     — prints Table I itself (configuration values)
//! * `latency`    — Section II baseline-vs-ideal latency comparison
//! * `ablation`   — Section V future work: per-row ablation + cost ranking
//! * `perf`       — host throughput: stepping vs event-horizon skipping
//!   (cycles/sec, skipped fraction, speedup)
//! * `all`        — everything above except `perf` (default)
//!
//! `--scale F` scales the workloads (grid × F, iterations × √F) for quick
//! runs; the shipped EXPERIMENTS.md numbers use the full scale (1.0).
//! `--json DIR` additionally dumps raw results as JSON.

use std::sync::Arc;

use gpumem::experiments::ablation::{ablation_study, ablation_table};
use gpumem::experiments::congestion::congestion_study;
use gpumem::experiments::design_space::design_space_exploration;
use gpumem::experiments::latency_tolerance::{latency_tolerance_profile, FIG1_LATENCIES};
use gpumem::prelude::*;
use gpumem::text;
use gpumem_simt::KernelProgram;

struct Args {
    scale: f64,
    json_dir: Option<String>,
    command: String,
}

fn parse_args() -> Args {
    let mut scale = 1.0;
    let mut json_dir = None;
    let mut command = "all".to_owned();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--json" => {
                json_dir = Some(it.next().unwrap_or_else(|| die("--json needs a directory")));
            }
            "fig1" | "congestion" | "dse" | "table1" | "latency" | "ablation" | "perf" | "all" => {
                command = arg;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    Args {
        scale,
        json_dir,
        command,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: repro [--scale F] [--json DIR] \
         [fig1|congestion|dse|table1|latency|ablation|perf|all]"
    );
    std::process::exit(2)
}

fn suite(scale: f64) -> Vec<Arc<dyn KernelProgram>> {
    if (scale - 1.0).abs() < f64::EPSILON {
        benchmarks()
    } else {
        gpumem_bench::scaled_suite(scale)
    }
}

fn dump_json<T: serde::Serialize>(dir: &Option<String>, name: &str, value: &T) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{name}.json");
        let json = serde_json::to_string_pretty(value).expect("serialize");
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

fn run_fig1(cfg: &GpuConfig, scale: f64, json: &Option<String>) {
    let mut profiles = Vec::new();
    for program in suite(scale) {
        eprintln!("fig1: sweeping {} ...", program.name());
        let profile = latency_tolerance_profile(cfg, &program, &FIG1_LATENCIES)
            .expect("fig1 sweep completes");
        profiles.push(profile);
    }
    println!("{}", text::fig1_table(&profiles));
    dump_json(json, "fig1", &profiles);
}

fn run_congestion(cfg: &GpuConfig, scale: f64, json: &Option<String>) {
    eprintln!("congestion: running suite on baseline ...");
    let study = congestion_study(cfg, &suite(scale)).expect("congestion study completes");
    println!("{}", text::congestion_table(&study));
    dump_json(json, "congestion", &study);
}

fn run_dse(cfg: &GpuConfig, scale: f64, json: &Option<String>) {
    eprintln!("dse: running suite over Section IV design points ...");
    let study = design_space_exploration(cfg, &suite(scale), &DesignPoint::SECTION_IV)
        .expect("design-space exploration completes");
    println!("{}", text::dse_table(&study));
    dump_json(json, "dse", &study);
}

fn run_latency(cfg: &GpuConfig, scale: f64, json: &Option<String>) {
    eprintln!("latency: measuring loaded baseline latencies ...");
    let study = congestion_study(cfg, &suite(scale)).expect("baseline runs complete");
    println!("SECTION II — BASELINE MEMORY LATENCIES vs IDEAL");
    println!("(ideal: L2 hit 120 cycles, DRAM 220 cycles via L2)");
    println!("{:>10} {:>24}", "benchmark", "avg L1 miss latency (cyc)");
    for r in &study.rows {
        println!("{:>10} {:>24.0}", r.benchmark, r.avg_l1_miss_latency);
    }
    let avg = study
        .rows
        .iter()
        .map(|r| r.avg_l1_miss_latency)
        .sum::<f64>()
        / study.rows.len().max(1) as f64;
    println!("{:>10} {avg:>24.0}", "AVERAGE");
    dump_json(json, "latency", &study);
}

/// One row of the `perf` command: the same run executed strictly per-cycle
/// and with event-horizon skipping.
#[derive(serde::Serialize)]
struct PerfRow {
    benchmark: String,
    mode: String,
    cycles: u64,
    stepped_wall_s: f64,
    skipping_wall_s: f64,
    speedup: f64,
    stepped_mcyc_per_s: f64,
    skipping_mcyc_per_s: f64,
    skipped_fraction: f64,
}

fn perf_row(cfg: &GpuConfig, program: &Arc<dyn KernelProgram>, mode: MemoryMode) -> PerfRow {
    let stepped = GpuSimulator::new(cfg.clone(), Arc::clone(program), mode)
        .run_stepped(gpumem::DEFAULT_MAX_CYCLES)
        .expect("stepped run completes");
    let skipping = GpuSimulator::new(cfg.clone(), Arc::clone(program), mode)
        .run(gpumem::DEFAULT_MAX_CYCLES)
        .expect("skipping run completes");
    let hs = stepped.host.as_ref().expect("run fills host perf");
    let hk = skipping.host.as_ref().expect("run fills host perf");
    assert_eq!(
        stepped.cycles, skipping.cycles,
        "skipping must be observationally invisible"
    );
    PerfRow {
        benchmark: stepped.benchmark.clone(),
        mode: stepped.mode.clone(),
        cycles: stepped.cycles,
        stepped_wall_s: hs.wall_seconds,
        skipping_wall_s: hk.wall_seconds,
        speedup: if hk.wall_seconds > 0.0 {
            hs.wall_seconds / hk.wall_seconds
        } else {
            1.0
        },
        stepped_mcyc_per_s: hs.cycles_per_sec / 1e6,
        skipping_mcyc_per_s: hk.cycles_per_sec / 1e6,
        skipped_fraction: hk.skipped_fraction,
    }
}

fn run_perf(cfg: &GpuConfig, scale: f64, json: &Option<String>) {
    let mut rows = Vec::new();
    for mode in [MemoryMode::Hierarchy, MemoryMode::FixedLatency(800)] {
        for program in suite(scale) {
            eprintln!("perf: {} / {mode} ...", program.name());
            rows.push(perf_row(cfg, &program, mode));
        }
    }
    println!("HOST THROUGHPUT — PER-CYCLE STEPPING vs EVENT-HORIZON SKIPPING");
    println!(
        "{:>10} {:>18} {:>12} {:>11} {:>11} {:>9} {:>9}",
        "benchmark", "mode", "cycles", "step Mc/s", "skip Mc/s", "skipped", "speedup"
    );
    for r in &rows {
        println!(
            "{:>10} {:>18} {:>12} {:>11.2} {:>11.2} {:>8.1}% {:>8.2}x",
            r.benchmark,
            r.mode,
            r.cycles,
            r.stepped_mcyc_per_s,
            r.skipping_mcyc_per_s,
            100.0 * r.skipped_fraction,
            r.speedup
        );
    }
    for (label, filter) in [
        ("hierarchy", "hierarchy"),
        ("fixed-latency", "fixed-latency"),
    ] {
        let speedups: Vec<f64> = rows
            .iter()
            .filter(|r| r.mode.starts_with(filter))
            .map(|r| r.speedup)
            .collect();
        if !speedups.is_empty() {
            let geomean =
                (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
            println!("{label} geomean speedup: {geomean:.2}x");
        }
    }
    dump_json(json, "perf", &rows);
}

fn run_ablation(cfg: &GpuConfig, scale: f64, json: &Option<String>) {
    eprintln!("ablation: scaling each Table I row individually ...");
    let study = ablation_study(cfg, &suite(scale)).expect("ablation study completes");
    println!("{}", ablation_table(&study));
    dump_json(json, "ablation", &study);
}

fn main() {
    let args = parse_args();
    let cfg = GpuConfig::gtx480();
    if (args.scale - 1.0).abs() > f64::EPSILON {
        eprintln!(
            "note: workloads scaled by {} — numbers differ from EXPERIMENTS.md",
            args.scale
        );
    }
    match args.command.as_str() {
        "table1" => println!("{}", text::table_i()),
        "fig1" => run_fig1(&cfg, args.scale, &args.json_dir),
        "congestion" => run_congestion(&cfg, args.scale, &args.json_dir),
        "dse" => run_dse(&cfg, args.scale, &args.json_dir),
        "ablation" => run_ablation(&cfg, args.scale, &args.json_dir),
        "perf" => run_perf(&cfg, args.scale, &args.json_dir),
        "latency" => run_latency(&cfg, args.scale, &args.json_dir),
        "all" => {
            println!("{}", text::table_i());
            run_latency(&cfg, args.scale, &args.json_dir);
            println!();
            run_fig1(&cfg, args.scale, &args.json_dir);
            println!();
            run_congestion(&cfg, args.scale, &args.json_dir);
            println!();
            run_dse(&cfg, args.scale, &args.json_dir);
            println!();
            run_ablation(&cfg, args.scale, &args.json_dir);
        }
        other => die(&format!("unknown command {other}")),
    }
}
