//! Regenerates every table and figure of *Characterizing Memory
//! Bottlenecks in GPGPU Workloads* (IISWC 2016).
//!
//! ```text
//! repro [--scale F] [--quick] [--json DIR] [--threads LIST] [--epoch N|auto]
//!       [--check FILE] [--min-ratio R] [--floor R] [--profile] [--seeds N]
//!       [--repeat N] [--wedge-self-test] [--suite seed|ml|extended]
//!       [--trace-file FILE]... [--out FILE]
//!       [fig1|congestion|dse|table1|latency|ablation|perf|chaos|trace|run|
//!        trace-gen|sweep|all] [WORKLOAD]...
//! ```
//!
//! * `fig1`       — Fig. 1 latency-tolerance sweep (17 points × 8 benchmarks)
//! * `congestion` — Section III queue-occupancy study
//! * `dse`        — Section IV / Table I design-space exploration
//! * `table1`     — prints Table I itself (configuration values)
//! * `latency`    — Section II baseline-vs-ideal latency comparison
//! * `ablation`   — Section V future work: per-row ablation + cost ranking
//! * `perf`       — host throughput: the per-cycle stepped oracle vs the
//!   event-driven engine behind `run()` vs sharded parallel stepping
//!   (cycles/sec, skipped fraction, per-thread-count speedups). With
//!   `--profile` instead runs the event-driven engine with host-time
//!   instrumentation and prints per-component attribution (scheduler,
//!   cores, L1, crossbars, partitions, DRAM).
//! * `chaos`      — deterministic fault-injection sweep: each seed expands
//!   into a bit-identical fault schedule (crossbar port holds and
//!   head-of-queue rotations, MSHR stalls, DRAM lockouts); every seed is
//!   run twice serially and once per parallel thread count, and all runs
//!   must agree bit-for-bit. `--seeds N` sets the sweep width (default 4);
//!   `--wedge-self-test` instead wedges the response network on purpose
//!   and requires the watchdog to fire within its horizon with a
//!   structured diagnosis naming the blocked component chain.
//! * `trace`      — fetch-lifecycle latency breakdown (§III, Fig. 4–6):
//!   runs the suite with tracing enabled, prints per-stage latency tables
//!   and the queueing-vs-service split, requires the stage sums to
//!   reconcile with the observed end-to-end latency, and cross-checks that
//!   every engine (stepped, skipping, parallel at each `--threads` count)
//!   produces a bit-identical breakdown. With `--json DIR` also exports
//!   the slowest fetches as Chrome trace-event JSON
//!   (`trace_<benchmark>.json`, loadable in `chrome://tracing`).
//! * `run`        — executes the named workloads (and/or `--trace-file`
//!   traces) through all three engines — event-driven, per-cycle stepped,
//!   and sharded parallel at each `--threads` count — and requires every
//!   report to be bit-identical (full canonical JSON, host block
//!   stripped). A malformed trace file is a diagnosed, non-zero exit
//!   naming the offending line, never a panic.
//! * `trace-gen`  — encodes one workload (any synthetic benchmark name,
//!   `--scale` applied) as a portable `gpumem-trace v1` text file, written
//!   to `--out FILE` or stdout. The emitted trace replays bit-identically
//!   to the synthetic original: `repro run gemm --trace-file <(repro
//!   trace-gen gemm)`-style round trips are exact.
//! * `sweep`      — crash-safe design-space sweep over a content-addressed
//!   results store (`crates/sweep`). `--store DIR` selects the store;
//!   `--spec FILE` supplies a JSON grid (default: the §V grid at
//!   `--scale`); `--resume DIR` re-runs whatever spec the store already
//!   holds, serving committed cells as cache hits; `--query DIR` lists the
//!   store's committed digests without simulating anything. `--workers N`
//!   bounds the pool, `--retries N` and `--backoff-ms N` set the retry
//!   budget for host-dependent failures (deterministic failures never
//!   retry). Exit status: 0 on success, 1 if any cell failed, 2 on a bad
//!   spec or store.
//! * `all`        — everything above except `perf`, `chaos`, `trace` and
//!   `sweep` (default)
//!
//! `--scale F` scales the workloads (grid × F, iterations × √F) for quick
//! runs; the shipped EXPERIMENTS.md numbers use the full scale (1.0).
//! `--quick` is shorthand for `--scale 0.25` (the CI smoke setting).
//! `--json DIR` additionally dumps raw results as JSON.
//! `--threads LIST` (perf only) sets the parallel thread counts swept,
//! default `1,2,4`.
//! `--epoch N|auto` (perf, chaos, trace) selects the parallel engine's
//! epoch policy: `auto` (the default) lets the engine free-run shards
//! through the largest provably-safe epoch each round, `N` caps epochs at
//! `N` cycles, and `1` degenerates to the per-cycle barrier engine. Every
//! policy is bit-identical to serial stepping; only host throughput
//! changes. The chosen spelling is recorded in each parallel snapshot row.
//! `--check FILE` (perf only) compares the measured speedups against a
//! committed baseline (e.g. `BENCH_PARALLEL.json`) and exits non-zero if
//! any engine's per-mode geomean speedup regressed below `--min-ratio`
//! times the baseline's (default 0.8, i.e. a 20% tolerance; CI's trace
//! overhead gate uses 0.98). Speedups — not absolute cycles/sec — are
//! compared, so a baseline recorded on one host remains meaningful on
//! another.
//! `--floor R` (perf only) is an absolute per-benchmark gate on the
//! event-driven engine: exits non-zero if any single benchmark's
//! event-vs-stepped speedup falls below R. CI runs `--floor 1.0` — the
//! event engine must never be slower than the oracle it replaces, on any
//! workload, not just in geomean.
//! `--repeat N` (perf only) runs each engine N times per benchmark and
//! keeps the fastest wall. Single-shot timings on a busy or single-CPU
//! host swing by tens of percent; CI gates use `--repeat 3`.
//! `--profile` (perf only) switches the command to per-component
//! host-time attribution instead of the engine comparison sweep.
//! `--suite seed|ml|extended` selects the synthetic workload family the
//! suite commands iterate: the paper's eight benchmarks (`seed`, the
//! default), the three ML kernels (`ml`: tiled GEMM, im2col conv,
//! attention), or both (`extended`).
//! `--trace-file FILE` (repeatable) appends a `gpumem-trace v1` trace as
//! an extra workload: suite commands (`fig1`, `perf`, `trace`, …) and
//! `run` simulate it alongside the synthetics, and `sweep` adds a
//! `trace:<path>` workload to the grid, content-addressed by the trace's
//! byte digest rather than its path.
//! `--out FILE` (trace-gen only) writes the encoded trace to a file
//! instead of stdout.

use std::sync::Arc;

use gpumem::experiments::ablation::{ablation_study, ablation_table};
use gpumem::experiments::congestion::congestion_study;
use gpumem::experiments::design_space::design_space_exploration;
use gpumem::experiments::latency_tolerance::{latency_tolerance_profile, FIG1_LATENCIES};
use gpumem::prelude::*;
use gpumem::text;
use gpumem_sim::{chrome_trace_events, ChaosConfig, LatencyBreakdown, SimError, TraceConfig};
use gpumem_simt::KernelProgram;

/// The `--epoch` flag: the policy handed to the parallel engine plus the
/// exact spelling the user gave, recorded verbatim in snapshot rows so a
/// committed baseline names the engine configuration that produced it.
#[derive(Clone)]
struct EpochChoice {
    spelling: String,
    policy: EpochPolicy,
}

impl EpochChoice {
    fn parse(spec: &str) -> Option<EpochChoice> {
        let policy = match spec {
            "auto" => EpochPolicy::Auto,
            n => EpochPolicy::Fixed(n.parse().ok().filter(|&n| n > 0)?),
        };
        Some(EpochChoice {
            spelling: spec.to_owned(),
            policy,
        })
    }
}

struct Args {
    scale: f64,
    json_dir: Option<String>,
    threads: Vec<usize>,
    epoch: EpochChoice,
    check: Option<String>,
    min_ratio: f64,
    floor: Option<f64>,
    profile: bool,
    seeds: u64,
    repeat: usize,
    wedge_self_test: bool,
    spec: Option<String>,
    store: Option<String>,
    resume: Option<String>,
    query: Option<String>,
    workers: usize,
    retries: u32,
    backoff_ms: u64,
    suite: String,
    trace_files: Vec<String>,
    out: Option<String>,
    targets: Vec<String>,
    command: String,
}

fn parse_args() -> Args {
    let mut scale = 1.0;
    let mut json_dir = None;
    let mut threads = vec![1, 2, 4];
    let mut epoch = EpochChoice::parse("auto").expect("default epoch spec is valid");
    let mut check = None;
    let mut min_ratio = 0.8;
    let mut floor = None;
    let mut profile = false;
    let mut seeds = 4;
    let mut repeat = 1;
    let mut wedge_self_test = false;
    let mut spec = None;
    let mut store = None;
    let mut resume = None;
    let mut query = None;
    let mut workers = 0;
    let mut retries = 2;
    let mut backoff_ms = 0;
    let mut suite_choice = "seed".to_owned();
    let mut trace_files = Vec::new();
    let mut out = None;
    let mut targets = Vec::new();
    let mut command = "all".to_owned();
    // simlint::allow(no-env, reason = "host CLI argument parsing")
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--quick" => scale = 0.25,
            "--json" => {
                json_dir = Some(it.next().unwrap_or_else(|| die("--json needs a directory")));
            }
            "--threads" => {
                let list = it
                    .next()
                    .unwrap_or_else(|| die("--threads needs a comma-separated list"));
                threads = list
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse()
                            .ok()
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| die(&format!("bad thread count {t:?}")))
                    })
                    .collect();
                if threads.is_empty() {
                    die("--threads needs at least one count");
                }
            }
            "--epoch" => {
                let spec = it
                    .next()
                    .unwrap_or_else(|| die("--epoch needs `auto` or a positive cycle count"));
                epoch = EpochChoice::parse(&spec)
                    .unwrap_or_else(|| die(&format!("bad --epoch spec {spec:?}")));
            }
            "--check" => {
                check = Some(it.next().unwrap_or_else(|| die("--check needs a file")));
            }
            "--min-ratio" => {
                min_ratio = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r: &f64| r > 0.0 && r <= 1.0)
                    .unwrap_or_else(|| die("--min-ratio needs a number in (0, 1]"));
            }
            "--floor" => {
                floor = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&r: &f64| r > 0.0)
                        .unwrap_or_else(|| die("--floor needs a positive number")),
                );
            }
            "--profile" => profile = true,
            "--seeds" => {
                seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--seeds needs a positive count"));
            }
            "--repeat" => {
                repeat = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--repeat needs a positive count"));
            }
            "--wedge-self-test" => wedge_self_test = true,
            "--spec" => {
                spec = Some(it.next().unwrap_or_else(|| die("--spec needs a file")));
            }
            "--store" => {
                store = Some(
                    it.next()
                        .unwrap_or_else(|| die("--store needs a directory")),
                );
            }
            "--resume" => {
                resume = Some(
                    it.next()
                        .unwrap_or_else(|| die("--resume needs a store directory")),
                );
            }
            "--query" => {
                query = Some(
                    it.next()
                        .unwrap_or_else(|| die("--query needs a store directory")),
                );
            }
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--workers needs a count (0 = one per core)"));
            }
            "--retries" => {
                retries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--retries needs a positive attempt budget"));
            }
            "--backoff-ms" => {
                backoff_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--backoff-ms needs a millisecond count"));
            }
            "--suite" => {
                suite_choice = it
                    .next()
                    .filter(|s| matches!(s.as_str(), "seed" | "ml" | "extended"))
                    .unwrap_or_else(|| die("--suite needs `seed`, `ml` or `extended`"));
            }
            "--trace-file" => {
                trace_files.push(
                    it.next()
                        .unwrap_or_else(|| die("--trace-file needs a trace file path")),
                );
            }
            "--out" => {
                out = Some(it.next().unwrap_or_else(|| die("--out needs a file path")));
            }
            "fig1" | "congestion" | "dse" | "table1" | "latency" | "ablation" | "perf"
            | "chaos" | "trace" | "run" | "trace-gen" | "sweep" | "all" => {
                command = arg;
            }
            other if !other.starts_with('-') => targets.push(other.to_owned()),
            other => die(&format!("unknown argument: {other}")),
        }
    }
    if !targets.is_empty() && !matches!(command.as_str(), "run" | "trace-gen") {
        die(&format!(
            "workload names are only accepted by `run` and `trace-gen` (got {:?})",
            targets[0]
        ));
    }
    Args {
        scale,
        json_dir,
        threads,
        epoch,
        check,
        min_ratio,
        floor,
        profile,
        seeds,
        repeat,
        wedge_self_test,
        spec,
        store,
        resume,
        query,
        workers,
        retries,
        backoff_ms,
        suite: suite_choice,
        trace_files,
        out,
        targets,
        command,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: repro [--scale F] [--quick] [--json DIR] [--threads LIST] [--epoch N|auto] \
         [--check FILE] [--min-ratio R] [--floor R] [--profile] [--seeds N] [--repeat N] \
         [--wedge-self-test] [--spec FILE] [--store DIR] [--resume DIR] [--query DIR] \
         [--workers N] [--retries N] [--backoff-ms N] [--suite seed|ml|extended] \
         [--trace-file FILE]... [--out FILE] \
         [fig1|congestion|dse|table1|latency|ablation|perf|chaos|trace|run|trace-gen|sweep|all] \
         [WORKLOAD]..."
    );
    std::process::exit(2)
}

/// The synthetic names behind a `--suite` choice (validated at parse time).
fn suite_names(choice: &str) -> Vec<&'static str> {
    match choice {
        "ml" => gpumem_workloads::ML_BENCHMARK_NAMES.to_vec(),
        "extended" => gpumem_workloads::extended_names(),
        _ => gpumem_workloads::BENCHMARK_NAMES.to_vec(),
    }
}

fn suite(scale: f64, choice: &str) -> Vec<Arc<dyn KernelProgram>> {
    if choice == "seed" && (scale - 1.0).abs() < f64::EPSILON {
        benchmarks()
    } else {
        gpumem_bench::scaled_named_suite(&suite_names(choice), scale)
    }
}

/// Reads and decodes one `gpumem-trace v1` file as a workload. Any
/// failure — unreadable file or malformed trace — is a diagnosed exit 2;
/// the parser's typed errors carry the offending line number, so the
/// message pinpoints the defect without a stack trace.
fn load_trace(path: &str) -> Arc<dyn KernelProgram> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read trace {path}: {e}");
        std::process::exit(2)
    });
    match gpumem_tracefmt::parse_str(&text) {
        Ok(kernel) => Arc::new(kernel),
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2)
        }
    }
}

/// The workload list a suite command iterates: the selected synthetic
/// family at `--scale`, plus one traced workload per `--trace-file`.
fn programs_for(args: &Args) -> Vec<Arc<dyn KernelProgram>> {
    let mut programs = suite(args.scale, &args.suite);
    programs.extend(args.trace_files.iter().map(|p| load_trace(p)));
    programs
}

fn dump_json<T: serde::Serialize>(dir: &Option<String>, name: &str, value: &T) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{name}.json");
        let json = serde_json::to_string_pretty(value).expect("serialize");
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

fn run_fig1(cfg: &GpuConfig, programs: &[Arc<dyn KernelProgram>], json: &Option<String>) {
    let mut profiles = Vec::new();
    for program in programs {
        eprintln!("fig1: sweeping {} ...", program.name());
        let profile =
            latency_tolerance_profile(cfg, program, &FIG1_LATENCIES).expect("fig1 sweep completes");
        profiles.push(profile);
    }
    println!("{}", text::fig1_table(&profiles));
    dump_json(json, "fig1", &profiles);
}

fn run_congestion(cfg: &GpuConfig, programs: &[Arc<dyn KernelProgram>], json: &Option<String>) {
    eprintln!("congestion: running suite on baseline ...");
    let study = congestion_study(cfg, programs).expect("congestion study completes");
    println!("{}", text::congestion_table(&study));
    dump_json(json, "congestion", &study);
}

fn run_dse(cfg: &GpuConfig, programs: &[Arc<dyn KernelProgram>], json: &Option<String>) {
    eprintln!("dse: running suite over Section IV design points ...");
    let study = design_space_exploration(cfg, programs, &DesignPoint::SECTION_IV)
        .expect("design-space exploration completes");
    println!("{}", text::dse_table(&study));
    dump_json(json, "dse", &study);
}

fn run_latency(cfg: &GpuConfig, programs: &[Arc<dyn KernelProgram>], json: &Option<String>) {
    eprintln!("latency: measuring loaded baseline latencies ...");
    let study = congestion_study(cfg, programs).expect("baseline runs complete");
    println!("SECTION II — BASELINE MEMORY LATENCIES vs IDEAL");
    println!("(ideal: L2 hit 120 cycles, DRAM 220 cycles via L2)");
    println!("{:>10} {:>24}", "benchmark", "avg L1 miss latency (cyc)");
    for r in &study.rows {
        println!("{:>10} {:>24.0}", r.benchmark, r.avg_l1_miss_latency);
    }
    let avg = study
        .rows
        .iter()
        .map(|r| r.avg_l1_miss_latency)
        .sum::<f64>()
        / study.rows.len().max(1) as f64;
    println!("{:>10} {avg:>24.0}", "AVERAGE");
    dump_json(json, "latency", &study);
}

/// One parallel measurement inside a [`PerfRow`].
#[derive(serde::Serialize, serde::Deserialize)]
struct ParallelPoint {
    threads: u64,
    /// The `--epoch` spelling this point was measured under (`"auto"`,
    /// `"1"`, …). Pre-epoch baselines deserialize to `None`, which the
    /// `--check` gate treats as comparable to any current policy (they
    /// measured the per-cycle engine, the degeneracy every policy must
    /// beat or match).
    epoch: Option<String>,
    /// Epoch rounds the engine actually ran (0 under the per-cycle
    /// degeneracy) and the largest epoch it committed, from
    /// [`SimReport::host`]; recorded so a snapshot shows how much
    /// barrier elision the policy really bought on this workload.
    epoch_rounds: Option<u64>,
    max_epoch: Option<u64>,
    wall_s: f64,
    mcyc_per_s: f64,
    /// Wall-clock speedup over the per-cycle stepped reference run.
    speedup: f64,
}

/// One row of the `perf` command: the same run executed strictly
/// per-cycle, with event-horizon skipping, and sharded across each
/// requested thread count.
#[derive(serde::Serialize, serde::Deserialize)]
struct PerfRow {
    benchmark: String,
    mode: String,
    cycles: u64,
    stepped_wall_s: f64,
    skipping_wall_s: f64,
    speedup: f64,
    stepped_mcyc_per_s: f64,
    skipping_mcyc_per_s: f64,
    skipped_fraction: f64,
    parallel: Vec<ParallelPoint>,
}

/// The `perf` command's JSON artifact (committed as `BENCH_PARALLEL.json`).
///
/// `host_cpus` records how much hardware parallelism the recording host
/// actually had: parallel speedups are meaningless without it, and a
/// single-CPU container legitimately records slowdowns.
#[derive(serde::Serialize, serde::Deserialize)]
struct PerfSummary {
    host_cpus: u64,
    scale: f64,
    rows: Vec<PerfRow>,
}

/// Runs `run` `n` times and keeps the fastest-wall report. Engine timing
/// on a busy or single-CPU host is noisy; the minimum wall is the
/// standard low-noise estimator (interference only ever adds time).
fn best_of(n: usize, mut run: impl FnMut() -> SimReport) -> SimReport {
    let mut best = run();
    for _ in 1..n {
        let r = run();
        let faster = match (r.host.as_ref(), best.host.as_ref()) {
            (Some(a), Some(b)) => a.wall_seconds < b.wall_seconds,
            _ => false,
        };
        if faster {
            best = r;
        }
    }
    best
}

fn perf_row(
    cfg: &GpuConfig,
    program: &Arc<dyn KernelProgram>,
    mode: MemoryMode,
    threads: &[usize],
    epoch: &EpochChoice,
    repeat: usize,
) -> PerfRow {
    let stepped = best_of(repeat, || {
        GpuSimulator::new(cfg.clone(), Arc::clone(program), mode)
            .run_stepped(gpumem::DEFAULT_MAX_CYCLES)
            .expect("stepped run completes")
    });
    let skipping = best_of(repeat, || {
        GpuSimulator::new(cfg.clone(), Arc::clone(program), mode)
            .run(gpumem::DEFAULT_MAX_CYCLES)
            .expect("skipping run completes")
    });
    let hs = stepped.host.as_ref().expect("run fills host perf");
    let hk = skipping.host.as_ref().expect("run fills host perf");
    assert_eq!(
        stepped.cycles, skipping.cycles,
        "skipping must be observationally invisible"
    );
    let parallel = threads
        .iter()
        .map(|&n| {
            let report = best_of(repeat, || {
                GpuSimulator::new(cfg.clone(), Arc::clone(program), mode)
                    .run_parallel_with(gpumem::DEFAULT_MAX_CYCLES, n, epoch.policy)
                    .expect("parallel run completes")
            });
            assert_eq!(
                stepped.cycles, report.cycles,
                "parallel stepping must be observationally invisible"
            );
            let hp = report.host.as_ref().expect("run fills host perf");
            ParallelPoint {
                threads: n as u64,
                epoch: Some(epoch.spelling.clone()),
                epoch_rounds: hp.epoch_rounds,
                max_epoch: hp.max_epoch,
                wall_s: hp.wall_seconds,
                mcyc_per_s: hp.cycles_per_sec / 1e6,
                speedup: if hp.wall_seconds > 0.0 {
                    hs.wall_seconds / hp.wall_seconds
                } else {
                    1.0
                },
            }
        })
        .collect();
    PerfRow {
        benchmark: stepped.benchmark.clone(),
        mode: stepped.mode.clone(),
        cycles: stepped.cycles,
        stepped_wall_s: hs.wall_seconds,
        skipping_wall_s: hk.wall_seconds,
        speedup: if hk.wall_seconds > 0.0 {
            hs.wall_seconds / hk.wall_seconds
        } else {
            1.0
        },
        stepped_mcyc_per_s: hs.cycles_per_sec / 1e6,
        skipping_mcyc_per_s: hk.cycles_per_sec / 1e6,
        skipped_fraction: hk.skipped_fraction,
        parallel,
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let (sum, n) = values.fold((0.0, 0usize), |(s, n), v| (s + v.ln(), n + 1));
    (n > 0).then(|| (sum / n as f64).exp())
}

fn run_perf(
    cfg: &GpuConfig,
    programs: &[Arc<dyn KernelProgram>],
    scale: f64,
    json: &Option<String>,
    threads: &[usize],
    epoch: &EpochChoice,
    repeat: usize,
) -> PerfSummary {
    let mut rows = Vec::new();
    for mode in [MemoryMode::Hierarchy, MemoryMode::FixedLatency(800)] {
        for program in programs {
            eprintln!("perf: {} / {mode} ...", program.name());
            rows.push(perf_row(cfg, program, mode, threads, epoch, repeat));
        }
    }
    println!("HOST THROUGHPUT — STEPPING vs SKIPPING vs SHARDED PARALLEL");
    println!("(parallel engine epoch policy: {})", epoch.spelling);
    print!(
        "{:>10} {:>18} {:>12} {:>11} {:>11} {:>9} {:>9}",
        "benchmark", "mode", "cycles", "step Mc/s", "skip Mc/s", "skipped", "speedup"
    );
    for n in threads {
        print!(" {:>8}", format!("par×{n}"));
    }
    println!();
    for r in &rows {
        print!(
            "{:>10} {:>18} {:>12} {:>11.2} {:>11.2} {:>8.1}% {:>8.2}x",
            r.benchmark,
            r.mode,
            r.cycles,
            r.stepped_mcyc_per_s,
            r.skipping_mcyc_per_s,
            100.0 * r.skipped_fraction,
            r.speedup
        );
        for p in &r.parallel {
            print!(" {:>7.2}x", p.speedup);
        }
        println!();
    }
    for (label, filter) in [
        ("hierarchy", "hierarchy"),
        ("fixed-latency", "fixed-latency"),
    ] {
        let in_mode = || rows.iter().filter(|r| r.mode.starts_with(filter));
        if let Some(g) = geomean(in_mode().map(|r| r.speedup)) {
            println!("{label} geomean skipping speedup: {g:.2}x");
        }
        for (i, n) in threads.iter().enumerate() {
            if let Some(g) = geomean(in_mode().map(|r| r.parallel[i].speedup)) {
                println!("{label} geomean parallel speedup at {n} threads: {g:.2}x");
            }
        }
    }
    let summary = PerfSummary {
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        scale,
        rows,
    };
    println!("(host has {} CPUs)", summary.host_cpus);
    dump_json(json, "perf", &summary);
    let horizon: Vec<EventHorizonRow> = summary
        .rows
        .iter()
        .map(|r| EventHorizonRow {
            benchmark: r.benchmark.clone(),
            mode: r.mode.clone(),
            engine: "event",
            host_cpus: summary.host_cpus,
            cycles: r.cycles,
            stepped_wall_s: r.stepped_wall_s,
            event_wall_s: r.skipping_wall_s,
            speedup: r.speedup,
            stepped_mcyc_per_s: r.stepped_mcyc_per_s,
            event_mcyc_per_s: r.skipping_mcyc_per_s,
            skipped_fraction: r.skipped_fraction,
        })
        .collect();
    dump_json(json, "event_horizon", &horizon);
    summary
}

/// One row of the committed `BENCH_EVENT_HORIZON.json` snapshot: the
/// event-driven engine behind `run()` measured against the per-cycle
/// stepped oracle. `engine` and `host_cpus` are recorded so cross-host
/// trajectories of the snapshot stay interpretable.
#[derive(serde::Serialize)]
struct EventHorizonRow {
    benchmark: String,
    mode: String,
    engine: &'static str,
    host_cpus: u64,
    cycles: u64,
    stepped_wall_s: f64,
    event_wall_s: f64,
    speedup: f64,
    stepped_mcyc_per_s: f64,
    event_mcyc_per_s: f64,
    skipped_fraction: f64,
}

/// Absolute per-benchmark floor on the event-vs-stepped speedup: the
/// event-driven engine must match or beat the stepped oracle on every
/// single workload, not merely in geomean — one pathological benchmark
/// could otherwise hide inside a healthy average.
fn check_floor(current: &PerfSummary, floor: f64) {
    let mut failed = false;
    for r in &current.rows {
        if r.speedup < floor {
            println!(
                "floor: {} / {}: event-vs-stepped speedup {:.2}x is below {floor}x",
                r.mode, r.benchmark, r.speedup
            );
            failed = true;
        }
    }
    if failed {
        eprintln!(
            "error: the event-driven engine fell below {floor}x of stepped on some benchmark"
        );
        std::process::exit(1);
    }
    println!("perf floor: every benchmark's event-vs-stepped speedup is >= {floor}x");
}

/// One benchmark's per-component host-time attribution in the
/// `--profile` JSON artifact.
#[derive(serde::Serialize)]
struct ProfileRow {
    benchmark: String,
    mode: String,
    profile: gpumem_sim::EngineProfile,
}

/// The `perf --profile` study: runs the event-driven engine with
/// host-time instrumentation and attributes wall time to components
/// (scheduler, cores, L1, crossbars, partitions, DRAM), so perf work
/// starts from data rather than guesses. The instrumented runs pay for
/// their own stopwatches — absolute wall times here are slightly above
/// the uninstrumented sweep's, but the *shares* are what matter.
fn run_profile(cfg: &GpuConfig, programs: &[Arc<dyn KernelProgram>], json: &Option<String>) {
    println!("PER-COMPONENT HOST-TIME ATTRIBUTION — event-driven engine");
    println!("(awake%: fraction of executed cycles each component class actually ran)");
    println!(
        "{:>10} {:>18} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>10} {:>9} {:>7} {:>7} {:>7}",
        "benchmark",
        "mode",
        "wall_s",
        "sched%",
        "cores%",
        "L1%",
        "xbar%",
        "parts%",
        "DRAM%",
        "other%",
        "executed",
        "skipped",
        "cores",
        "parts",
        "xbars"
    );
    let mut rows = Vec::new();
    for mode in [MemoryMode::Hierarchy, MemoryMode::FixedLatency(800)] {
        for program in programs {
            eprintln!("profile: {} / {mode} ...", program.name());
            let (report, p) = GpuSimulator::new(cfg.clone(), Arc::clone(program), mode)
                .run_profiled(gpumem::DEFAULT_MAX_CYCLES)
                .expect("profiled run completes");
            let pct = |s: f64| 100.0 * s / p.wall_seconds.max(1e-12);
            let other = p.wall_seconds
                - p.scheduler_seconds
                - p.cores_seconds
                - p.l1_seconds
                - p.crossbar_seconds
                - p.partitions_seconds
                - p.dram_seconds;
            let awake = |runs: u64, per_cycle: u64| {
                100.0 * runs as f64 / (p.executed_cycles.max(1) * per_cycle.max(1)) as f64
            };
            println!(
                "{:>10} {:>18} {:>8.3} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>10} {:>9} {:>6.1} {:>6.1} {:>6.1}",
                report.benchmark,
                report.mode,
                p.wall_seconds,
                pct(p.scheduler_seconds),
                pct(p.cores_seconds),
                pct(p.l1_seconds),
                pct(p.crossbar_seconds),
                pct(p.partitions_seconds),
                pct(p.dram_seconds),
                pct(other.max(0.0)),
                p.executed_cycles,
                p.skipped_cycles,
                awake(p.core_runs, cfg.num_cores as u64),
                awake(p.partition_runs, cfg.num_partitions as u64),
                awake(p.req_xbar_ticks + p.resp_xbar_ticks, 2),
            );
            rows.push(ProfileRow {
                benchmark: report.benchmark.clone(),
                mode: report.mode.clone(),
                profile: p,
            });
        }
    }
    dump_json(json, "profile", &rows);
}

/// One benchmark's (current, baseline) speedup pair inside a gate.
struct GatePair {
    benchmark: String,
    cur: f64,
    base: f64,
}

/// Applies one ≥`min_ratio` geomean-ratio gate and, on failure, prints the
/// per-benchmark breakdown (worst ratio first) so a regression is
/// diagnosable from CI logs without re-running locally.
fn gate(label: &str, pairs: &[GatePair], min_ratio: f64, failed: &mut bool) {
    let (Some(cur), Some(base)) = (
        geomean(pairs.iter().map(|p| p.cur)),
        geomean(pairs.iter().map(|p| p.base)),
    ) else {
        return;
    };
    let ratio = cur / base;
    let verdict = if ratio < min_ratio {
        *failed = true;
        "REGRESSED"
    } else {
        "ok"
    };
    println!("check {label}: {cur:.2}x vs baseline {base:.2}x ({ratio:.2}) {verdict}");
    if ratio < min_ratio {
        let mut rows: Vec<(f64, &GatePair)> = pairs.iter().map(|p| (p.cur / p.base, p)).collect();
        rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for (r, p) in rows {
            let mark = if r < min_ratio { "  <-- offender" } else { "" };
            println!(
                "    {label} / {}: {:.2}x vs baseline {:.2}x ({r:.2}){mark}",
                p.benchmark, p.cur, p.base
            );
        }
    }
}

/// Pairs current and baseline rows benchmark-by-benchmark (within one mode
/// filter), so the gate compares like with like and can name offenders.
fn pair_rows<'a>(cur: impl Iterator<Item = (&'a str, f64)>, base: &[(&str, f64)]) -> Vec<GatePair> {
    cur.filter_map(|(bench, c)| {
        base.iter()
            .find(|(b, _)| *b == bench)
            .map(|&(_, v)| GatePair {
                benchmark: bench.to_owned(),
                cur: c,
                base: v,
            })
    })
    .collect()
}

/// Compares the freshly measured speedups against a committed baseline.
/// Exits non-zero if any engine's per-mode geomean speedup fell below
/// `min_ratio` times the baseline's. Ratios of speedups — not absolute
/// throughput — are compared, so the gate is portable across hosts; a
/// faster host can only pass more easily, never spuriously fail. On gate
/// failure the offending benchmark/mode pairs are printed, worst first.
fn check_perf(current: &PerfSummary, baseline_path: &str, min_ratio: f64) {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| die(&format!("cannot read {baseline_path}: {e}")));
    // The committed baseline is a list of summaries, one per workload
    // scale (a bare summary is accepted too). Speedups at different
    // scales are not comparable — tiny runs amortize fixed costs
    // differently — so the gate insists on a scale-matched entry.
    let baselines: Vec<PerfSummary> = serde_json::from_str(&text).unwrap_or_else(|_| {
        let one: PerfSummary = serde_json::from_str(&text)
            .unwrap_or_else(|e| die(&format!("cannot parse {baseline_path}: {e}")));
        vec![one]
    });
    let baseline = baselines
        .iter()
        .find(|b| (b.scale - current.scale).abs() < f64::EPSILON)
        .unwrap_or_else(|| {
            die(&format!(
                "{baseline_path} has no baseline at scale {}; re-record one",
                current.scale
            ))
        });
    let mut failed = false;
    for filter in ["hierarchy", "fixed-latency"] {
        let cur_mode = || current.rows.iter().filter(|r| r.mode.starts_with(filter));
        let base_mode = || baseline.rows.iter().filter(|r| r.mode.starts_with(filter));
        let base_skip: Vec<(&str, f64)> = base_mode()
            .map(|r| (r.benchmark.as_str(), r.speedup))
            .collect();
        gate(
            &format!("{filter} skipping"),
            &pair_rows(
                cur_mode().map(|r| (r.benchmark.as_str(), r.speedup)),
                &base_skip,
            ),
            min_ratio,
            &mut failed,
        );
        // Match parallel points by (thread count, epoch policy): the
        // current sweep may be narrower than the baseline's (CI runs a
        // single count). A pre-epoch baseline point (`epoch: None`) is
        // comparable to any current policy — it measured the per-cycle
        // engine, the degeneracy every policy must beat or match.
        let counts: Vec<(u64, String)> = cur_mode()
            .flat_map(|r| {
                r.parallel
                    .iter()
                    .map(|p| (p.threads, p.epoch.clone().unwrap_or_default()))
            })
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for (n, epoch) in counts {
            let at =
                |rows: &mut dyn Iterator<Item = &PerfRow>, exact: bool| -> Vec<(String, f64)> {
                    rows.filter_map(|r| {
                        r.parallel
                            .iter()
                            .find(|p| {
                                p.threads == n
                                    && match &p.epoch {
                                        Some(e) => *e == epoch,
                                        None => !exact,
                                    }
                            })
                            .map(|p| (r.benchmark.clone(), p.speedup))
                    })
                    .collect()
                };
            let cur_at = at(&mut cur_mode(), true);
            let base_at = at(&mut base_mode(), false);
            if base_at.is_empty() {
                println!("check {filter} parallel×{n} epoch {epoch}: no baseline, skipped");
                continue;
            }
            let base_refs: Vec<(&str, f64)> =
                base_at.iter().map(|(b, v)| (b.as_str(), *v)).collect();
            gate(
                &format!("{filter} parallel×{n} epoch {epoch}"),
                &pair_rows(cur_at.iter().map(|(b, v)| (b.as_str(), *v)), &base_refs),
                min_ratio,
                &mut failed,
            );
        }
    }
    if failed {
        eprintln!(
            "error: throughput regressed below {:.0}% of {baseline_path}",
            100.0 * min_ratio
        );
        std::process::exit(1);
    }
    println!("perf check against {baseline_path}: ok (min ratio {min_ratio})");
}

/// Watchdog horizon for chaos runs: far beyond any transient fault
/// duration (so legitimate slowdowns never trip it), far below the cycle
/// budget (so a genuine wedge is reported in seconds, not hours).
const CHAOS_HORIZON: u64 = 10_000;

/// The chaos workload: one memory-intensive suite benchmark, scaled like
/// every other command. Chaos only perturbs the memory hierarchy, so the
/// sweep runs in [`MemoryMode::Hierarchy`].
fn chaos_kernel(scale: f64) -> Arc<dyn KernelProgram> {
    let p = gpumem_workloads::params_of("cfd")
        .expect("known benchmark")
        .scaled(scale);
    Arc::new(gpumem_workloads::SyntheticKernel::new(p))
}

fn chaos_run(
    cfg: &GpuConfig,
    program: &Arc<dyn KernelProgram>,
    chaos: ChaosConfig,
    parallel_threads: Option<usize>,
    policy: EpochPolicy,
) -> Result<SimReport, SimError> {
    let mut sim = GpuSimulator::new(cfg.clone(), Arc::clone(program), MemoryMode::Hierarchy);
    sim.set_chaos(chaos);
    sim.set_watchdog(Some(CHAOS_HORIZON));
    match parallel_threads {
        Some(n) => sim.run_parallel_with(gpumem::DEFAULT_MAX_CYCLES, n, policy),
        None => sim.run_stepped(gpumem::DEFAULT_MAX_CYCLES),
    }
}

/// Canonical form of a chaos outcome: completed reports serialize to JSON
/// with the host block removed (it legitimately differs between engines),
/// typed errors to their debug form. Equal strings = bit-identical runs.
fn chaos_canonical(outcome: &Result<SimReport, SimError>) -> String {
    match outcome {
        Ok(report) => {
            let mut r = report.clone();
            r.host = None;
            serde_json::to_string(&r).expect("serialize report")
        }
        Err(e) => format!("{e:?}"),
    }
}

/// Seeded chaos sweep: every seed's fault schedule must be bit-identical
/// across a serial replay and every parallel thread count, whether the
/// outcome is a completed report or a typed error.
fn run_chaos(cfg: &GpuConfig, scale: f64, seeds: u64, threads: &[usize], epoch: &EpochChoice) {
    let program = chaos_kernel(scale);
    println!(
        "CHAOS SWEEP — {seeds} seed(s), standard fault mix, benchmark {}, epoch {}",
        program.name(),
        epoch.spelling
    );
    let mut failed = false;
    for seed in 0..seeds {
        let chaos = ChaosConfig::standard(seed);
        let first = chaos_run(cfg, &program, chaos, None, epoch.policy);
        let reference = chaos_canonical(&first);
        let mut ok = true;
        if chaos_canonical(&chaos_run(cfg, &program, chaos, None, epoch.policy)) != reference {
            println!("seed {seed}: serial replay diverged from the first run");
            ok = false;
        }
        for &n in threads {
            if chaos_canonical(&chaos_run(cfg, &program, chaos, Some(n), epoch.policy)) != reference
            {
                println!("seed {seed}: {n}-thread run diverged from the serial reference");
                ok = false;
            }
        }
        let label = match &first {
            Ok(r) => format!(
                "completed in {} cycles, {} instructions",
                r.cycles, r.instructions
            ),
            Err(e) => format!("typed failure: {e}"),
        };
        println!(
            "seed {seed:>3}: {label} [{}]",
            if ok { "deterministic" } else { "DIVERGED" }
        );
        failed |= !ok;
    }
    if failed {
        eprintln!("error: chaos schedules were not engine-independent");
        std::process::exit(1);
    }
    println!("chaos sweep: all {seeds} seed(s) bit-identical across engines and thread counts");
}

/// Watchdog self-test: wedge the response network on purpose at a seeded
/// cycle and require every engine to report [`SimError::Wedged`] within
/// the horizon, with a diagnosis naming the blocked component chain.
fn run_wedge_self_test(
    cfg: &GpuConfig,
    scale: f64,
    seeds: u64,
    threads: &[usize],
    epoch: &EpochChoice,
) {
    let program = chaos_kernel(scale);
    println!("WATCHDOG SELF-TEST — {seeds} seeded wedge fixture(s)");
    for seed in 0..seeds {
        let mut chaos = ChaosConfig::standard(seed);
        let wedge_at = 500 + 97 * seed;
        chaos.wedge_at = Some(wedge_at);
        let diagnosis = match chaos_run(cfg, &program, chaos, None, epoch.policy) {
            Err(SimError::Wedged { diagnosis }) => diagnosis,
            Err(other) => {
                eprintln!("error: seed {seed}: expected a wedge diagnosis, got: {other}");
                std::process::exit(1);
            }
            Ok(r) => {
                eprintln!(
                    "error: seed {seed}: run completed ({} cycles) despite the wedge",
                    r.cycles
                );
                std::process::exit(1);
            }
        };
        if diagnosis
            .cycle
            .saturating_sub(diagnosis.last_progress_cycle)
            != diagnosis.horizon
        {
            eprintln!("error: seed {seed}: watchdog fired outside its horizon: {diagnosis:?}");
            std::process::exit(1);
        }
        if diagnosis.blocked_chain.is_empty() {
            eprintln!("error: seed {seed}: diagnosis names no blocked components: {diagnosis:?}");
            std::process::exit(1);
        }
        // The parallel engine restores the machine before diagnosing, so
        // it must reach the exact same diagnosis.
        for &n in threads {
            match chaos_run(cfg, &program, chaos, Some(n), epoch.policy) {
                Err(SimError::Wedged { diagnosis: par }) if par == diagnosis => {}
                other => {
                    eprintln!("error: seed {seed}: {n}-thread wedge diagnosis diverged: {other:?}");
                    std::process::exit(1);
                }
            }
        }
        println!(
            "seed {seed:>3}: wedged at cycle {wedge_at}, detected at {} (horizon {}), \
             blocked: {}",
            diagnosis.cycle,
            diagnosis.horizon,
            diagnosis.blocked_chain.join(" -> "),
        );
    }
    println!("watchdog self-test: every seeded wedge detected within the horizon");
}

/// One benchmark's entry in the `trace` command's JSON artifact.
#[derive(serde::Serialize)]
struct TraceRow {
    benchmark: String,
    breakdown: LatencyBreakdown,
}

/// Canonical form of a traced report for engine cross-checks: full JSON
/// with the host block removed (it legitimately differs between engines).
/// Equal strings = bit-identical runs, latency breakdown included.
fn trace_canonical(report: &SimReport) -> String {
    let mut r = report.clone();
    r.host = None;
    serde_json::to_string(&r).expect("serialize report")
}

fn traced_sim(cfg: &GpuConfig, program: &Arc<dyn KernelProgram>) -> GpuSimulator {
    let mut sim = GpuSimulator::new(cfg.clone(), Arc::clone(program), MemoryMode::Hierarchy);
    sim.enable_trace(TraceConfig::default());
    sim
}

fn print_breakdown(name: &str, bd: &LatencyBreakdown) {
    println!(
        "\n{name}: {} fetches traced, mean end-to-end {:.1} cycles (min {}, max {})",
        bd.fetches_traced,
        bd.end_to_end.mean(),
        bd.end_to_end.min().unwrap_or(0),
        bd.end_to_end.max().unwrap_or(0),
    );
    println!(
        "{:>16} {:>9} {:>10} {:>12} {:>9} {:>7} {:>7}",
        "stage", "class", "count", "cycles", "mean", "min", "max"
    );
    for s in &bd.stages {
        println!(
            "{:>16} {:>9} {:>10} {:>12} {:>9.1} {:>7} {:>7}",
            s.stage, s.class, s.count, s.total_cycles, s.mean, s.min, s.max
        );
    }
    let total = bd.stage_total_cycles.max(1) as f64;
    println!(
        "load-path split: queueing {:.1}% / service {:.1}% / network {:.1}%",
        100.0 * bd.queueing_cycles as f64 / total,
        100.0 * bd.service_cycles as f64 / total,
        100.0 * bd.network_cycles as f64 / total,
    );
}

/// Fetch-lifecycle latency breakdown over the suite: per-stage tables, the
/// §III queueing-vs-service split, the stage-sum reconciliation invariant,
/// and a bit-identity cross-check over all three engines.
fn run_trace(
    cfg: &GpuConfig,
    programs: &[Arc<dyn KernelProgram>],
    json: &Option<String>,
    threads: &[usize],
    epoch: &EpochChoice,
) {
    println!("FETCH-LIFECYCLE LATENCY BREAKDOWN — §III queueing vs service decomposition");
    let mut rows = Vec::new();
    for program in programs {
        eprintln!("trace: {} ...", program.name());
        let report = traced_sim(cfg, program)
            .run(gpumem::DEFAULT_MAX_CYCLES)
            .expect("traced run completes");
        let reference = trace_canonical(&report);
        let stepped = traced_sim(cfg, program)
            .run_stepped(gpumem::DEFAULT_MAX_CYCLES)
            .expect("traced stepped run completes");
        if trace_canonical(&stepped) != reference {
            eprintln!(
                "error: {}: stepped-engine trace diverged from the skipping engine",
                program.name()
            );
            std::process::exit(1);
        }
        for &n in threads {
            let parallel = traced_sim(cfg, program)
                .run_parallel_with(gpumem::DEFAULT_MAX_CYCLES, n, epoch.policy)
                .expect("traced parallel run completes");
            if trace_canonical(&parallel) != reference {
                eprintln!(
                    "error: {}: {n}-thread trace diverged from the serial reference",
                    program.name()
                );
                std::process::exit(1);
            }
        }
        let bd = report
            .latency_breakdown
            .clone()
            .expect("tracing was enabled");
        if !bd.reconciles() {
            eprintln!(
                "error: {}: stage sums do not reconcile with end-to-end latency \
                 (stages {} vs end-to-end {}, {} monotone violations, {} unknown pairs, \
                 {} incomplete)",
                program.name(),
                bd.stage_total_cycles,
                bd.end_to_end_total_cycles,
                bd.monotone_violations,
                bd.unknown_pairs,
                bd.incomplete_fetches,
            );
            std::process::exit(1);
        }
        print_breakdown(program.name(), &bd);
        dump_json(
            json,
            &format!("trace_{}", program.name()),
            &chrome_trace_events(&bd.slowest),
        );
        rows.push(TraceRow {
            benchmark: program.name().to_owned(),
            breakdown: bd,
        });
    }
    println!(
        "\ntrace: every stage sum reconciles; all engines bit-identical at threads {:?}",
        threads
    );
    dump_json(json, "trace", &rows);
}

/// The `run` command: every selected workload — named synthetics and/or
/// `--trace-file` traces — executed through the event-driven, per-cycle
/// stepped and sharded parallel engines, with every report required to be
/// bit-identical to the stepped oracle (full canonical JSON, host block
/// stripped). This is the deterministic-replay gate the trace frontend
/// promises: a trace admits no engine-dependent behaviour.
fn run_run(cfg: &GpuConfig, args: &Args) -> ! {
    let mut programs: Vec<Arc<dyn KernelProgram>> = args
        .targets
        .iter()
        .map(|name| {
            gpumem_bench::scaled_benchmark(name, args.scale)
                .unwrap_or_else(|| die(&format!("unknown benchmark {name:?}")))
        })
        .collect();
    programs.extend(args.trace_files.iter().map(|p| load_trace(p)));
    if programs.is_empty() {
        die("run needs at least one workload name or --trace-file FILE");
    }
    println!(
        "CROSS-ENGINE BIT-IDENTITY — stepped oracle vs event vs parallel at threads {:?}",
        args.threads
    );
    let mut failed = false;
    for mode in [MemoryMode::Hierarchy, MemoryMode::FixedLatency(800)] {
        for program in &programs {
            let stepped = GpuSimulator::new(cfg.clone(), Arc::clone(program), mode)
                .run_stepped(gpumem::DEFAULT_MAX_CYCLES)
                .expect("stepped run completes");
            let reference = trace_canonical(&stepped);
            let event = GpuSimulator::new(cfg.clone(), Arc::clone(program), mode)
                .run(gpumem::DEFAULT_MAX_CYCLES)
                .expect("event run completes");
            if trace_canonical(&event) != reference {
                eprintln!(
                    "error: {} / {mode}: event engine diverged from the stepped oracle",
                    program.name()
                );
                failed = true;
            }
            for &n in &args.threads {
                let parallel = GpuSimulator::new(cfg.clone(), Arc::clone(program), mode)
                    .run_parallel_with(gpumem::DEFAULT_MAX_CYCLES, n, args.epoch.policy)
                    .expect("parallel run completes");
                if trace_canonical(&parallel) != reference {
                    eprintln!(
                        "error: {} / {mode}: {n}-thread parallel run diverged from the \
                         stepped oracle",
                        program.name()
                    );
                    failed = true;
                }
            }
            println!(
                "run {:>10} / {mode}: {} cycles, {} instructions — engines bit-identical",
                program.name(),
                stepped.cycles,
                stepped.instructions,
            );
        }
    }
    std::process::exit(if failed { 1 } else { 0 })
}

/// The `trace-gen` command: one synthetic workload encoded as a portable
/// `gpumem-trace v1` text file at the configured cache-line size, written
/// to `--out` or stdout. Decoding the emitted trace reproduces the
/// synthetic instruction stream exactly, so trace-gen→run round trips are
/// bit-identical.
fn run_trace_gen(cfg: &GpuConfig, args: &Args) -> ! {
    let [name] = args.targets.as_slice() else {
        die("trace-gen needs exactly one workload name");
    };
    let program = gpumem_bench::scaled_benchmark(name, args.scale)
        .unwrap_or_else(|| die(&format!("unknown benchmark {name:?}")));
    let text = gpumem_tracefmt::encode_program(program.as_ref(), cfg.line_bytes)
        .unwrap_or_else(|e| die(&e.to_string()));
    match &args.out {
        Some(path) => {
            std::fs::write(path, &text)
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {path} ({} bytes)", text.len());
        }
        None => print!("{text}"),
    }
    std::process::exit(0)
}

/// The `sweep` command: a crash-safe, resumable grid run over a
/// content-addressed results store (see `crates/sweep`).
///
/// `--query DIR` never simulates: it expands the store's spec (or
/// `--spec`), peeks every cell read-only, and prints the committed
/// digests plus the store digest — the line CI diffs against a reference
/// run. Otherwise the spec comes from `--spec FILE`, from the store's own
/// `spec.json` under `--resume DIR`, or defaults to the §V grid at
/// `--scale`.
fn run_sweep_cmd(args: &Args) -> ! {
    use gpumem_sweep::{ResultStore, SweepOptions, SweepSpec};

    let fail = |msg: String| -> ! {
        eprintln!("error: {msg}");
        std::process::exit(2)
    };
    let spec_from_flag = || -> Option<SweepSpec> {
        args.spec.as_ref().map(|path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
            SweepSpec::from_json(&text).unwrap_or_else(|e| fail(e.to_string()))
        })
    };
    // Readers must never mint a store: a typo'd `--query`/`--resume` path
    // is a typed exit-2 error, not a freshly-created empty directory.
    let stored_spec = |dir: &str| -> SweepSpec {
        let store = ResultStore::open_existing(std::path::Path::new(dir))
            .unwrap_or_else(|e| fail(e.to_string()));
        store
            .load_spec()
            .unwrap_or_else(|e| fail(e.to_string()))
            .unwrap_or_else(|| fail(format!("{dir} has no spec.json; pass --spec")))
    };
    let with_trace_files = |mut spec: SweepSpec| -> SweepSpec {
        // Idempotent: a stored spec may already carry the trace workload
        // (e.g. `--resume` with the same `--trace-file` flags), and a
        // duplicate entry would double-count its cells.
        for path in &args.trace_files {
            let workload = format!("trace:{path}");
            if !spec.workloads.contains(&workload) {
                spec.workloads.push(workload);
            }
        }
        spec
    };

    if let Some(dir) = &args.query {
        let spec = with_trace_files(spec_from_flag().unwrap_or_else(|| stored_spec(dir)));
        let store = ResultStore::open_existing(std::path::Path::new(dir))
            .unwrap_or_else(|e| fail(e.to_string()));
        let cells = spec.expand().unwrap_or_else(|e| fail(e.to_string()));
        let mut committed = 0usize;
        for cell in &cells {
            match store.peek(cell.key) {
                Ok(Some(env)) => {
                    committed += 1;
                    println!(
                        "cell {} {} committed {}",
                        env.key, env.label, env.result_digest
                    );
                }
                Ok(None) => println!("cell {} {} missing", cell.key, cell.label()),
                Err(e) => println!("cell {} {} CORRUPT ({e})", cell.key, cell.label()),
            }
        }
        let keys: Vec<_> = cells.iter().map(|c| c.key).collect();
        let digest = store
            .store_digest(&keys)
            .unwrap_or_else(|e| fail(e.to_string()));
        println!("committed: {committed}/{}", cells.len());
        println!("store digest: {digest}");
        std::process::exit(0)
    }

    let (store_dir, spec) = match (&args.resume, &args.store) {
        (Some(dir), _) => (
            dir.clone(),
            with_trace_files(spec_from_flag().unwrap_or_else(|| stored_spec(dir))),
        ),
        (None, Some(dir)) => (
            dir.clone(),
            with_trace_files(spec_from_flag().unwrap_or_else(|| SweepSpec::section_v(args.scale))),
        ),
        (None, None) => fail("sweep needs --store DIR (or --resume DIR / --query DIR)".into()),
    };
    let opts = SweepOptions {
        workers: args.workers,
        retry: gpumem::RetryPolicy {
            max_attempts: args.retries,
            backoff: gpumem::Backoff {
                base_ms: args.backoff_ms,
                max_ms: args.backoff_ms.saturating_mul(16),
                seed: 0xC0FFEE,
            },
        },
        progress: true,
        crash_after_journal_bytes: None,
    };
    eprintln!(
        "sweep {}: {} into {store_dir} ({} attempt(s) per host-dependent failure)",
        spec.name,
        if args.resume.is_some() {
            "resuming"
        } else {
            "running"
        },
        args.retries
    );
    let summary = gpumem_sweep::run_sweep(&spec, std::path::Path::new(&store_dir), &opts)
        .unwrap_or_else(|e| fail(e.to_string()));
    for o in &summary.outcomes {
        println!(
            "cell {} {} {:?}{}",
            o.key,
            o.label,
            o.status,
            o.result_digest
                .as_deref()
                .map(|d| format!(" {d}"))
                .unwrap_or_else(|| format!(" ({})", o.detail)),
        );
    }
    println!(
        "cells: {}  cache hits: {}  computed: {}  recomputed: {}  failed: {}  attempts: {}",
        summary.cells,
        summary.cache_hits,
        summary.computed,
        summary.recomputed,
        summary.failed,
        summary.attempts_total,
    );
    println!("simulations run: {}", summary.simulations_run());
    println!("store digest: {}", summary.store_digest);
    std::process::exit(if summary.failed > 0 { 1 } else { 0 })
}

fn run_ablation(cfg: &GpuConfig, programs: &[Arc<dyn KernelProgram>], json: &Option<String>) {
    eprintln!("ablation: scaling each Table I row individually ...");
    let study = ablation_study(cfg, programs).expect("ablation study completes");
    println!("{}", ablation_table(&study));
    dump_json(json, "ablation", &study);
}

fn main() {
    let args = parse_args();
    let cfg = GpuConfig::gtx480();
    if (args.scale - 1.0).abs() > f64::EPSILON {
        eprintln!(
            "note: workloads scaled by {} — numbers differ from EXPERIMENTS.md",
            args.scale
        );
    }
    match args.command.as_str() {
        "table1" => println!("{}", text::table_i()),
        "fig1" => run_fig1(&cfg, &programs_for(&args), &args.json_dir),
        "congestion" => run_congestion(&cfg, &programs_for(&args), &args.json_dir),
        "dse" => run_dse(&cfg, &programs_for(&args), &args.json_dir),
        "ablation" => run_ablation(&cfg, &programs_for(&args), &args.json_dir),
        "perf" => {
            let programs = programs_for(&args);
            if args.profile {
                run_profile(&cfg, &programs, &args.json_dir);
            } else {
                let summary = run_perf(
                    &cfg,
                    &programs,
                    args.scale,
                    &args.json_dir,
                    &args.threads,
                    &args.epoch,
                    args.repeat,
                );
                if let Some(baseline) = &args.check {
                    check_perf(&summary, baseline, args.min_ratio);
                }
                if let Some(floor) = args.floor {
                    check_floor(&summary, floor);
                }
            }
        }
        "trace" => run_trace(
            &cfg,
            &programs_for(&args),
            &args.json_dir,
            &args.threads,
            &args.epoch,
        ),
        "run" => run_run(&cfg, &args),
        "trace-gen" => run_trace_gen(&cfg, &args),
        "sweep" => run_sweep_cmd(&args),
        "latency" => run_latency(&cfg, &programs_for(&args), &args.json_dir),
        "chaos" => {
            if args.wedge_self_test {
                run_wedge_self_test(&cfg, args.scale, args.seeds, &args.threads, &args.epoch);
            } else {
                run_chaos(&cfg, args.scale, args.seeds, &args.threads, &args.epoch);
            }
        }
        "all" => {
            let programs = programs_for(&args);
            println!("{}", text::table_i());
            run_latency(&cfg, &programs, &args.json_dir);
            println!();
            run_fig1(&cfg, &programs, &args.json_dir);
            println!();
            run_congestion(&cfg, &programs, &args.json_dir);
            println!();
            run_dse(&cfg, &programs, &args.json_dir);
            println!();
            run_ablation(&cfg, &programs, &args.json_dir);
        }
        other => die(&format!("unknown command {other}")),
    }
}
