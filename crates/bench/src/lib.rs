//! Shared helpers for the `gpumem` benchmark harness.
//!
//! The `repro` binary ([`crate`]'s `src/bin/repro.rs`) regenerates every
//! table and figure of the paper; the Criterion benches under `benches/`
//! measure the same experiments on scaled-down workloads so `cargo bench`
//! stays tractable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use gpumem_simt::KernelProgram;
use gpumem_workloads::{params_of, SyntheticKernel};

/// The suite scaled down by `factor` (work only; per-iteration behaviour
/// unchanged), for fast Criterion benches and smoke tests.
///
/// # Panics
///
/// Panics if any canonical benchmark name fails to resolve (cannot happen
/// with the shipped suite).
pub fn scaled_suite(factor: f64) -> Vec<Arc<dyn KernelProgram>> {
    scaled_named_suite(&gpumem_workloads::BENCHMARK_NAMES, factor)
}

/// An arbitrary slice of canonical benchmark names, each scaled by
/// `factor` — the building block behind `repro --suite seed|ml|extended`.
///
/// # Panics
///
/// Panics if any name fails to resolve through
/// [`gpumem_workloads::params_of`]; callers pass canonical name lists.
pub fn scaled_named_suite(names: &[&str], factor: f64) -> Vec<Arc<dyn KernelProgram>> {
    names
        .iter()
        .map(|n| {
            let p = params_of(n).expect("canonical name").scaled(factor);
            Arc::new(SyntheticKernel::new(p)) as Arc<dyn KernelProgram>
        })
        .collect()
}

/// One scaled benchmark by name.
pub fn scaled_benchmark(name: &str, factor: f64) -> Option<Arc<dyn KernelProgram>> {
    params_of(name)
        .map(|p| Arc::new(SyntheticKernel::new(p.scaled(factor))) as Arc<dyn KernelProgram>)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_suite_has_eight() {
        assert_eq!(scaled_suite(0.2).len(), 8);
    }

    #[test]
    fn named_suite_covers_the_extended_family() {
        let names = gpumem_workloads::extended_names();
        assert_eq!(scaled_named_suite(&names, 0.2).len(), 11);
    }

    #[test]
    fn scaled_benchmark_resolves() {
        assert!(scaled_benchmark("lbm", 0.5).is_some());
        assert!(scaled_benchmark("nope", 0.5).is_none());
    }
}
