//! Trace-driven workload frontend for the `gpumem` simulator.
//!
//! The `gpumem` workspace reproduces the IISWC 2016 paper *Characterizing
//! Memory Bottlenecks in GPGPU Workloads* with synthetic workload
//! generators. This crate adds the other half of a characterization
//! pipeline: an Accel-Sim-style **kernel-trace text format**, so recorded
//! (or exported) instruction streams replay through the same
//! warp/coalescer interface as the generators.
//!
//! * [`parse_reader`] / [`parse_str`] — streaming, bounded-memory decode
//!   into a [`TracedKernel`], with typed line/column
//!   [`TraceError`] diagnostics. The decoder never panics on any input.
//! * [`TracedKernel`] — the decoded trace as a
//!   [`KernelProgram`](gpumem_simt::KernelProgram): pure random-access
//!   instruction lookup, exact per-warp counts, and a content-address
//!   digest of the trace bytes.
//! * [`encode_program`] — renders any `KernelProgram` back to trace text,
//!   making the synthetic suite a self-hosted round-trip corpus.
//!
//! # Example
//!
//! ```
//! use gpumem_simt::KernelProgram;
//!
//! let text = "\
//! gpumem-trace v1
//! kernel name=axpy grid=1 warps_per_cta=1 max_ctas_per_core=0 shmem_bytes=0 line_bytes=128
//! warp cta=0 warp=0
//! LD consume=1 mask=00000001 0x1000
//! ALU lat=4
//! end
//! ";
//! let kernel = gpumem_tracefmt::parse_str(text).unwrap();
//! assert_eq!(kernel.name(), "axpy");
//! assert_eq!(kernel.warp_instr_count(gpumem_types::CtaId::new(0), 0), Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
mod error;
mod kernel;
mod parse;

pub use encode::encode_program;
pub use error::TraceError;
pub use kernel::TracedKernel;
pub use parse::{
    parse_reader, parse_str, MAGIC, MAX_LINE_BYTES, MAX_TOTAL_INSTRS, MAX_TOTAL_WARPS,
    MAX_WARP_INSTRS,
};
