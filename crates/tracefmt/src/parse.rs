//! Streaming decoder for the `gpumem-trace v1` text format.
//!
//! The decoder reads one line at a time through [`std::io::BufRead`], so
//! memory stays proportional to the *decoded* program (plus one line of
//! input), never to the raw text — a multi-gigabyte trace of a small
//! kernel decodes in a few megabytes. Every byte consumed is folded into
//! an [`Fnv128`] digest, giving each trace a content address without a
//! second pass over the input.
//!
//! # Grammar
//!
//! ```text
//! gpumem-trace v1
//! kernel name=<ident> grid=<u32> warps_per_cta=<u32> max_ctas_per_core=<u32> shmem_bytes=<u64> line_bytes=<u64>
//! warp cta=<u32> warp=<u32>
//!   ALU lat=<u32>
//!   SHMEM lat=<u32>
//!   LD consume=<u32> mask=<8 hex digits> <0xaddr> ...
//!   ST mask=<8 hex digits> <0xaddr> ...
//!   BAR
//! end
//! ```
//!
//! Blank lines and `#` comments may appear anywhere. Warp blocks must
//! appear exactly once each, in cta-major order (`cta=0 warp=0`, `cta=0
//! warp=1`, …), be non-empty, and end with `end`; an `LD`/`ST` record
//! carries exactly one address per active lane in its mask. Byte
//! addresses are lowered to cache lines at the header's `line_bytes`,
//! deduplicating in first-touch order — the same coalescing the synthetic
//! generators perform.

use std::io::BufRead;

use gpumem_types::{Fnv128, LineAddr};

use crate::error::TraceError;
use crate::kernel::{Op, TracedKernel};

/// The required first significant line of every trace.
pub const MAGIC: &str = "gpumem-trace v1";

/// Longest accepted input line, in bytes (including the newline).
pub const MAX_LINE_BYTES: usize = 64 * 1024;
/// Most warps (`grid × warps_per_cta`) a trace may declare.
pub const MAX_TOTAL_WARPS: u64 = 1 << 20;
/// Most instructions a single warp block may carry.
pub const MAX_WARP_INSTRS: u64 = 1 << 22;
/// Most decoded instructions across the whole trace.
pub const MAX_TOTAL_INSTRS: u64 = 1 << 26;

/// Decodes a complete trace held in memory. Equivalent to
/// [`parse_reader`] over the string's bytes.
pub fn parse_str(text: &str) -> Result<TracedKernel, TraceError> {
    parse_reader(text.as_bytes())
}

/// Decodes a trace from a buffered reader, streaming line by line.
///
/// On success the returned [`TracedKernel`] carries the FNV-128 digest of
/// the exact bytes consumed. On failure every error names the input line
/// it points at (see [`TraceError`]); the decoder never panics, whatever
/// the input.
pub fn parse_reader<R: BufRead>(reader: R) -> Result<TracedKernel, TraceError> {
    let mut lines = Lines::new(reader);

    // Magic line.
    let Some(magic) = lines.next_significant()? else {
        return Err(eof(&lines, format!("expected magic line {MAGIC:?}")));
    };
    if magic.trim() != MAGIC {
        return Err(TraceError::Syntax {
            line: lines.line,
            column: 1,
            detail: format!(
                "expected magic line {MAGIC:?}, found {:?}",
                clip(magic.trim())
            ),
        });
    }

    // Kernel header.
    let Some(header) = lines.next_significant()? else {
        return Err(eof(&lines, "expected kernel header after the magic line"));
    };
    let h = parse_header(&header, lines.line)?;

    let total_warps = u64::from(h.grid_ctas) * u64::from(h.warps_per_cta);
    if total_warps > MAX_TOTAL_WARPS {
        return Err(TraceError::Limit {
            line: lines.line,
            detail: format!(
                "grid={} x warps_per_cta={} declares {total_warps} warps (limit {MAX_TOTAL_WARPS})",
                h.grid_ctas, h.warps_per_cta
            ),
        });
    }

    // Warp blocks, strictly in cta-major order.
    let mut starts: Vec<u32> = Vec::with_capacity(total_warps as usize + 1);
    let mut ops: Vec<Op> = Vec::new();
    let mut pool: Vec<LineAddr> = Vec::new();
    for cta in 0..h.grid_ctas {
        for warp in 0..h.warps_per_cta {
            parse_warp_block(&mut lines, &h, cta, warp, &mut starts, &mut ops, &mut pool)?;
        }
    }
    starts.push(len32(ops.len(), lines.line)?);

    // Nothing but blanks and comments may follow the final block.
    if let Some(extra) = lines.next_significant()? {
        return Err(TraceError::Structure {
            line: lines.line,
            detail: format!(
                "content after the final warp block: {:?}",
                clip(extra.trim())
            ),
        });
    }

    Ok(TracedKernel {
        name: h.name,
        grid_ctas: h.grid_ctas,
        warps_per_cta: h.warps_per_cta,
        max_ctas_per_core: h.max_ctas_per_core,
        shmem_bytes: h.shmem_bytes,
        line_bytes: h.line_bytes,
        starts,
        ops,
        pool,
        digest: lines.digest.finish(),
    })
}

/// Decoded `kernel` header line.
struct Header {
    name: String,
    grid_ctas: u32,
    warps_per_cta: u32,
    max_ctas_per_core: usize,
    shmem_bytes: u64,
    line_bytes: u64,
}

fn parse_header(line: &str, ln: u64) -> Result<Header, TraceError> {
    let toks = tokens(line);
    let Some(head) = toks.first() else {
        return Err(TraceError::Syntax {
            line: ln,
            column: 1,
            detail: "expected kernel header".into(),
        });
    };
    if head.text != "kernel" {
        return Err(TraceError::Syntax {
            line: ln,
            column: head.col,
            detail: format!("expected \"kernel\", found {:?}", clip(head.text)),
        });
    }
    if toks.len() != 7 {
        return Err(TraceError::Syntax {
            line: ln,
            column: toks.get(7).map_or(end_col(line), |t| t.col),
            detail: format!(
                "kernel header must be: kernel name=<n> grid=<g> warps_per_cta=<w> \
                 max_ctas_per_core=<m> shmem_bytes=<s> line_bytes=<l> (found {} fields)",
                toks.len() - 1
            ),
        });
    }

    let (name, name_col) = kv(&toks[1], "name", ln)?;
    if name.is_empty()
        || name.len() > 64
        || !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
    {
        return Err(TraceError::Syntax {
            line: ln,
            column: name_col,
            detail: format!(
                "kernel name must be 1..=64 characters of [A-Za-z0-9_.-], found {:?}",
                clip(name)
            ),
        });
    }

    let grid_ctas = pos_u32(kv(&toks[2], "grid", ln)?, ln, "grid")?;
    let warps_per_cta = pos_u32(kv(&toks[3], "warps_per_cta", ln)?, ln, "warps_per_cta")?;
    let (v, c) = kv(&toks[4], "max_ctas_per_core", ln)?;
    let max_raw = num_u64(v, ln, c, "max_ctas_per_core")?;
    // 0 means "no per-core CTA cap" (occupancy limited by hardware alone).
    let max_ctas_per_core = match max_raw {
        0 => usize::MAX,
        n => usize::try_from(n).unwrap_or(usize::MAX),
    };
    let (v, c) = kv(&toks[5], "shmem_bytes", ln)?;
    let shmem_bytes = num_u64(v, ln, c, "shmem_bytes")?;
    let (v, c) = kv(&toks[6], "line_bytes", ln)?;
    let line_bytes = num_u64(v, ln, c, "line_bytes")?;
    if !line_bytes.is_power_of_two() || !(32..=4096).contains(&line_bytes) {
        return Err(TraceError::Syntax {
            line: ln,
            column: c,
            detail: format!("line_bytes must be a power of two in 32..=4096, found {line_bytes}"),
        });
    }

    Ok(Header {
        name: name.to_owned(),
        grid_ctas,
        warps_per_cta,
        max_ctas_per_core,
        shmem_bytes,
        line_bytes,
    })
}

/// Parses one `warp … end` block, appending its window to `starts`/`ops`.
fn parse_warp_block<R: BufRead>(
    lines: &mut Lines<R>,
    h: &Header,
    cta: u32,
    warp: u32,
    starts: &mut Vec<u32>,
    ops: &mut Vec<Op>,
    pool: &mut Vec<LineAddr>,
) -> Result<(), TraceError> {
    let Some(head_line) = lines.next_significant()? else {
        return Err(eof(
            lines,
            format!("expected warp block cta={cta} warp={warp}"),
        ));
    };
    let ln = lines.line;
    let toks = tokens(&head_line);
    let Some(head) = toks.first() else {
        return Err(eof(
            lines,
            format!("expected warp block cta={cta} warp={warp}"),
        ));
    };
    if head.text != "warp" {
        return Err(TraceError::Syntax {
            line: ln,
            column: head.col,
            detail: format!(
                "expected warp block header (warp cta={cta} warp={warp}), found {:?}",
                clip(head.text)
            ),
        });
    }
    if toks.len() != 3 {
        return Err(TraceError::Syntax {
            line: ln,
            column: toks.get(3).map_or(end_col(&head_line), |t| t.col),
            detail: "warp block header must be: warp cta=<c> warp=<w>".into(),
        });
    }
    let (v, c) = kv(&toks[1], "cta", ln)?;
    let got_cta = num_u32(v, ln, c, "cta")?;
    let (v, c) = kv(&toks[2], "warp", ln)?;
    let got_warp = num_u32(v, ln, c, "warp")?;
    if (got_cta, got_warp) != (cta, warp) {
        return Err(TraceError::Structure {
            line: ln,
            detail: format!(
                "warp blocks must appear exactly once each, in cta-major order: \
                 expected cta={cta} warp={warp}, found cta={got_cta} warp={got_warp}"
            ),
        });
    }

    let block_start = ops.len();
    starts.push(len32(block_start, ln)?);
    loop {
        let Some(rec) = lines.next_significant()? else {
            return Err(eof(
                lines,
                format!("warp block cta={cta} warp={warp} is not terminated by \"end\""),
            ));
        };
        let ln = lines.line;
        let toks = tokens(&rec);
        let Some(head) = toks.first() else {
            continue;
        };
        match head.text {
            "end" => {
                only_n_tokens(&toks, 1, ln)?;
                if ops.len() == block_start {
                    return Err(TraceError::Structure {
                        line: ln,
                        detail: format!(
                            "warp block cta={cta} warp={warp} is empty \
                             (every warp must execute at least one instruction)"
                        ),
                    });
                }
                return Ok(());
            }
            "ALU" | "SHMEM" => {
                if toks.len() != 2 {
                    return Err(TraceError::Syntax {
                        line: ln,
                        column: toks.get(2).map_or(end_col(&rec), |t| t.col),
                        detail: format!("{0} record must be: {0} lat=<cycles>", head.text),
                    });
                }
                let latency = pos_u32(kv(&toks[1], "lat", ln)?, ln, "lat")?;
                ops.push(if head.text == "ALU" {
                    Op::Alu { latency }
                } else {
                    Op::Shared { latency }
                });
            }
            "LD" => {
                if toks.len() < 3 {
                    return Err(TraceError::Syntax {
                        line: ln,
                        column: end_col(&rec),
                        detail: "LD record must be: LD consume=<n> mask=<8 hex> <0xaddr>…".into(),
                    });
                }
                let consume_after = pos_u32(kv(&toks[1], "consume", ln)?, ln, "consume")?;
                let (start, len) = parse_access(&toks[2..], ln, h.line_bytes, pool)?;
                ops.push(Op::Load {
                    start,
                    len,
                    consume_after,
                });
            }
            "ST" => {
                if toks.len() < 2 {
                    return Err(TraceError::Syntax {
                        line: ln,
                        column: end_col(&rec),
                        detail: "ST record must be: ST mask=<8 hex> <0xaddr>…".into(),
                    });
                }
                let (start, len) = parse_access(&toks[1..], ln, h.line_bytes, pool)?;
                ops.push(Op::Store { start, len });
            }
            "BAR" => {
                only_n_tokens(&toks, 1, ln)?;
                ops.push(Op::Barrier);
            }
            other => {
                return Err(TraceError::Syntax {
                    line: ln,
                    column: head.col,
                    detail: format!(
                        "unknown record {:?} (expected ALU, SHMEM, LD, ST, BAR or end)",
                        clip(other)
                    ),
                });
            }
        }
        let in_block = (ops.len() - block_start) as u64;
        if in_block > MAX_WARP_INSTRS {
            return Err(TraceError::Limit {
                line: ln,
                detail: format!(
                    "warp block cta={cta} warp={warp} exceeds {MAX_WARP_INSTRS} instructions"
                ),
            });
        }
        if ops.len() as u64 > MAX_TOTAL_INSTRS {
            return Err(TraceError::Limit {
                line: ln,
                detail: format!("trace exceeds {MAX_TOTAL_INSTRS} total instructions"),
            });
        }
    }
}

/// Parses `mask=<8 hex> <0xaddr>…`, lowers the addresses to distinct
/// cache lines in first-touch order, appends them to the pool and returns
/// the `(start, len)` window.
fn parse_access(
    toks: &[Tok<'_>],
    ln: u64,
    line_bytes: u64,
    pool: &mut Vec<LineAddr>,
) -> Result<(u32, u8), TraceError> {
    let Some(mask_tok) = toks.first() else {
        return Err(TraceError::Syntax {
            line: ln,
            column: 1,
            detail: "expected mask=<8 hex digits>".into(),
        });
    };
    let (mv, mc) = kv(mask_tok, "mask", ln)?;
    if mv.len() != 8 || !mv.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(TraceError::Syntax {
            line: ln,
            column: mc,
            detail: format!("mask must be exactly 8 hex digits, found {:?}", clip(mv)),
        });
    }
    let mask = u32::from_str_radix(mv, 16).map_err(|_| TraceError::Syntax {
        line: ln,
        column: mc,
        detail: format!("mask does not parse as hex: {:?}", clip(mv)),
    })?;
    if mask == 0 {
        return Err(TraceError::Syntax {
            line: ln,
            column: mc,
            detail: "mask must have at least one active lane".into(),
        });
    }
    let lanes = mask.count_ones() as usize;
    let addrs = &toks[1..];
    if addrs.len() != lanes {
        return Err(TraceError::Structure {
            line: ln,
            detail: format!(
                "active mask {mv} has {lanes} lanes but {} addresses follow \
                 (one address per active lane)",
                addrs.len()
            ),
        });
    }

    let start = len32(pool.len(), ln)?;
    let mut len: u8 = 0;
    for tok in addrs {
        let Some(hex) = tok.text.strip_prefix("0x") else {
            return Err(TraceError::Syntax {
                line: ln,
                column: tok.col,
                detail: format!(
                    "address must be 0x-prefixed hex, found {:?}",
                    clip(tok.text)
                ),
            });
        };
        if hex.is_empty() || hex.len() > 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(TraceError::Syntax {
                line: ln,
                column: tok.col,
                detail: format!(
                    "address must be 1..=16 hex digits after 0x, found {:?}",
                    clip(tok.text)
                ),
            });
        }
        let addr = u64::from_str_radix(hex, 16).map_err(|_| TraceError::Syntax {
            line: ln,
            column: tok.col,
            detail: format!("address does not parse as hex: {:?}", clip(tok.text)),
        })?;
        let lane_line = LineAddr::new(addr / line_bytes);
        // First-touch dedup over at most 32 lanes: the linear scan is the
        // same coalescing order the synthetic generators produce.
        let window = pool.get(start as usize..).unwrap_or(&[]);
        if !window.contains(&lane_line) {
            pool.push(lane_line);
            len += 1;
        }
    }
    Ok((start, len))
}

/// A whitespace-delimited token with its 1-based byte column.
struct Tok<'a> {
    text: &'a str,
    col: u32,
}

fn tokens(line: &str) -> Vec<Tok<'_>> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes.get(i).is_some_and(u8::is_ascii_whitespace) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && !bytes.get(i).is_some_and(u8::is_ascii_whitespace) {
            i += 1;
        }
        if let Some(text) = line.get(start..i) {
            out.push(Tok {
                text,
                col: start as u32 + 1,
            });
        }
    }
    out
}

/// Splits a `key=value` token, returning the value and its column.
fn kv<'a>(tok: &Tok<'a>, key: &str, ln: u64) -> Result<(&'a str, u32), TraceError> {
    match tok.text.strip_prefix(key).and_then(|r| r.strip_prefix('=')) {
        Some(v) if !v.is_empty() => Ok((v, tok.col + key.len() as u32 + 1)),
        _ => Err(TraceError::Syntax {
            line: ln,
            column: tok.col,
            detail: format!("expected {key}=<value>, found {:?}", clip(tok.text)),
        }),
    }
}

fn num_u64(v: &str, ln: u64, col: u32, what: &str) -> Result<u64, TraceError> {
    v.parse::<u64>().map_err(|_| TraceError::Syntax {
        line: ln,
        column: col,
        detail: format!("{what} must be an unsigned integer, found {:?}", clip(v)),
    })
}

fn num_u32(v: &str, ln: u64, col: u32, what: &str) -> Result<u32, TraceError> {
    v.parse::<u32>().map_err(|_| TraceError::Syntax {
        line: ln,
        column: col,
        detail: format!(
            "{what} must be an unsigned 32-bit integer, found {:?}",
            clip(v)
        ),
    })
}

/// Parses a `key=value` pair as a u32 that must be ≥ 1.
fn pos_u32((v, col): (&str, u32), ln: u64, what: &str) -> Result<u32, TraceError> {
    let n = num_u32(v, ln, col, what)?;
    if n == 0 {
        return Err(TraceError::Syntax {
            line: ln,
            column: col,
            detail: format!("{what} must be >= 1"),
        });
    }
    Ok(n)
}

fn only_n_tokens(toks: &[Tok<'_>], n: usize, ln: u64) -> Result<(), TraceError> {
    match toks.get(n) {
        None => Ok(()),
        Some(extra) => Err(TraceError::Syntax {
            line: ln,
            column: extra.col,
            detail: format!("unexpected token {:?}", clip(extra.text)),
        }),
    }
}

fn len32(n: usize, ln: u64) -> Result<u32, TraceError> {
    u32::try_from(n).map_err(|_| TraceError::Limit {
        line: ln,
        detail: format!("decoded table index {n} exceeds u32"),
    })
}

fn eof<R>(lines: &Lines<R>, detail: impl Into<String>) -> TraceError {
    TraceError::UnexpectedEof {
        line: lines.line + 1,
        detail: detail.into(),
    }
}

fn end_col(line: &str) -> u32 {
    line.len() as u32 + 1
}

/// Clips arbitrary (possibly attacker-controlled) text for an error
/// message.
fn clip(s: &str) -> String {
    if s.len() <= 40 {
        return s.to_owned();
    }
    let mut end = 40;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", s.get(..end).unwrap_or_default())
}

/// Line-at-a-time reader: tracks the 1-based line number and digests every
/// raw byte consumed.
struct Lines<R> {
    reader: R,
    buf: Vec<u8>,
    line: u64,
    digest: Fnv128,
}

impl<R: BufRead> Lines<R> {
    fn new(reader: R) -> Lines<R> {
        Lines {
            reader,
            buf: Vec::new(),
            line: 0,
            digest: Fnv128::new(),
        }
    }

    /// Next raw line without its newline, or `None` at end of input.
    fn next(&mut self) -> Result<Option<String>, TraceError> {
        self.buf.clear();
        let n = self
            .reader
            .read_until(b'\n', &mut self.buf)
            .map_err(|e| TraceError::Io {
                detail: e.to_string(),
            })?;
        if n == 0 {
            return Ok(None);
        }
        self.line += 1;
        if n > MAX_LINE_BYTES {
            return Err(TraceError::Limit {
                line: self.line,
                detail: format!("line is {n} bytes (limit {MAX_LINE_BYTES})"),
            });
        }
        self.digest.update(&self.buf);
        let mut bytes = self.buf.as_slice();
        if let Some(b) = bytes.strip_suffix(b"\n") {
            bytes = b;
        }
        if let Some(b) = bytes.strip_suffix(b"\r") {
            bytes = b;
        }
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(Some(s.to_owned())),
            Err(e) => Err(TraceError::Syntax {
                line: self.line,
                column: e.valid_up_to() as u32 + 1,
                detail: "line is not valid UTF-8".into(),
            }),
        }
    }

    /// Next line that is neither blank nor a `#` comment.
    fn next_significant(&mut self) -> Result<Option<String>, TraceError> {
        loop {
            match self.next()? {
                None => return Ok(None),
                Some(s) => {
                    let t = s.trim_start();
                    if t.is_empty() || t.starts_with('#') {
                        continue;
                    }
                    return Ok(Some(s));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_simt::{KernelProgram, WarpInstr};
    use gpumem_types::CtaId;

    const OK: &str = "\
gpumem-trace v1
# a comment
kernel name=demo grid=2 warps_per_cta=1 max_ctas_per_core=0 shmem_bytes=2048 line_bytes=128

warp cta=0 warp=0
LD consume=2 mask=00000003 0x0 0x80
ALU lat=4
BAR
end
warp cta=1 warp=0
ST mask=00000001 0x100
end
";

    #[test]
    fn accepts_the_reference_trace() {
        let k = parse_str(OK).expect("reference trace must parse");
        assert_eq!(k.name(), "demo");
        assert_eq!(k.grid_ctas(), 2);
        assert_eq!(k.warps_per_cta(), 1);
        assert_eq!(k.max_ctas_per_core(), usize::MAX);
        assert_eq!(k.shmem_bytes(), 2048);
        assert_eq!(k.line_bytes(), 128);
        assert_eq!(k.warp_instr_count(CtaId::new(0), 0), Some(3));
        assert_eq!(k.warp_instr_count(CtaId::new(1), 0), Some(1));
        assert_eq!(
            k.instr(CtaId::new(0), 0, 0),
            Some(WarpInstr::Load {
                lines: vec![
                    gpumem_types::LineAddr::new(0),
                    gpumem_types::LineAddr::new(1)
                ],
                consume_after: 2,
            })
        );
        assert_eq!(k.instr(CtaId::new(0), 0, 2), Some(WarpInstr::Barrier));
        assert_eq!(
            k.instr(CtaId::new(1), 0, 0),
            Some(WarpInstr::Store {
                lines: vec![gpumem_types::LineAddr::new(2)],
            })
        );
    }

    #[test]
    fn digest_is_content_addressed() {
        let a = parse_str(OK).expect("parses");
        let b = parse_str(OK).expect("parses");
        assert_eq!(a.digest(), b.digest());
        let other = OK.replace("lat=4", "lat=5");
        let c = parse_str(&other).expect("parses");
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn duplicate_lines_coalesce_first_touch() {
        let t = OK.replace("mask=00000003 0x0 0x80", "mask=00000007 0x80 0x0 0x84");
        let k = parse_str(&t).expect("parses");
        assert_eq!(
            k.instr(CtaId::new(0), 0, 0),
            Some(WarpInstr::Load {
                lines: vec![
                    gpumem_types::LineAddr::new(1),
                    gpumem_types::LineAddr::new(0)
                ],
                consume_after: 2,
            })
        );
    }

    #[test]
    fn out_of_order_blocks_are_structure_errors() {
        let t = OK
            .replace("warp cta=0 warp=0", "warp cta=1 warp=0")
            .replace("warp cta=1 warp=0\nST", "warp cta=0 warp=0\nST");
        match parse_str(&t) {
            Err(TraceError::Structure { line, .. }) => assert_eq!(line, 5),
            other => panic!("expected Structure error, got {other:?}"),
        }
    }

    #[test]
    fn mask_address_mismatch_is_a_structure_error() {
        let t = OK.replace("mask=00000003 0x0 0x80", "mask=00000003 0x0");
        match parse_str(&t) {
            Err(TraceError::Structure { line, detail }) => {
                assert_eq!(line, 6);
                assert!(detail.contains("2 lanes"), "{detail}");
            }
            other => panic!("expected Structure error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_an_eof_error() {
        let cut = OK.find("warp cta=1").expect("marker");
        match parse_str(&OK[..cut]) {
            Err(TraceError::UnexpectedEof { line, .. }) => assert_eq!(line, 10),
            other => panic!("expected UnexpectedEof, got {other:?}"),
        }
    }

    #[test]
    fn zero_mask_and_bad_numbers_are_syntax_errors() {
        for (needle, replacement) in [
            ("mask=00000003", "mask=00000000"),
            ("mask=00000003", "mask=0003"),
            ("lat=4", "lat=banana"),
            ("lat=4", "lat=0"),
            ("consume=2", "consume=0"),
            ("0x80", "80"),
            ("grid=2", "grid=0"),
            ("line_bytes=128", "line_bytes=100"),
        ] {
            let t = OK.replacen(needle, replacement, 1);
            match parse_str(&t) {
                Err(TraceError::Syntax { .. }) => {}
                other => panic!("{needle} -> {replacement}: expected Syntax, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_content_is_rejected_but_comments_are_not() {
        assert!(parse_str(&format!("{OK}\n# trailing comment\n\n")).is_ok());
        match parse_str(&format!("{OK}ALU lat=1\n")) {
            Err(TraceError::Structure { line, .. }) => assert_eq!(line, 13),
            other => panic!("expected Structure, got {other:?}"),
        }
    }

    #[test]
    fn crlf_line_endings_parse() {
        let t = OK.replace('\n', "\r\n");
        assert!(parse_str(&t).is_ok());
    }

    #[test]
    fn wrong_magic_is_rejected_at_line_one() {
        match parse_str("accel-sim v9\n") {
            Err(TraceError::Syntax { line: 1, .. }) => {}
            other => panic!("expected Syntax at line 1, got {other:?}"),
        }
    }
}
