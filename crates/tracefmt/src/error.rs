//! Typed diagnostics for the trace decoder and encoder.

use std::fmt;

/// A failure decoding (or encoding) a kernel trace.
///
/// Every decode-side variant carries the 1-based line number of the
/// offending input line, and [`TraceError::Syntax`] additionally the
/// 1-based byte column of the offending token, so a malformed trace is
/// diagnosable from the rendered message alone. The parser never panics:
/// arbitrary input — truncated, bit-flipped, reordered — lands in exactly
/// one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The underlying reader failed.
    Io {
        /// The rendered I/O error.
        detail: String,
    },
    /// A token does not parse: bad keyword, malformed `key=value`,
    /// unparseable number, bad mask or address spelling.
    Syntax {
        /// 1-based input line.
        line: u64,
        /// 1-based byte column of the offending token.
        column: u32,
        /// What was expected and what was found.
        detail: String,
    },
    /// Tokens parse but the trace is ill-formed: warp blocks duplicated,
    /// reordered or missing, address counts disagreeing with the active
    /// mask, content after the final block.
    Structure {
        /// 1-based input line.
        line: u64,
        /// What invariant was violated.
        detail: String,
    },
    /// A bounded-memory decode limit was exceeded (line length, warp
    /// count, instructions per warp, total instructions).
    Limit {
        /// 1-based input line.
        line: u64,
        /// Which limit, and the offending value.
        detail: String,
    },
    /// The input ended mid-construct (truncated header, unterminated warp
    /// block, missing warp blocks).
    UnexpectedEof {
        /// 1-based line at which input ended.
        line: u64,
        /// What the parser was still expecting.
        detail: String,
    },
    /// A [`KernelProgram`](gpumem_simt::KernelProgram) cannot be expressed
    /// in the trace format (encoder-side only).
    Unencodable {
        /// Why the program does not fit the format.
        detail: String,
    },
}

impl TraceError {
    /// The 1-based input line the error points at, when it points at one.
    pub fn line(&self) -> Option<u64> {
        match self {
            TraceError::Syntax { line, .. }
            | TraceError::Structure { line, .. }
            | TraceError::Limit { line, .. }
            | TraceError::UnexpectedEof { line, .. } => Some(*line),
            TraceError::Io { .. } | TraceError::Unencodable { .. } => None,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { detail } => write!(f, "trace I/O error: {detail}"),
            TraceError::Syntax {
                line,
                column,
                detail,
            } => write!(
                f,
                "trace syntax error at line {line}, column {column}: {detail}"
            ),
            TraceError::Structure { line, detail } => {
                write!(f, "malformed trace at line {line}: {detail}")
            }
            TraceError::Limit { line, detail } => {
                write!(f, "trace limit exceeded at line {line}: {detail}")
            }
            TraceError::UnexpectedEof { line, detail } => {
                write!(f, "unexpected end of trace at line {line}: {detail}")
            }
            TraceError::Unencodable { detail } => {
                write!(f, "program not encodable as a trace: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_errors_name_their_line() {
        let e = TraceError::Syntax {
            line: 7,
            column: 12,
            detail: "expected lat=<N>".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("column 12"));
        assert_eq!(e.line(), Some(7));

        for e in [
            TraceError::Structure {
                line: 3,
                detail: "x".into(),
            },
            TraceError::Limit {
                line: 3,
                detail: "x".into(),
            },
            TraceError::UnexpectedEof {
                line: 3,
                detail: "x".into(),
            },
        ] {
            assert!(e.to_string().contains("line 3"), "{e}");
            assert_eq!(e.line(), Some(3));
        }
        assert_eq!(
            TraceError::Io { detail: "d".into() }.line(),
            None,
            "I/O errors have no input line"
        );
    }
}
