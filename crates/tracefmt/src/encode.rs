//! Encoder: renders any [`KernelProgram`] as a `gpumem-trace v1` text
//! trace that decodes back to the identical instruction stream.
//!
//! This is how the self-hosted trace corpus is built: every synthetic
//! workload can be exported (`repro trace-gen`), re-parsed and replayed,
//! and the round-trip must be bit-identical — the decoder and the
//! generators are oracles for each other.

use std::fmt::Write as _;

use gpumem_simt::{KernelProgram, WarpInstr};
use gpumem_types::{CtaId, LineAddr};

use crate::error::TraceError;
use crate::parse::{MAGIC, MAX_TOTAL_WARPS, MAX_WARP_INSTRS};

/// Renders `program` as a `gpumem-trace v1` document, with load/store
/// lines materialized as line-aligned byte addresses at `line_bytes`.
///
/// Fails with [`TraceError::Unencodable`] when the program does not fit
/// the format: zero latencies, empty or oversized warps, duplicate lines
/// within one access, names outside `[A-Za-z0-9_.-]{1,64}`, or addresses
/// that overflow 64 bits at the chosen line size. Line-aligned addresses
/// guarantee the decode reproduces the exact [`LineAddr`] sequence.
pub fn encode_program(program: &dyn KernelProgram, line_bytes: u64) -> Result<String, TraceError> {
    if !line_bytes.is_power_of_two() || !(32..=4096).contains(&line_bytes) {
        return Err(unencodable(format!(
            "line_bytes must be a power of two in 32..=4096, got {line_bytes}"
        )));
    }
    let name = program.name();
    if name.is_empty()
        || name.len() > 64
        || !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
    {
        return Err(unencodable(format!(
            "kernel name must be 1..=64 characters of [A-Za-z0-9_.-], got {name:?}"
        )));
    }
    let grid = program.grid_ctas();
    let warps = program.warps_per_cta();
    if grid == 0 || warps == 0 {
        return Err(unencodable(format!(
            "grid ({grid}) and warps_per_cta ({warps}) must both be >= 1"
        )));
    }
    if u64::from(grid) * u64::from(warps) > MAX_TOTAL_WARPS {
        return Err(unencodable(format!(
            "grid={grid} x warps_per_cta={warps} exceeds the decoder's {MAX_TOTAL_WARPS}-warp limit"
        )));
    }
    let max_ctas = match program.max_ctas_per_core() {
        usize::MAX => 0,
        n => u64::try_from(n).map_err(|_| unencodable("max_ctas_per_core exceeds u64".into()))?,
    };

    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(
        out,
        "kernel name={name} grid={grid} warps_per_cta={warps} \
         max_ctas_per_core={max_ctas} shmem_bytes=0 line_bytes={line_bytes}"
    );

    for cta in 0..grid {
        for warp in 0..warps {
            let _ = writeln!(out, "warp cta={cta} warp={warp}");
            let mut pc: u32 = 0;
            while let Some(instr) = program.instr(CtaId::new(cta), warp, pc) {
                if u64::from(pc) >= MAX_WARP_INSTRS {
                    return Err(unencodable(format!(
                        "warp cta={cta} warp={warp} exceeds the decoder's \
                         {MAX_WARP_INSTRS}-instruction limit"
                    )));
                }
                encode_instr(&mut out, &instr, cta, warp, line_bytes)?;
                pc = pc.checked_add(1).ok_or_else(|| {
                    unencodable(format!("warp cta={cta} warp={warp} overflows a u32 pc"))
                })?;
            }
            if pc == 0 {
                return Err(unencodable(format!(
                    "warp cta={cta} warp={warp} has no instructions \
                     (the format requires non-empty warp blocks)"
                )));
            }
            let _ = writeln!(out, "end");
        }
    }
    Ok(out)
}

fn encode_instr(
    out: &mut String,
    instr: &WarpInstr,
    cta: u32,
    warp: u32,
    line_bytes: u64,
) -> Result<(), TraceError> {
    match instr {
        WarpInstr::Alu { latency } => {
            require_pos(*latency, "ALU lat", cta, warp)?;
            let _ = writeln!(out, "ALU lat={latency}");
        }
        WarpInstr::Shared { latency } => {
            require_pos(*latency, "SHMEM lat", cta, warp)?;
            let _ = writeln!(out, "SHMEM lat={latency}");
        }
        WarpInstr::Load {
            lines,
            consume_after,
        } => {
            require_pos(*consume_after, "LD consume", cta, warp)?;
            let _ = write!(
                out,
                "LD consume={consume_after} mask={}",
                mask_of(lines, cta, warp)?
            );
            write_addrs(out, lines, line_bytes)?;
        }
        WarpInstr::Store { lines } => {
            let _ = write!(out, "ST mask={}", mask_of(lines, cta, warp)?);
            write_addrs(out, lines, line_bytes)?;
        }
        WarpInstr::Barrier => {
            let _ = writeln!(out, "BAR");
        }
    }
    Ok(())
}

/// The low-`k`-lanes active mask for a `k`-line access, validating the
/// 1..=32 distinct-lines contract.
fn mask_of(lines: &[LineAddr], cta: u32, warp: u32) -> Result<String, TraceError> {
    let k = lines.len();
    if k == 0 || k > 32 {
        return Err(unencodable(format!(
            "memory access in warp cta={cta} warp={warp} touches {k} lines (must be 1..=32)"
        )));
    }
    for (i, line) in lines.iter().enumerate() {
        if lines.get(..i).is_some_and(|prior| prior.contains(line)) {
            return Err(unencodable(format!(
                "memory access in warp cta={cta} warp={warp} repeats line {}",
                line.index()
            )));
        }
    }
    let mask: u32 = if k == 32 { u32::MAX } else { (1u32 << k) - 1 };
    Ok(format!("{mask:08x}"))
}

fn write_addrs(out: &mut String, lines: &[LineAddr], line_bytes: u64) -> Result<(), TraceError> {
    for line in lines {
        let addr = line.index().checked_mul(line_bytes).ok_or_else(|| {
            unencodable(format!(
                "line {} at line_bytes={line_bytes} overflows a 64-bit byte address",
                line.index()
            ))
        })?;
        let _ = write!(out, " 0x{addr:x}");
    }
    out.push('\n');
    Ok(())
}

fn require_pos(v: u32, what: &str, cta: u32, warp: u32) -> Result<(), TraceError> {
    if v == 0 {
        return Err(unencodable(format!(
            "{what} must be >= 1 in warp cta={cta} warp={warp}"
        )));
    }
    Ok(())
}

fn unencodable(detail: String) -> TraceError {
    TraceError::Unencodable { detail }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_str;
    use gpumem_types::CtaId;

    /// A hand-rolled two-CTA program exercising every instruction kind.
    struct Demo;

    impl KernelProgram for Demo {
        fn name(&self) -> &str {
            "demo-prog"
        }
        fn grid_ctas(&self) -> u32 {
            2
        }
        fn warps_per_cta(&self) -> u32 {
            2
        }
        fn max_ctas_per_core(&self) -> usize {
            4
        }
        fn instr(&self, cta: CtaId, warp: u32, pc: u32) -> Option<WarpInstr> {
            let base = (cta.index() as u64) * 64 + u64::from(warp) * 8;
            match pc {
                0 => Some(WarpInstr::Load {
                    lines: vec![LineAddr::new(base), LineAddr::new(base + 1)],
                    consume_after: 3,
                }),
                1 => Some(WarpInstr::Alu { latency: 6 }),
                2 => Some(WarpInstr::Shared { latency: 2 }),
                3 => Some(WarpInstr::Barrier),
                4 => Some(WarpInstr::Store {
                    lines: vec![LineAddr::new(base + 2)],
                }),
                _ => None,
            }
        }
        fn warp_instr_count(&self, cta: CtaId, warp: u32) -> Option<u32> {
            if cta.index() < 2 && warp < 2 {
                Some(5)
            } else {
                None
            }
        }
    }

    #[test]
    fn round_trips_through_the_parser() {
        let text = encode_program(&Demo, 128).expect("encodes");
        let k = parse_str(&text).expect("decodes");
        assert_eq!(k.name(), "demo-prog");
        assert_eq!(k.grid_ctas(), 2);
        assert_eq!(k.warps_per_cta(), 2);
        assert_eq!(k.max_ctas_per_core(), 4);
        for cta in 0..2 {
            for warp in 0..2 {
                let id = CtaId::new(cta);
                assert_eq!(k.warp_instr_count(id, warp), Some(5));
                for pc in 0..6 {
                    assert_eq!(
                        k.instr(id, warp, pc),
                        Demo.instr(id, warp, pc),
                        "cta={cta} warp={warp} pc={pc}"
                    );
                }
            }
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(
            encode_program(&Demo, 128).expect("encodes"),
            encode_program(&Demo, 128).expect("encodes")
        );
        let a = parse_str(&encode_program(&Demo, 128).expect("encodes")).expect("parses");
        let b = parse_str(&encode_program(&Demo, 128).expect("encodes")).expect("parses");
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn zero_latency_is_unencodable() {
        struct Bad;
        impl KernelProgram for Bad {
            fn name(&self) -> &str {
                "bad"
            }
            fn grid_ctas(&self) -> u32 {
                1
            }
            fn warps_per_cta(&self) -> u32 {
                1
            }
            fn instr(&self, _: CtaId, _: u32, pc: u32) -> Option<WarpInstr> {
                (pc == 0).then_some(WarpInstr::Alu { latency: 0 })
            }
            fn warp_instr_count(&self, _: CtaId, _: u32) -> Option<u32> {
                Some(1)
            }
        }
        match encode_program(&Bad, 128) {
            Err(TraceError::Unencodable { detail }) => assert!(detail.contains("ALU lat")),
            other => panic!("expected Unencodable, got {other:?}"),
        }
    }

    #[test]
    fn bad_line_bytes_is_unencodable() {
        assert!(matches!(
            encode_program(&Demo, 100),
            Err(TraceError::Unencodable { .. })
        ));
        assert!(matches!(
            encode_program(&Demo, 8192),
            Err(TraceError::Unencodable { .. })
        ));
    }
}
