//! The decoded trace as a [`KernelProgram`]: compact storage, random
//! access, exact instruction counts.

use gpumem_simt::{KernelProgram, WarpInstr};
use gpumem_types::{CellKey, CtaId, LineAddr};

/// One decoded instruction record, with load/store addresses stored as a
/// `(start, len)` window into the kernel's shared line pool — the decoded
/// form costs a few words per instruction regardless of how verbose the
/// text was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// `ALU lat=<n>`.
    Alu {
        /// Issue-to-ready latency (≥ 1).
        latency: u32,
    },
    /// `SHMEM lat=<n>`.
    Shared {
        /// Issue-to-ready latency (≥ 1).
        latency: u32,
    },
    /// `LD consume=<n> mask=<m> <addr>…`, coalesced.
    Load {
        /// Offset of the first line in the pool.
        start: u32,
        /// Distinct coalesced lines (1–32).
        len: u8,
        /// Load-to-use distance (≥ 1).
        consume_after: u32,
    },
    /// `ST mask=<m> <addr>…`, coalesced.
    Store {
        /// Offset of the first line in the pool.
        start: u32,
        /// Distinct coalesced lines (1–32).
        len: u8,
    },
    /// `BAR`.
    Barrier,
}

/// A fully-decoded kernel trace, replayable through the simulator as a
/// [`KernelProgram`].
///
/// Replay is deterministic by construction: the instruction stream is a
/// table lookup, so `instr(cta, warp, pc)` is pure and the traced run is
/// bit-identical across the event, stepped and parallel engines — exactly
/// the property the synthetic generators already have.
#[derive(Debug, Clone)]
pub struct TracedKernel {
    pub(crate) name: String,
    pub(crate) grid_ctas: u32,
    pub(crate) warps_per_cta: u32,
    pub(crate) max_ctas_per_core: usize,
    pub(crate) shmem_bytes: u64,
    pub(crate) line_bytes: u64,
    /// Per-warp windows into `ops`: warp `w`'s instructions are
    /// `ops[starts[w] .. starts[w + 1]]`. Length `total_warps + 1`.
    pub(crate) starts: Vec<u32>,
    pub(crate) ops: Vec<Op>,
    /// Shared coalesced-address pool referenced by load/store ops.
    pub(crate) pool: Vec<LineAddr>,
    /// FNV-128 digest of the exact trace bytes (the content address used
    /// by sweep cells).
    pub(crate) digest: CellKey,
}

impl TracedKernel {
    /// FNV-128 digest of the exact trace bytes this kernel was decoded
    /// from. Two traces with the same digest replay identically, so sweep
    /// cells are keyed by it.
    pub fn digest(&self) -> CellKey {
        self.digest
    }

    /// Cache-line size the trace's addresses were coalesced at.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Declared shared-memory footprint per CTA (header metadata; the
    /// occupancy effect is carried by `max_ctas_per_core`).
    pub fn shmem_bytes(&self) -> u64 {
        self.shmem_bytes
    }

    /// Total decoded instructions across every warp.
    pub fn total_instructions(&self) -> u64 {
        self.ops.len() as u64
    }

    /// Flat warp index, or `None` when `(cta, warp)` is outside the grid.
    fn warp_slot(&self, cta: CtaId, warp: u32) -> Option<usize> {
        if warp >= self.warps_per_cta {
            return None;
        }
        let cta = u64::try_from(cta.index()).ok()?;
        if cta >= u64::from(self.grid_ctas) {
            return None;
        }
        usize::try_from(cta * u64::from(self.warps_per_cta) + u64::from(warp)).ok()
    }

    /// The pool window of a load/store op, or `None` if the indices are
    /// inconsistent (unreachable for parser-built kernels; kept total so
    /// the decode path stays panic-free).
    fn window(&self, start: u32, len: u8) -> Option<Vec<LineAddr>> {
        let s = start as usize;
        let e = s.checked_add(len as usize)?;
        self.pool.get(s..e).map(<[LineAddr]>::to_vec)
    }
}

impl KernelProgram for TracedKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn grid_ctas(&self) -> u32 {
        self.grid_ctas
    }

    fn warps_per_cta(&self) -> u32 {
        self.warps_per_cta
    }

    fn max_ctas_per_core(&self) -> usize {
        self.max_ctas_per_core
    }

    fn warp_instr_count(&self, cta: CtaId, warp: u32) -> Option<u32> {
        let w = self.warp_slot(cta, warp)?;
        let (s, e) = (*self.starts.get(w)?, *self.starts.get(w + 1)?);
        // Windows are built as prefix sums, so e >= s always holds; the
        // exactness contract (never overstate) follows from `instr`
        // decoding the same window.
        Some(e.saturating_sub(s))
    }

    fn instr(&self, cta: CtaId, warp: u32, pc: u32) -> Option<WarpInstr> {
        let w = self.warp_slot(cta, warp)?;
        let (s, e) = (*self.starts.get(w)?, *self.starts.get(w + 1)?);
        let idx = s.checked_add(pc)?;
        if idx >= e {
            return None;
        }
        match *self.ops.get(idx as usize)? {
            Op::Alu { latency } => Some(WarpInstr::Alu { latency }),
            Op::Shared { latency } => Some(WarpInstr::Shared { latency }),
            Op::Load {
                start,
                len,
                consume_after,
            } => Some(WarpInstr::Load {
                lines: self.window(start, len)?,
                consume_after,
            }),
            Op::Store { start, len } => Some(WarpInstr::Store {
                lines: self.window(start, len)?,
            }),
            Op::Barrier => Some(WarpInstr::Barrier),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TracedKernel {
        TracedKernel {
            name: "tiny".into(),
            grid_ctas: 2,
            warps_per_cta: 1,
            max_ctas_per_core: usize::MAX,
            shmem_bytes: 0,
            line_bytes: 128,
            starts: vec![0, 2, 3],
            ops: vec![
                Op::Load {
                    start: 0,
                    len: 2,
                    consume_after: 1,
                },
                Op::Alu { latency: 4 },
                Op::Barrier,
            ],
            pool: vec![LineAddr::new(7), LineAddr::new(9)],
            digest: CellKey::from_canonical("tiny"),
        }
    }

    #[test]
    fn decode_matches_storage() {
        let k = tiny();
        assert_eq!(
            k.instr(CtaId::new(0), 0, 0),
            Some(WarpInstr::Load {
                lines: vec![LineAddr::new(7), LineAddr::new(9)],
                consume_after: 1,
            })
        );
        assert_eq!(
            k.instr(CtaId::new(0), 0, 1),
            Some(WarpInstr::Alu { latency: 4 })
        );
        assert_eq!(k.instr(CtaId::new(0), 0, 2), None);
        assert_eq!(k.instr(CtaId::new(1), 0, 0), Some(WarpInstr::Barrier));
        assert_eq!(k.instr(CtaId::new(1), 0, 1), None);
    }

    #[test]
    fn counts_are_exact_and_out_of_grid_is_none() {
        let k = tiny();
        assert_eq!(k.warp_instr_count(CtaId::new(0), 0), Some(2));
        assert_eq!(k.warp_instr_count(CtaId::new(1), 0), Some(1));
        assert_eq!(k.warp_instr_count(CtaId::new(2), 0), None);
        assert_eq!(k.warp_instr_count(CtaId::new(0), 1), None);
        assert_eq!(k.instr(CtaId::new(2), 0, 0), None);
        assert_eq!(k.instr(CtaId::new(0), 1, 0), None);
        assert_eq!(k.instr(CtaId::new(0), 0, u32::MAX), None);
    }

    #[test]
    fn total_instructions_counts_ops() {
        assert_eq!(tiny().total_instructions(), 3);
    }
}
