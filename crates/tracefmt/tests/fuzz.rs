//! Parser fuzz battery: the decoder must be *total* — arbitrary bytes,
//! byte-level mutations of valid traces, truncation at every offset and
//! structural shuffles of warp blocks all land in a typed [`TraceError`],
//! never a panic, and always deterministically.
//!
//! Hand-reduced malformed inputs live under `tests/fixtures/*.trace`; the
//! fixture sweep at the bottom keeps each one failing with a
//! line-numbered diagnostic (CI greps `repro run --trace-file` output for
//! the same line numbers).

use gpumem_tracefmt::{parse_reader, parse_str, TraceError};
use proptest::prelude::*;

/// A small but structurally complete trace: two CTAs of two warps, every
/// record kind, comments and blank lines. All mutation strategies start
/// from here so shrunken counterexamples stay readable.
const BASE: &str = "\
gpumem-trace v1
# fuzz battery base trace
kernel name=fuzz_base grid=2 warps_per_cta=2 max_ctas_per_core=2 shmem_bytes=256 line_bytes=128

warp cta=0 warp=0
ALU lat=4
LD consume=2 mask=00000003 0x0 0x80
SHMEM lat=6
BAR
ST mask=00000001 0x100
end
warp cta=0 warp=1
LD consume=1 mask=0000000f 0x200 0x280 0x300 0x380
ALU lat=2
BAR
end
warp cta=1 warp=0
ALU lat=1
ST mask=00000003 0x400 0x480
end
warp cta=1 warp=1
LD consume=3 mask=00000001 0x40
ALU lat=8
end
";

/// Applies a byte-edit script to `base`. Positions are taken modulo the
/// current length so every generated script is applicable; `kind` selects
/// substitute / insert / delete.
fn apply_edits(ops: &[(u8, usize, u8)], base: &[u8]) -> Vec<u8> {
    let mut v = base.to_vec();
    for &(kind, pos, byte) in ops {
        match kind % 3 {
            0 if !v.is_empty() => {
                let i = pos % v.len();
                v[i] = byte;
            }
            1 => v.insert(pos % (v.len() + 1), byte),
            2 if !v.is_empty() => {
                v.remove(pos % v.len());
            }
            _ => {}
        }
    }
    v
}

/// Splits `BASE` into its header prefix and the four warp blocks, each
/// block a self-contained `warp …`/`end` chunk of lines.
fn split_blocks(text: &str) -> (String, Vec<String>) {
    let mut header = String::new();
    let mut blocks: Vec<String> = Vec::new();
    for line in text.lines() {
        if line.starts_with("warp ") {
            blocks.push(String::new());
        }
        match blocks.last_mut() {
            None => {
                header.push_str(line);
                header.push('\n');
            }
            Some(b) => {
                b.push_str(line);
                b.push('\n');
            }
        }
    }
    (header, blocks)
}

/// An error produced from in-memory text must point at an input line
/// within the input (Io/Unencodable never arise from decoding a string).
fn assert_diagnosable(e: &TraceError, input: &[u8]) {
    let lines = input.iter().filter(|&&b| b == b'\n').count() as u64 + 1;
    match e.line() {
        Some(n) => assert!(
            n >= 1 && n <= lines + 1,
            "error line {n} outside input ({lines} lines): {e}"
        ),
        None => panic!("decode error without a line number: {e}"),
    }
}

#[test]
fn base_trace_is_valid() {
    let k = parse_str(BASE).expect("the fuzz base trace must parse");
    assert_eq!(k.total_instructions(), 12);
}

#[test]
fn truncation_at_every_offset_is_total() {
    let bytes = BASE.as_bytes();
    for cut in 0..=bytes.len() {
        let prefix = &bytes[..cut];
        match parse_reader(prefix) {
            // Only the full trace (modulo its final newline) may parse.
            Ok(_) => assert!(
                cut + 1 >= bytes.len(),
                "truncation at offset {cut} of {} parsed successfully",
                bytes.len()
            ),
            Err(e) => assert_diagnosable(&e, prefix),
        }
    }
}

#[test]
fn committed_fixtures_stay_malformed_with_line_diagnostics() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures");
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "trace"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 9,
        "expected the committed malformed corpus, found {names:?}"
    );
    for path in names {
        let text = std::fs::read_to_string(&path).expect("fixture reads");
        let err = match parse_str(&text) {
            Err(e) => e,
            Ok(_) => panic!("fixture {} unexpectedly parsed", path.display()),
        };
        let msg = err.to_string();
        assert!(
            err.line().is_some() && msg.contains("line "),
            "fixture {} must fail with a line-numbered diagnostic, got: {msg}",
            path.display()
        );
    }
}

proptest! {
    /// Arbitrary bytes — both UTF-8-lossy text and raw reader input —
    /// never panic the decoder.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        if let Err(e) = parse_reader(&bytes[..]) {
            assert_diagnosable(&e, &bytes);
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_str(&text);
    }

    /// Byte-level mutations of a valid trace decode deterministically:
    /// two decodes of the same mutant agree exactly, whether they accept
    /// (same content digest) or reject (same typed error).
    #[test]
    fn mutated_traces_decode_deterministically(
        ops in prop::collection::vec((any::<u8>(), 0usize..8192, any::<u8>()), 1..16),
    ) {
        let mutant = apply_edits(&ops, BASE.as_bytes());
        let a = parse_reader(&mutant[..]);
        let b = parse_reader(&mutant[..]);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x.digest(), y.digest()),
            (Err(x), Err(y)) => {
                assert_diagnosable(&x, &mutant);
                prop_assert_eq!(x, y);
            }
            _ => prop_assert!(false, "decode outcome flipped between identical inputs"),
        }
    }

    /// Reordering warp blocks violates the cta-major contract and
    /// duplicating one adds content after the final block: both must be
    /// typed structure errors, never panics or silent acceptance.
    #[test]
    fn reordered_or_duplicated_blocks_are_structure_errors(i in 0usize..4, j in 0usize..4) {
        let (header, blocks) = split_blocks(BASE);
        prop_assert_eq!(blocks.len(), 4);
        if i != j {
            let mut shuffled = blocks.clone();
            shuffled.swap(i, j);
            let text = format!("{header}{}", shuffled.concat());
            match parse_str(&text) {
                Err(TraceError::Structure { .. }) => {}
                other => prop_assert!(false, "swap {i}<->{j}: expected Structure, got {other:?}"),
            }
        }
        let mut duplicated = blocks.clone();
        duplicated.push(blocks[i].clone());
        let text = format!("{header}{}", duplicated.concat());
        match parse_str(&text) {
            Err(TraceError::Structure { .. }) => {}
            other => prop_assert!(false, "duplicate {i}: expected Structure, got {other:?}"),
        }
    }
}
