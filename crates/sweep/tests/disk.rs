//! Disk-layer tests: journal replay under torn tails and bit flips, cell
//! checksum verification, quarantine, and the crash-injection metering.

use std::fs;
use std::path::PathBuf;

use gpumem_sweep::{CellKey, DiskStore, JournalEvent, SweepError};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpumem-sweep-disk-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn key(n: u64) -> CellKey {
    CellKey::from_canonical(&format!("test-cell-{n}"))
}

#[test]
fn journal_round_trips_and_sequences() {
    let root = scratch("roundtrip");
    let mut store = DiskStore::open(&root).unwrap();
    store
        .append_journal(JournalEvent::Opened, None, "spec-digest")
        .unwrap();
    store
        .append_journal(JournalEvent::Commit, Some(key(1)), "abc")
        .unwrap();
    let records = store.read_journal().unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].seq, 0);
    assert_eq!(records[1].seq, 1);
    assert_eq!(records[1].event, JournalEvent::Commit);
    assert_eq!(records[1].cell, key(1).to_string());

    // Reopening continues the sequence.
    let mut store = DiskStore::open(&root).unwrap();
    store.append_journal(JournalEvent::Done, None, "").unwrap();
    assert_eq!(store.read_journal().unwrap().last().unwrap().seq, 2);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn torn_tail_is_silently_dropped_at_every_truncation_point() {
    let root = scratch("torn");
    let mut store = DiskStore::open(&root).unwrap();
    for i in 0..3 {
        store
            .append_journal(JournalEvent::Commit, Some(key(i)), "d")
            .unwrap();
    }
    let full = fs::read(root.join("journal.log")).unwrap();
    let line_ends: Vec<usize> = full
        .iter()
        .enumerate()
        .filter(|(_, b)| **b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();
    for cut in 0..=full.len() {
        fs::write(root.join("journal.log"), &full[..cut]).unwrap();
        let store = DiskStore::open(&root).unwrap();
        let records = store.read_journal().unwrap();
        let complete_lines = line_ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(
            records.len(),
            complete_lines,
            "cut at byte {cut} must keep exactly the complete lines"
        );
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn corrupt_journal_line_ends_replay_without_error() {
    let root = scratch("corrupt-line");
    let mut store = DiskStore::open(&root).unwrap();
    for i in 0..3 {
        store
            .append_journal(JournalEvent::Commit, Some(key(i)), "d")
            .unwrap();
    }
    let mut bytes = fs::read(root.join("journal.log")).unwrap();
    let second_line = bytes
        .iter()
        .position(|b| *b == b'\n')
        .map(|i| i + 1)
        .unwrap();
    bytes[second_line + 3] ^= 0x40; // flip a bit inside line 2's checksum
    fs::write(root.join("journal.log"), &bytes).unwrap();
    let records = DiskStore::open(&root).unwrap().read_journal().unwrap();
    assert_eq!(records.len(), 1, "replay stops at the first bad line");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cell_files_verify_and_flag_corruption() {
    let root = scratch("cells");
    let store = DiskStore::open(&root).unwrap();
    assert!(store.read_cell(key(7)).unwrap().is_none());
    store.write_cell(key(7), "{\"x\":1}").unwrap();
    assert_eq!(store.read_cell(key(7)).unwrap().unwrap(), "{\"x\":1}");

    let path = store.cell_path(key(7));
    let mut bytes = fs::read(&path).unwrap();
    let last = bytes.len() - 2;
    bytes[last] ^= 0x01;
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        store.read_cell(key(7)),
        Err(SweepError::CorruptCell { .. })
    ));

    store.quarantine(key(7)).unwrap();
    assert!(store.read_cell(key(7)).unwrap().is_none());
    assert!(root
        .join("quarantine")
        .join(format!("{}.json", key(7)))
        .exists());
    // Quarantining an already-gone cell is a no-op, not an error.
    store.quarantine(key(7)).unwrap();
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn crash_injection_tears_the_journal_at_the_exact_boundary() {
    let root = scratch("crash");
    let mut store = DiskStore::open(&root).unwrap();
    store
        .append_journal(JournalEvent::Commit, Some(key(0)), "d")
        .unwrap();
    let before = store.journal_bytes();
    store.set_crash_after(Some(before + 5));
    let err = store
        .append_journal(JournalEvent::Commit, Some(key(1)), "d")
        .unwrap_err();
    assert!(
        matches!(err, SweepError::InjectedCrash { journal_bytes } if journal_bytes == before + 5)
    );
    assert_eq!(
        fs::metadata(root.join("journal.log")).unwrap().len(),
        before + 5
    );

    // The torn store reopens cleanly with only the first record.
    let store = DiskStore::open(&root).unwrap();
    assert_eq!(store.read_journal().unwrap().len(), 1);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn crash_boundary_at_current_length_writes_nothing() {
    let root = scratch("crash-zero");
    let mut store = DiskStore::open(&root).unwrap();
    store
        .append_journal(JournalEvent::Commit, Some(key(0)), "d")
        .unwrap();
    let before = store.journal_bytes();
    store.set_crash_after(Some(before));
    assert!(store
        .append_journal(JournalEvent::Commit, Some(key(1)), "d")
        .is_err());
    assert_eq!(
        fs::metadata(root.join("journal.log")).unwrap().len(),
        before
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn open_existing_refuses_to_mint_a_store() {
    use gpumem_sweep::ResultStore;

    let root = scratch("open-existing");
    // Nothing on disk: both layers must error without creating anything.
    match DiskStore::open_existing(&root) {
        Err(SweepError::Io { detail, .. }) => assert!(detail.contains("no results store")),
        other => panic!("expected Io error, got {other:?}"),
    }
    assert!(matches!(
        ResultStore::open_existing(&root),
        Err(SweepError::Io { .. })
    ));
    assert!(!root.exists(), "a failed open must leave no store skeleton");

    // Once a store exists, open_existing behaves exactly like open.
    drop(DiskStore::open(&root).unwrap());
    let mut store = DiskStore::open_existing(&root).unwrap();
    store
        .append_journal(JournalEvent::Opened, None, "x")
        .unwrap();
    assert!(ResultStore::open_existing(&root).is_ok());
    let _ = fs::remove_dir_all(&root);
}
