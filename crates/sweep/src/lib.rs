//! Crash-safe design-space sweep orchestrator.
//!
//! The paper's experiments are grids: benchmarks × design points ×
//! (sometimes) engines and seeds. Re-running a whole grid because the host
//! died 90% of the way through is wasteful and — worse — invites *partial*
//! reruns whose provenance nobody can reconstruct. This crate makes a sweep
//! a first-class, resumable artifact:
//!
//! * [`SweepSpec`] describes the grid; [`SweepSpec::expand`] turns it into
//!   [`SweepCell`]s, each content-addressed by a [`CellKey`] — a 128-bit
//!   FNV digest of everything the simulated result is a pure function of
//!   (canonical config JSON, workload parameters — or, for `trace:<path>`
//!   workloads, the trace file's byte digest — memory mode, engine,
//!   cycle budget and [`CODE_VERSION_SALT`]).
//! * [`ResultStore`] persists completed cells under `cells/<key>.json`
//!   with a checksum header, committed via write-temp-then-atomic-rename
//!   and recorded in an append-only write-ahead journal (`journal.log`).
//!   Corrupt or truncated entries are detected on read, quarantined, and
//!   recomputed — never served.
//! * [`run_sweep`] executes the missing cells through a bounded worker
//!   pool with per-cell deadlines and a deterministic retry budget
//!   ([`gpumem::RetryPolicy`]); deterministic simulator errors fail fast,
//!   only host-dependent ones retry.
//!
//! Killing the process at *any* point — including mid-write, which the
//! crash-injection hooks in [`SweepOptions`] emulate at adversarially
//! chosen journal offsets — loses at most the cells in flight. Resuming
//! over the same store replays the journal, serves every committed cell as
//! a cache hit, and finishes to bit-identical results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod journal;
mod orchestrator;
mod spec;
mod store;

pub use journal::{DiskStore, JournalEvent, JournalRecord};
pub use orchestrator::{run_sweep, CellOutcome, CellStatus, SweepOptions, SweepSummary};
pub use spec::{parse_design_point, parse_mode, EngineChoice, SweepCell, SweepSpec};
pub use store::{CellEnvelope, Lookup, ResultStore};

pub use gpumem_types::{CellKey, SweepError};

/// Salt folded into every [`CellKey`].
///
/// Bump this when a simulator change alters results for unchanged
/// configurations: old stores then miss cleanly instead of serving stale
/// numbers as cache hits.
pub const CODE_VERSION_SALT: &str = "gpumem-sweep-v1";
