//! Sweep specifications: the grid of cells a campaign covers, and the
//! canonical content address of each cell.

use std::path::Path;
use std::sync::Arc;

use gpumem_config::{DesignPoint, GpuConfig};
use gpumem_sim::{EpochPolicy, MemoryMode};
use gpumem_types::{CellKey, SweepError};
use gpumem_workloads::{params_of, WorkloadKind, BENCHMARK_NAMES};
use serde::{Deserialize, Serialize};

use crate::journal::read_trace_file;
use crate::CODE_VERSION_SALT;

/// The spec spelling of a trace-file workload: `trace:<path>`.
const TRACE_PREFIX: &str = "trace:";

/// Which engine executes a cell.
///
/// Every engine is bit-identical on the simulated results (the
/// differential suite proves it), but the engine is still part of the cell
/// key: a campaign that sweeps engines is asking precisely whether that
/// invariance holds, so its cells must not collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// The event-driven kernel behind `GpuSimulator::run`.
    Event,
    /// The per-cycle stepped oracle.
    Stepped,
    /// Epoch-synchronized sharded execution.
    Parallel {
        /// Worker threads inside the simulation.
        threads: usize,
        /// Epoch policy (`auto`, or a fixed cycle cap).
        epoch: EpochPolicy,
    },
}

impl EngineChoice {
    /// Parses the spec spelling: `event`, `stepped` or
    /// `parallel:<threads>:<auto|N>`.
    pub fn parse(spec: &str) -> Option<EngineChoice> {
        match spec {
            "event" => return Some(EngineChoice::Event),
            "stepped" => return Some(EngineChoice::Stepped),
            _ => {}
        }
        let rest = spec.strip_prefix("parallel:")?;
        let (threads, epoch) = rest.split_once(':')?;
        let threads: usize = threads.parse().ok().filter(|&n| n > 0)?;
        let epoch = match epoch {
            "auto" => EpochPolicy::Auto,
            n => {
                let n: u64 = n.parse().ok().filter(|&n| n > 0)?;
                if n == 1 {
                    EpochPolicy::PerCycle
                } else {
                    EpochPolicy::Fixed(n)
                }
            }
        };
        Some(EngineChoice::Parallel { threads, epoch })
    }

    /// The canonical spelling, used in cell keys and progress output.
    pub fn canonical(&self) -> String {
        match self {
            EngineChoice::Event => "event".to_owned(),
            EngineChoice::Stepped => "stepped".to_owned(),
            EngineChoice::Parallel { threads, epoch } => {
                let e = match epoch {
                    EpochPolicy::PerCycle => "1".to_owned(),
                    EpochPolicy::Fixed(n) => n.to_string(),
                    EpochPolicy::Auto => "auto".to_owned(),
                };
                format!("parallel:{threads}:{e}")
            }
        }
    }
}

/// Parses a Section IV design-point label (`baseline`, `L1`, `L2`, `DRAM`,
/// `L1+L2`, `L2+DRAM`, `L1+DRAM`, `L1+L2+DRAM`).
pub fn parse_design_point(label: &str) -> Option<DesignPoint> {
    let dp = match label {
        "baseline" => DesignPoint::BASELINE,
        "L1" => DesignPoint::L1_ONLY,
        "L2" => DesignPoint::L2_ONLY,
        "DRAM" => DesignPoint::DRAM_ONLY,
        "L1+L2" => DesignPoint::L1_L2,
        "L2+DRAM" => DesignPoint::L2_DRAM,
        "L1+DRAM" => DesignPoint {
            l1: true,
            l2: false,
            dram: true,
        },
        "L1+L2+DRAM" => DesignPoint::ALL,
        _ => return None,
    };
    Some(dp)
}

/// Parses a memory-mode spelling: `hierarchy` or `fixed:<latency>`.
pub fn parse_mode(spec: &str) -> Option<MemoryMode> {
    if spec == "hierarchy" {
        return Some(MemoryMode::Hierarchy);
    }
    let n = spec.strip_prefix("fixed:")?.parse().ok()?;
    Some(MemoryMode::FixedLatency(n))
}

/// A sweep campaign: the cross product of every axis below, one cell per
/// combination.
///
/// Serialized as plain JSON (every field explicit — the offline serde
/// stand-in has no defaulting) and stored inside the results store as
/// `spec.json`, which is what makes `repro sweep --resume <dir>` possible
/// without re-supplying the spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Campaign name (free-form, printed in summaries).
    pub name: String,
    /// Workload scale factor (1.0 = the paper's full scale).
    pub scale: f64,
    /// Workloads: benchmark names (the paper's eight or the ML family —
    /// anything `gpumem_workloads::params_of` resolves), or `trace:<path>`
    /// for a `gpumem-trace v1` file. Trace workloads ignore `scale` (a
    /// recorded instruction stream has no scale knob) and are
    /// content-addressed by the trace's byte digest, not its path.
    pub workloads: Vec<String>,
    /// Design-point labels (see [`parse_design_point`]).
    pub design_points: Vec<String>,
    /// Workload seed offsets; 0 is the benchmark's canonical seed.
    pub seeds: Vec<u64>,
    /// Memory modes (see [`parse_mode`]).
    pub modes: Vec<String>,
    /// Engines (see [`EngineChoice::parse`]).
    pub engines: Vec<String>,
    /// Per-cell cycle budget (watchdog).
    pub max_cycles: u64,
    /// Optional per-cell wall-clock deadline in seconds.
    pub deadline_seconds: Option<f64>,
}

impl SweepSpec {
    /// The paper's §V design-space grid: every benchmark × the Section IV
    /// design points (plus baseline) on the full hierarchy, one seed, the
    /// event engine.
    pub fn section_v(scale: f64) -> SweepSpec {
        SweepSpec {
            name: "section-v".to_owned(),
            scale,
            workloads: BENCHMARK_NAMES.iter().map(|s| (*s).to_owned()).collect(),
            design_points: ["baseline", "L1", "L2", "DRAM", "L1+L2", "L2+DRAM"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            seeds: vec![0],
            modes: vec!["hierarchy".to_owned()],
            engines: vec!["event".to_owned()],
            max_cycles: gpumem::DEFAULT_MAX_CYCLES,
            deadline_seconds: None,
        }
    }

    /// Parses a JSON spec.
    ///
    /// # Errors
    ///
    /// [`SweepError::SpecInvalid`] on malformed JSON or a failed
    /// [`SweepSpec::validate`].
    pub fn from_json(json: &str) -> Result<SweepSpec, SweepError> {
        let spec: SweepSpec = serde_json::from_str(json).map_err(|e| SweepError::SpecInvalid {
            detail: format!("unparseable spec JSON: {e:?}"),
        })?;
        spec.validate()?;
        Ok(spec)
    }

    /// Renders the spec as the JSON stored in the results store.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Checks every axis: non-empty, known benchmarks, parseable labels.
    ///
    /// # Errors
    ///
    /// [`SweepError::SpecInvalid`] naming the offending entry.
    pub fn validate(&self) -> Result<(), SweepError> {
        let invalid = |detail: String| Err(SweepError::SpecInvalid { detail });
        // NaN must fail too, hence the explicit is_finite arm.
        if !self.scale.is_finite() || self.scale <= 0.0 {
            return invalid(format!("scale must be positive, got {}", self.scale));
        }
        if self.max_cycles == 0 {
            return invalid("max_cycles must be positive".to_owned());
        }
        for (axis, len) in [
            ("workloads", self.workloads.len()),
            ("design_points", self.design_points.len()),
            ("seeds", self.seeds.len()),
            ("modes", self.modes.len()),
            ("engines", self.engines.len()),
        ] {
            if len == 0 {
                return invalid(format!("axis `{axis}` is empty"));
            }
        }
        for w in &self.workloads {
            if let Some(path) = w.strip_prefix(TRACE_PREFIX) {
                if path.is_empty() {
                    return invalid(
                        "trace workload has an empty path (want `trace:<path>`)".into(),
                    );
                }
            } else if params_of(w).is_none() {
                return invalid(format!("unknown benchmark {w:?}"));
            }
        }
        for d in &self.design_points {
            if parse_design_point(d).is_none() {
                return invalid(format!("unknown design-point label {d:?}"));
            }
        }
        for m in &self.modes {
            if parse_mode(m).is_none() {
                return invalid(format!("bad mode {m:?} (want `hierarchy` or `fixed:<N>`)"));
            }
        }
        for e in &self.engines {
            if EngineChoice::parse(e).is_none() {
                return invalid(format!(
                    "bad engine {e:?} (want `event`, `stepped` or `parallel:<threads>:<epoch>`)"
                ));
            }
        }
        Ok(())
    }

    /// Expands the grid into concrete cells, in deterministic axis order
    /// (workload-major, then design point, mode, engine, seed). Trace
    /// workloads are read and decoded here — once per spec entry, shared
    /// by every cell they expand into.
    ///
    /// # Errors
    ///
    /// [`SweepError::SpecInvalid`] via [`SweepSpec::validate`], or for a
    /// trace file that cannot be read or decoded (the decode diagnostic,
    /// with its line number, is embedded in the detail).
    pub fn expand(&self) -> Result<Vec<SweepCell>, SweepError> {
        self.validate()?;
        let baseline = GpuConfig::gtx480();
        let mut cells = Vec::new();
        for w in &self.workloads {
            let base = self.resolve_workload(w)?;
            for d in &self.design_points {
                let dp = parse_design_point(d).expect("validated above");
                let cfg = dp.apply(&baseline);
                for m in &self.modes {
                    let mode = parse_mode(m).expect("validated above");
                    for e in &self.engines {
                        let engine = EngineChoice::parse(e).expect("validated above");
                        for &seed in &self.seeds {
                            let workload = match &base {
                                WorkloadKind::Synthetic(p) => {
                                    let mut params = p.clone();
                                    params.seed = params.seed.wrapping_add(seed);
                                    WorkloadKind::Synthetic(params)
                                }
                                traced => traced.clone(),
                            };
                            cells.push(SweepCell::new(
                                w.clone(),
                                d.clone(),
                                seed,
                                cfg.clone(),
                                workload,
                                mode,
                                engine,
                                self.max_cycles,
                            ));
                        }
                    }
                }
            }
        }
        Ok(cells)
    }

    /// Resolves one `workloads` entry to a runnable workload (synthetic
    /// parameters at this spec's scale, or a decoded trace).
    fn resolve_workload(&self, entry: &str) -> Result<WorkloadKind, SweepError> {
        if let Some(path) = entry.strip_prefix(TRACE_PREFIX) {
            let text = read_trace_file(Path::new(path))?;
            let kernel =
                gpumem_tracefmt::parse_str(&text).map_err(|e| SweepError::SpecInvalid {
                    detail: format!("trace workload {path:?} does not decode: {e}"),
                })?;
            return Ok(WorkloadKind::Traced(Arc::new(kernel)));
        }
        let params = params_of(entry)
            .ok_or_else(|| SweepError::SpecInvalid {
                detail: format!("unknown benchmark {entry:?}"),
            })?
            .scaled(self.scale);
        Ok(WorkloadKind::Synthetic(params))
    }
}

/// One fully-resolved simulation of a sweep: everything needed to run it,
/// plus its content address.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The cell's content address (see [`SweepCell::new`] for what it
    /// covers).
    pub key: CellKey,
    /// Benchmark name.
    pub benchmark: String,
    /// Design-point label.
    pub design_point: String,
    /// Seed offset from the spec's `seeds` axis.
    pub seed: u64,
    /// The concrete configuration (design point already applied).
    pub cfg: GpuConfig,
    /// The concrete workload: synthetic parameters (scale and seed
    /// already applied) or a decoded trace.
    pub workload: WorkloadKind,
    /// Memory mode.
    pub mode: MemoryMode,
    /// Executing engine.
    pub engine: EngineChoice,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl SweepCell {
    /// Builds the cell and computes its content address: an FNV digest of
    /// the canonical workload description, the configuration JSON, the
    /// mode, the engine, the cycle budget and the crate's
    /// [`CODE_VERSION_SALT`] — everything the simulated result is a pure
    /// function of. A synthetic workload canonicalizes as its parameter
    /// JSON (so pre-existing stores keep their keys); a traced workload as
    /// its trace-byte digest plus the seed axis value, so moving or
    /// renaming a trace file does not orphan its results, while editing
    /// one byte of it does. Wall-clock deadlines are deliberately
    /// excluded: they bound *host* time and cannot change a completed
    /// result.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        benchmark: String,
        design_point: String,
        seed: u64,
        cfg: GpuConfig,
        workload: WorkloadKind,
        mode: MemoryMode,
        engine: EngineChoice,
        max_cycles: u64,
    ) -> SweepCell {
        let workload_canonical = match &workload {
            WorkloadKind::Synthetic(params) => format!(
                "params={}",
                serde_json::to_string(params).expect("params serialize")
            ),
            WorkloadKind::Traced(kernel) => {
                format!("trace={}|seed={seed}", kernel.digest())
            }
        };
        let canonical = format!(
            "cfg={}|{}|mode={}|engine={}|max_cycles={}|salt={}",
            serde_json::to_string(&cfg).expect("config serializes"),
            workload_canonical,
            mode,
            engine.canonical(),
            max_cycles,
            CODE_VERSION_SALT,
        );
        SweepCell {
            key: CellKey::from_canonical(&canonical),
            benchmark,
            design_point,
            seed,
            cfg,
            workload,
            mode,
            engine,
            max_cycles,
        }
    }

    /// Human-readable cell label for progress streams and summaries.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}/seed{}",
            self.benchmark,
            self.design_point,
            self.mode,
            self.engine.canonical(),
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            name: "t".into(),
            scale: 0.05,
            workloads: vec!["sc".into(), "nn".into()],
            design_points: vec!["baseline".into(), "L2".into()],
            seeds: vec![0],
            modes: vec!["hierarchy".into()],
            engines: vec!["event".into()],
            max_cycles: 1_000_000,
            deadline_seconds: None,
        }
    }

    #[test]
    fn expansion_is_the_full_cross_product_with_distinct_keys() {
        let cells = tiny_spec().expand().unwrap();
        assert_eq!(cells.len(), 4);
        let keys: std::collections::BTreeSet<String> =
            cells.iter().map(|c| c.key.to_string()).collect();
        assert_eq!(keys.len(), 4, "cell keys must be pairwise distinct");
    }

    #[test]
    fn keys_are_stable_across_expansions_and_sensitive_to_axes() {
        let a = tiny_spec().expand().unwrap();
        let b = tiny_spec().expand().unwrap();
        assert_eq!(
            a.iter().map(|c| c.key).collect::<Vec<_>>(),
            b.iter().map(|c| c.key).collect::<Vec<_>>()
        );
        let mut seeded = tiny_spec();
        seeded.seeds = vec![1];
        let c = seeded.expand().unwrap();
        assert_ne!(a[0].key, c[0].key, "seed must be part of the address");
        let mut scaled = tiny_spec();
        scaled.scale = 0.1;
        let d = scaled.expand().unwrap();
        assert_ne!(a[0].key, d[0].key, "scale must be part of the address");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = tiny_spec();
        let back = SweepSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn validation_names_the_offender() {
        let mut bad = tiny_spec();
        bad.workloads.push("nope".into());
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("nope"));

        let mut bad = tiny_spec();
        bad.engines = vec!["parallel:0:auto".into()];
        assert!(bad.validate().is_err());

        let mut bad = tiny_spec();
        bad.modes = Vec::new();
        assert!(bad.validate().unwrap_err().to_string().contains("modes"));
    }

    #[test]
    fn engine_spellings_round_trip() {
        for s in ["event", "stepped", "parallel:4:auto", "parallel:2:16"] {
            let e = EngineChoice::parse(s).unwrap();
            assert_eq!(e.canonical(), *s);
        }
        assert_eq!(
            EngineChoice::parse("parallel:2:1"),
            Some(EngineChoice::Parallel {
                threads: 2,
                epoch: EpochPolicy::PerCycle
            })
        );
        assert!(EngineChoice::parse("warp-drive").is_none());
    }

    #[test]
    fn trace_workloads_key_by_digest_not_path() {
        let dir = std::env::temp_dir().join(format!("gpumem-spec-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let program = gpumem_workloads::by_name("nw").unwrap();
        let text = gpumem_tracefmt::encode_program(program.as_ref(), 128).unwrap();
        let (a, b) = (dir.join("a.trace"), dir.join("b.trace"));
        std::fs::write(&a, &text).unwrap();
        std::fs::write(&b, &text).unwrap();

        let spec_for = |path: &std::path::Path| {
            let mut s = tiny_spec();
            s.workloads = vec![format!("trace:{}", path.display())];
            s
        };
        let cells_a = spec_for(&a).expand().unwrap();
        let cells_b = spec_for(&b).expand().unwrap();
        assert_eq!(cells_a.len(), 2);
        assert_eq!(
            cells_a[0].key, cells_b[0].key,
            "identical trace bytes must share a key regardless of path"
        );
        assert!(matches!(cells_a[0].workload, WorkloadKind::Traced(_)));

        // One edited byte re-addresses every cell of that trace.
        std::fs::write(&b, text.replace("ALU lat=4", "ALU lat=5")).unwrap();
        let cells_c = spec_for(&b).expand().unwrap();
        assert_ne!(cells_a[0].key, cells_c[0].key);

        // The seed axis still distinguishes traced cells.
        let mut seeded = spec_for(&a);
        seeded.seeds = vec![3];
        let cells_d = seeded.expand().unwrap();
        assert_ne!(cells_a[0].key, cells_d[0].key);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_trace_workloads_are_typed_errors() {
        let mut empty = tiny_spec();
        empty.workloads = vec!["trace:".into()];
        assert!(empty
            .validate()
            .unwrap_err()
            .to_string()
            .contains("empty path"));

        let mut missing = tiny_spec();
        missing.workloads = vec!["trace:/nonexistent/gpumem-no-such.trace".into()];
        assert!(
            missing.validate().is_ok(),
            "file existence is checked at expansion"
        );
        assert!(matches!(missing.expand(), Err(SweepError::Io { .. })));

        let dir = std::env::temp_dir().join(format!("gpumem-spec-badtrace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.trace");
        std::fs::write(&bad, "gpumem-trace v1\nkernel name=x grid=zero\n").unwrap();
        let mut spec = tiny_spec();
        spec.workloads = vec![format!("trace:{}", bad.display())];
        match spec.expand() {
            Err(SweepError::SpecInvalid { detail }) => {
                assert!(
                    detail.contains("line 2"),
                    "decode diagnostic kept: {detail}"
                );
            }
            other => panic!("expected SpecInvalid, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn section_v_grid_shape() {
        let spec = SweepSpec::section_v(0.1);
        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), 8 * 6, "8 benchmarks x 6 design points");
    }
}
