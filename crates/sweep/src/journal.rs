//! The disk layer: write-ahead journal, checksummed cell files, atomic
//! renames, quarantine.
//!
//! Every filesystem touch of the sweep crate lives in this module — the
//! `fs-outside-journal` simlint rule denies raw `std::fs` anywhere else in
//! the crate, so the commit protocol below is the *only* way sweep state
//! reaches disk:
//!
//! 1. the result is written to `cells/<key>.json.tmp` and atomically
//!    renamed over `cells/<key>.json`; the file's first line is an FNV
//!    checksum of the remaining bytes, so a torn or bit-flipped file is
//!    detectable on read;
//! 2. a `commit` record is appended to `journal.log`, each line
//!    self-checksummed as `<fnv16hex> <json>\n`.
//!
//! A crash between the two steps leaves a valid cell file with no journal
//! record — the store treats the file as authoritative, so the work is not
//! lost. A crash mid-append leaves a torn final journal line, which replay
//! tolerates by stopping at the first unverifiable line.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use gpumem_types::{fnv1a64, CellKey, SweepError};
use serde::{Deserialize, Serialize};

/// What a journal line records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalEvent {
    /// A sweep run opened the store.
    Opened,
    /// A cell was handed to a worker.
    Begin,
    /// A cell's result file is durably in place.
    Commit,
    /// A cell file failed checksum verification and was moved aside.
    Quarantine,
    /// A cell failed with a simulator error (after retries, if eligible).
    Failed,
    /// A sweep run finished; `detail` carries the store digest.
    Done,
}

/// One line of the write-ahead journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Monotonic sequence number within this store.
    pub seq: u64,
    /// Event kind.
    pub event: JournalEvent,
    /// Cell key as 32 hex chars; empty for store-level events.
    pub cell: String,
    /// Event-specific payload (result digest for `Commit`, error text for
    /// `Failed`, …).
    pub detail: String,
}

fn io_err(path: &Path, e: &std::io::Error) -> SweepError {
    SweepError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// Reads a `gpumem-trace v1` workload file for a sweep.
///
/// Trace files are *inputs* to a sweep, not store state, but this crate's
/// one-module filesystem policy applies to reads too — so the sweep path
/// for loading them lives here. The caller parses the returned text.
///
/// # Errors
///
/// [`SweepError::Io`] if the file cannot be read.
pub fn read_trace_file(path: &Path) -> Result<String, SweepError> {
    fs::read_to_string(path).map_err(|e| io_err(path, &e))
}

/// The on-disk layout of one results store, plus the crash-injection
/// metering used by the recovery tests.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    journal_path: PathBuf,
    journal_bytes: u64,
    next_seq: u64,
    crash_after: Option<u64>,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `root`, with
    /// `cells/` and `quarantine/` subdirectories and a `journal.log`.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] if the directories cannot be created or the
    /// journal cannot be stat'd.
    pub fn open(root: &Path) -> Result<DiskStore, SweepError> {
        for dir in [
            root.to_path_buf(),
            root.join("cells"),
            root.join("quarantine"),
        ] {
            fs::create_dir_all(&dir).map_err(|e| io_err(&dir, &e))?;
        }
        let journal_path = root.join("journal.log");
        let journal_bytes = match fs::metadata(&journal_path) {
            Ok(m) => m.len(),
            Err(_) => 0,
        };
        let mut store = DiskStore {
            root: root.to_path_buf(),
            journal_path,
            journal_bytes,
            next_seq: 0,
            crash_after: None,
        };
        store.next_seq = store.read_journal()?.last().map(|r| r.seq + 1).unwrap_or(0);
        Ok(store)
    }

    /// Opens a store that must already exist — the read-only entry point
    /// (`repro sweep --query`), which must not leave an empty store
    /// skeleton behind when pointed at the wrong directory.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] if `root/cells` is not a directory (no store
    /// here) or the journal cannot be read.
    pub fn open_existing(root: &Path) -> Result<DiskStore, SweepError> {
        if !root.join("cells").is_dir() {
            return Err(SweepError::Io {
                path: root.display().to_string(),
                detail: "no results store at this path (expected a `cells/` directory)".to_owned(),
            });
        }
        DiskStore::open(root)
    }

    /// Store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Bytes currently in the journal (including any torn tail).
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes
    }

    /// Arms crash injection: the next journal append that would push the
    /// journal past `boundary` bytes writes only up to the boundary (a
    /// torn line, exactly as a SIGKILL mid-`write(2)` would leave) and
    /// returns [`SweepError::InjectedCrash`].
    pub fn set_crash_after(&mut self, boundary: Option<u64>) {
        self.crash_after = boundary;
    }

    /// Appends one self-checksummed record to the journal.
    ///
    /// # Errors
    ///
    /// [`SweepError::InjectedCrash`] when an armed crash boundary is hit;
    /// [`SweepError::Io`] on real filesystem failure.
    pub fn append_journal(
        &mut self,
        event: JournalEvent,
        cell: Option<CellKey>,
        detail: &str,
    ) -> Result<(), SweepError> {
        let record = JournalRecord {
            seq: self.next_seq,
            event,
            cell: cell.map(|k| k.to_string()).unwrap_or_default(),
            detail: detail.to_owned(),
        };
        let json = serde_json::to_string(&record).expect("journal record serializes");
        let line = format!("{:016x} {}\n", fnv1a64(json.as_bytes()), json);
        let bytes = line.as_bytes();

        let write_prefix = match self.crash_after {
            Some(boundary) if self.journal_bytes + bytes.len() as u64 > boundary => {
                Some((boundary.saturating_sub(self.journal_bytes)) as usize)
            }
            _ => None,
        };
        let to_write = write_prefix.map_or(bytes, |n| &bytes[..n.min(bytes.len())]);

        if !to_write.is_empty() {
            let mut file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.journal_path)
                .map_err(|e| io_err(&self.journal_path, &e))?;
            file.write_all(to_write)
                .map_err(|e| io_err(&self.journal_path, &e))?;
            file.sync_all()
                .map_err(|e| io_err(&self.journal_path, &e))?;
            self.journal_bytes += to_write.len() as u64;
        }
        if write_prefix.is_some() {
            return Err(SweepError::InjectedCrash {
                journal_bytes: self.journal_bytes,
            });
        }
        self.next_seq += 1;
        Ok(())
    }

    /// Replays the journal: every verifiable record, in order.
    ///
    /// A line whose checksum or JSON does not verify ends the replay
    /// *silently* — that is the torn-tail contract. Records after a torn
    /// line are unreachable, which is safe because cell files, not the
    /// journal, are the source of truth for completed work.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] only on real read failure of an existing file.
    pub fn read_journal(&self) -> Result<Vec<JournalRecord>, SweepError> {
        // Raw bytes, not a string read: a torn tail can contain arbitrary
        // garbage, including invalid UTF-8, and must end the replay rather
        // than error the whole open.
        let bytes = match fs::read(&self.journal_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(&self.journal_path, &e)),
        };
        let mut records = Vec::new();
        let mut start = 0usize;
        while let Some(pos) = bytes[start..].iter().position(|b| *b == b'\n') {
            let line = &bytes[start..=start + pos];
            let Some(parsed) = std::str::from_utf8(line).ok().and_then(parse_journal_line) else {
                break;
            };
            records.push(parsed);
            start += pos + 1;
        }
        Ok(records)
    }

    /// Path of a cell's result file.
    pub fn cell_path(&self, key: CellKey) -> PathBuf {
        self.root.join("cells").join(format!("{key}.json"))
    }

    /// Durably writes a cell result: checksum header + body, staged in a
    /// temp file and atomically renamed into place.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on filesystem failure.
    pub fn write_cell(&self, key: CellKey, body: &str) -> Result<(), SweepError> {
        let content = format!("{:016x}\n{}", fnv1a64(body.as_bytes()), body);
        self.write_text_atomic(&self.cell_path(key), &content)
    }

    /// Reads and verifies a cell file.
    ///
    /// Returns the body with the checksum header stripped, `Ok(None)` if
    /// the file does not exist.
    ///
    /// # Errors
    ///
    /// [`SweepError::CorruptCell`] if the file exists but its header is
    /// malformed or the checksum does not match — the caller decides
    /// whether to quarantine; [`SweepError::Io`] on real read failure.
    pub fn read_cell(&self, key: CellKey) -> Result<Option<String>, SweepError> {
        let path = self.cell_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path, &e)),
        };
        let corrupt = |detail: String| SweepError::CorruptCell { cell: key, detail };
        // Bit rot can produce invalid UTF-8; that is corruption, not an
        // I/O failure.
        let content = match String::from_utf8(bytes) {
            Ok(t) => t,
            Err(_) => return Err(corrupt("file is not valid UTF-8".to_owned())),
        };
        let (header, body) = content
            .split_once('\n')
            .ok_or_else(|| corrupt("missing checksum header".to_owned()))?;
        let want = u64::from_str_radix(header.trim(), 16)
            .map_err(|_| corrupt(format!("bad checksum header {header:?}")))?;
        let got = fnv1a64(body.as_bytes());
        if want != got {
            return Err(corrupt(format!(
                "checksum mismatch: header {want:016x}, content {got:016x}"
            )));
        }
        Ok(Some(body.to_owned()))
    }

    /// Moves a failed-verification cell file into `quarantine/` so the
    /// evidence survives recomputation.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] if the rename fails for a reason other than the
    /// source already being gone.
    pub fn quarantine(&self, key: CellKey) -> Result<(), SweepError> {
        let from = self.cell_path(key);
        let to = self.root.join("quarantine").join(format!("{key}.json"));
        match fs::rename(&from, &to) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(&from, &e)),
        }
    }

    /// Writes `content` to `path` via temp file + atomic rename.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on filesystem failure.
    pub fn write_text_atomic(&self, path: &Path, content: &str) -> Result<(), SweepError> {
        let tmp = path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
            file.write_all(content.as_bytes())
                .map_err(|e| io_err(&tmp, &e))?;
            file.sync_all().map_err(|e| io_err(&tmp, &e))?;
        }
        fs::rename(&tmp, path).map_err(|e| io_err(path, &e))
    }

    /// Reads a text file under the store, `Ok(None)` if absent.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on real read failure.
    pub fn read_text(&self, path: &Path) -> Result<Option<String>, SweepError> {
        match fs::read_to_string(path) {
            Ok(t) => Ok(Some(t)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(path, &e)),
        }
    }
}

/// Verifies and parses one journal line (trailing newline included).
/// `None` means the line is torn or corrupt.
fn parse_journal_line(line: &str) -> Option<JournalRecord> {
    let line = line.strip_suffix('\n')?; // a line without \n is a torn tail
    let (checksum, json) = line.split_once(' ')?;
    let want = u64::from_str_radix(checksum, 16).ok()?;
    if fnv1a64(json.as_bytes()) != want {
        return None;
    }
    serde_json::from_str(json).ok()
}

// Disk behaviour (torn tails, checksum rejection, crash injection) is
// covered in `tests/disk.rs`: those tests need a scratch directory via
// `std::env::temp_dir`, which simlint's no-env rule denies in src/.
