//! The content-addressed results store: committed cell envelopes, digest
//! computation, and the hit/miss/quarantine decision procedure.

use std::collections::BTreeSet;
use std::path::Path;

use gpumem_sim::SimReport;
use gpumem_types::{CellKey, SweepError};
use serde::{Deserialize, Serialize};

use crate::journal::{DiskStore, JournalEvent};
use crate::SweepSpec;

/// What a committed cell file holds: the report plus its provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellEnvelope {
    /// Cell key as 32 hex chars (must match the file name).
    pub key: String,
    /// Human-readable cell label (benchmark/design point/…).
    pub label: String,
    /// Digest of the simulated result (see [`result_digest`]).
    pub result_digest: String,
    /// Attempts the committing run needed (1 unless a host-dependent
    /// failure was retried).
    pub attempts: u32,
    /// The simulated result itself.
    pub report: SimReport,
}

/// Outcome of a store lookup.
#[derive(Debug)]
pub enum Lookup {
    /// The cell is committed and its file verified: serve it.
    Hit(Box<CellEnvelope>),
    /// The cell must be (re)computed.
    Miss {
        /// True when evidence of a previous commit existed — a corrupt or
        /// checksum-failing file (now quarantined), or a journal commit
        /// record whose file is missing. These misses count as
        /// *recomputations* in the summary.
        was_committed: bool,
    },
}

/// The digest of a simulated result, as 32 hex chars.
///
/// Host-dependent fields — wall-clock throughput (`host`) and the
/// degraded-path marker (`degraded`) — are blanked first: two runs of the
/// same cell must digest identically even though the host behaved
/// differently, because the *simulated* numbers are bit-identical.
pub fn result_digest(report: &SimReport) -> String {
    let mut canonical = report.clone();
    canonical.host = None;
    canonical.degraded = None;
    let json = serde_json::to_string(&canonical).expect("report serializes");
    CellKey::from_canonical(&json).to_string()
}

/// A [`DiskStore`] plus the replayed journal state: which cells the
/// journal claims are committed, and the verification logic that decides
/// whether to trust each cell file.
#[derive(Debug)]
pub struct ResultStore {
    disk: DiskStore,
    journal_committed: BTreeSet<String>,
}

impl ResultStore {
    /// Opens (or creates) the store at `root` and replays its journal.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on filesystem failure.
    pub fn open(root: &Path) -> Result<ResultStore, SweepError> {
        let disk = DiskStore::open(root)?;
        let journal_committed = disk
            .read_journal()?
            .into_iter()
            .filter(|r| r.event == JournalEvent::Commit)
            .map(|r| r.cell)
            .collect();
        Ok(ResultStore {
            disk,
            journal_committed,
        })
    }

    /// Opens a store that must already exist; never creates directories.
    /// This is what read-only consumers (`repro sweep --query`) use, so a
    /// typo'd path is a typed error instead of a freshly-minted empty
    /// store.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] if there is no store at `root` or its journal
    /// cannot be read.
    pub fn open_existing(root: &Path) -> Result<ResultStore, SweepError> {
        let disk = DiskStore::open_existing(root)?;
        let journal_committed = disk
            .read_journal()?
            .into_iter()
            .filter(|r| r.event == JournalEvent::Commit)
            .map(|r| r.cell)
            .collect();
        Ok(ResultStore {
            disk,
            journal_committed,
        })
    }

    /// Arms crash injection on the underlying journal (see
    /// [`DiskStore::set_crash_after`]).
    pub fn set_crash_after(&mut self, boundary: Option<u64>) {
        self.disk.set_crash_after(boundary);
    }

    /// Bytes currently in the journal.
    pub fn journal_bytes(&self) -> u64 {
        self.disk.journal_bytes()
    }

    /// Appends a store-level journal record (`Opened`/`Done`).
    ///
    /// # Errors
    ///
    /// [`SweepError::InjectedCrash`] / [`SweepError::Io`] from the
    /// journal append.
    pub fn journal_event(&mut self, event: JournalEvent, detail: &str) -> Result<(), SweepError> {
        self.disk.append_journal(event, None, detail)
    }

    /// Appends a cell-level journal record (`Begin`/`Failed`).
    ///
    /// # Errors
    ///
    /// [`SweepError::InjectedCrash`] / [`SweepError::Io`] from the
    /// journal append.
    pub fn journal_cell_event(
        &mut self,
        event: JournalEvent,
        key: CellKey,
        detail: &str,
    ) -> Result<(), SweepError> {
        self.disk.append_journal(event, Some(key), detail)
    }

    /// Decides whether `key` can be served from the store.
    ///
    /// The cell *file* is authoritative: a verifiable file is a hit even
    /// without a journal commit record (the process may have died between
    /// the rename and the journal append — the work is durable either
    /// way). A corrupt file is quarantined, recorded in the journal, and
    /// reported as a recomputation miss; so is a journal-committed cell
    /// whose file has vanished.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on filesystem failure,
    /// [`SweepError::InjectedCrash`] if quarantining hits an armed crash
    /// boundary.
    pub fn lookup(&mut self, key: CellKey) -> Result<Lookup, SweepError> {
        let hex = key.to_string();
        match self.disk.read_cell(key) {
            Ok(Some(body)) => match serde_json::from_str::<CellEnvelope>(&body) {
                Ok(env) if env.key == hex => Ok(Lookup::Hit(Box::new(env))),
                _ => {
                    // Checksum passed but the payload is not this cell's
                    // envelope — still corruption, just a cleverer kind.
                    self.quarantine(key, "envelope mismatch")?;
                    Ok(Lookup::Miss {
                        was_committed: true,
                    })
                }
            },
            Ok(None) => Ok(Lookup::Miss {
                was_committed: self.journal_committed.contains(&hex),
            }),
            Err(SweepError::CorruptCell { detail, .. }) => {
                self.quarantine(key, &detail)?;
                Ok(Lookup::Miss {
                    was_committed: true,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Read-only probe used by `repro sweep --query`: never quarantines,
    /// never writes.
    ///
    /// # Errors
    ///
    /// [`SweepError::CorruptCell`] if the file exists but does not
    /// verify; [`SweepError::Io`] on filesystem failure.
    pub fn peek(&self, key: CellKey) -> Result<Option<CellEnvelope>, SweepError> {
        let hex = key.to_string();
        match self.disk.read_cell(key)? {
            None => Ok(None),
            Some(body) => match serde_json::from_str::<CellEnvelope>(&body) {
                Ok(env) if env.key == hex => Ok(Some(env)),
                _ => Err(SweepError::CorruptCell {
                    cell: key,
                    detail: "envelope does not parse or names another cell".to_owned(),
                }),
            },
        }
    }

    fn quarantine(&mut self, key: CellKey, detail: &str) -> Result<(), SweepError> {
        self.disk.quarantine(key)?;
        self.journal_committed.remove(&key.to_string());
        self.disk
            .append_journal(JournalEvent::Quarantine, Some(key), detail)
    }

    /// Commits a computed cell: durable file first, then the journal
    /// record. Returns the result digest.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on filesystem failure,
    /// [`SweepError::InjectedCrash`] if the journal append hits an armed
    /// crash boundary — the cell file is already durable in that case,
    /// exactly the window the protocol is designed to survive.
    pub fn commit(
        &mut self,
        key: CellKey,
        label: &str,
        attempts: u32,
        report: &SimReport,
    ) -> Result<String, SweepError> {
        let digest = result_digest(report);
        let envelope = CellEnvelope {
            key: key.to_string(),
            label: label.to_owned(),
            result_digest: digest.clone(),
            attempts,
            report: report.clone(),
        };
        let body = serde_json::to_string_pretty(&envelope).expect("envelope serializes");
        self.disk.write_cell(key, &body)?;
        self.journal_committed.insert(key.to_string());
        self.disk
            .append_journal(JournalEvent::Commit, Some(key), &digest)?;
        Ok(digest)
    }

    /// Digest of the whole store restricted to `keys`: the FNV-128 of the
    /// sorted `<key>=<result digest>` lines of every committed cell.
    /// Uncommitted keys are skipped (so a store with failures still has a
    /// well-defined digest over what exists).
    ///
    /// # Errors
    ///
    /// [`SweepError::CorruptCell`] / [`SweepError::Io`] from
    /// [`ResultStore::peek`].
    pub fn store_digest(&self, keys: &[CellKey]) -> Result<String, SweepError> {
        let mut lines = Vec::new();
        for &key in keys {
            if let Some(env) = self.peek(key)? {
                lines.push(format!("{}={}\n", env.key, env.result_digest));
            }
        }
        lines.sort();
        lines.dedup();
        Ok(CellKey::from_canonical(&lines.concat()).to_string())
    }

    /// Persists the spec as `spec.json` so `--resume <dir>` needs no
    /// other input.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on filesystem failure.
    pub fn save_spec(&self, spec: &SweepSpec) -> Result<(), SweepError> {
        let path = self.disk.root().join("spec.json");
        self.disk.write_text_atomic(&path, &spec.to_json())
    }

    /// Loads the spec a previous run stored, if any.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on read failure, [`SweepError::SpecInvalid`] if
    /// the stored spec no longer parses.
    pub fn load_spec(&self) -> Result<Option<SweepSpec>, SweepError> {
        let path = self.disk.root().join("spec.json");
        match self.disk.read_text(&path)? {
            None => Ok(None),
            Some(text) => SweepSpec::from_json(&text).map(Some),
        }
    }
}
