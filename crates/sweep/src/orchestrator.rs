//! The sweep executor: admission through the store, a bounded worker
//! pool for the misses, and single-writer commit ordering.
//!
//! Concurrency model: workers only *simulate* — every store mutation
//! (journal appends, cell commits, quarantines) happens on the
//! coordinating thread, so the write-ahead journal has exactly one writer
//! and needs no locking. Workers stream `(index, attempts, result)` over a
//! channel and the coordinator commits results in arrival order; the
//! content-addressed store makes the commit order irrelevant to the final
//! state.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use gpumem::{retry_with_policy, RetryPolicy};
use gpumem_sim::{GpuSimulator, SimError, SimReport};
use gpumem_types::SweepError;
use serde::{Deserialize, Serialize};

use crate::journal::JournalEvent;
use crate::spec::{EngineChoice, SweepCell, SweepSpec};
use crate::store::{Lookup, ResultStore};

/// Knobs for one [`run_sweep`] invocation (everything here is about *how*
/// the sweep executes, never *what* it computes — nothing in this struct
/// enters a cell key).
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads for cell execution; 0 means one per host core.
    pub workers: usize,
    /// Retry budget and backoff for host-dependent failures.
    pub retry: RetryPolicy,
    /// Stream per-cell progress lines to stderr.
    pub progress: bool,
    /// Crash-injection hook for the recovery tests: tear the journal at
    /// this byte offset and abort the sweep, as a SIGKILL would.
    pub crash_after_journal_bytes: Option<u64>,
}

/// How one cell was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellStatus {
    /// Served from the store without simulating.
    CacheHit,
    /// Simulated for the first time.
    Computed,
    /// Simulated again because a previous commit was lost or corrupt.
    Recomputed,
    /// The simulator returned an error (after retries, if eligible).
    Failed,
}

/// Per-cell outcome, in spec expansion order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Cell key as 32 hex chars.
    pub key: String,
    /// Human-readable cell label.
    pub label: String,
    /// How the cell was satisfied.
    pub status: CellStatus,
    /// Simulation attempts this run made for the cell (0 for cache hits).
    pub attempts: u32,
    /// Digest of the cell's result; absent for failures.
    pub result_digest: Option<String>,
    /// Error text for failures, empty otherwise.
    pub detail: String,
}

/// What a sweep run did, cell by cell and in aggregate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Campaign name from the spec.
    pub name: String,
    /// Total cells in the expanded grid.
    pub cells: usize,
    /// Cells served from the store without simulating.
    pub cache_hits: usize,
    /// Cells simulated for the first time.
    pub computed: usize,
    /// Cells simulated again after a lost or corrupt commit (subset of
    /// `computed` counting, not overlapping it — a cell is one or the
    /// other).
    pub recomputed: usize,
    /// Cells that failed after exhausting their retry eligibility.
    pub failed: usize,
    /// Simulation attempts across all cells this run.
    pub attempts_total: u64,
    /// Digest over every committed cell of the grid (see
    /// [`ResultStore::store_digest`]).
    pub store_digest: String,
    /// Per-cell detail, in spec expansion order.
    pub outcomes: Vec<CellOutcome>,
}

impl SweepSummary {
    /// Simulations actually run (computed + recomputed): 0 means the
    /// whole grid was served from the store.
    pub fn simulations_run(&self) -> usize {
        self.computed + self.recomputed
    }
}

/// Executes one cell, honouring its engine choice, under a retry policy.
fn execute_cell(
    cell: &SweepCell,
    deadline_seconds: Option<f64>,
    retry: &RetryPolicy,
) -> (u32, Result<SimReport, SimError>) {
    let program: Arc<dyn gpumem_simt::KernelProgram> = cell.workload.program();
    retry_with_policy(retry, cell.key.lo, || {
        let mut sim = GpuSimulator::new(cell.cfg.clone(), Arc::clone(&program), cell.mode);
        sim.set_deadline_seconds(deadline_seconds);
        match cell.engine {
            EngineChoice::Event => sim.run(cell.max_cycles),
            EngineChoice::Stepped => sim.run_stepped(cell.max_cycles),
            EngineChoice::Parallel { threads, epoch } => {
                sim.run_parallel_with(cell.max_cycles, threads, epoch)
            }
        }
    })
}

/// Runs (or resumes — the two are the same operation) a sweep over the
/// store at `store_dir`.
///
/// Cells already committed are served as cache hits; the rest execute on
/// a bounded worker pool and commit one by one, so progress is durable at
/// cell granularity. The returned summary's `store_digest` is the
/// fixpoint check: any two runs of the same spec over any store history
/// end on the same digest.
///
/// # Errors
///
/// [`SweepError::SpecInvalid`] for a bad spec, [`SweepError::Io`] on
/// filesystem failure, [`SweepError::InjectedCrash`] when an armed crash
/// boundary fires (the store is left exactly as a SIGKILL at that journal
/// offset would leave it). Individual cell *failures* do not error the
/// sweep; they are reported in the summary.
pub fn run_sweep(
    spec: &SweepSpec,
    store_dir: &std::path::Path,
    opts: &SweepOptions,
) -> Result<SweepSummary, SweepError> {
    let cells = spec.expand()?;
    let mut store = ResultStore::open(store_dir)?;
    store.save_spec(spec)?;
    store.set_crash_after(opts.crash_after_journal_bytes);
    store.journal_event(JournalEvent::Opened, &spec.name)?;

    // Admission: decide hit/miss for every cell up front (serial — the
    // store has one writer, and lookups are cheap next to simulations).
    let mut outcomes: Vec<CellOutcome> = cells
        .iter()
        .map(|c| CellOutcome {
            key: c.key.to_string(),
            label: c.label(),
            status: CellStatus::CacheHit,
            attempts: 0,
            result_digest: None,
            detail: String::new(),
        })
        .collect();
    let mut misses: Vec<usize> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        match store.lookup(cell.key)? {
            Lookup::Hit(env) => {
                outcomes[i].result_digest = Some(env.result_digest);
                if opts.progress {
                    eprintln!("cell {} {} cache-hit", outcomes[i].key, outcomes[i].label);
                }
            }
            Lookup::Miss { was_committed } => {
                outcomes[i].status = if was_committed {
                    CellStatus::Recomputed
                } else {
                    CellStatus::Computed
                };
                misses.push(i);
            }
        }
    }

    // Write-ahead: journal every cell we are about to run, before any
    // worker starts, so a post-crash reader can tell in-flight cells from
    // never-attempted ones.
    for &i in &misses {
        store.journal_cell_event(JournalEvent::Begin, cells[i].key, "")?;
    }

    // Execution: workers simulate, the coordinator commits.
    let workers = if opts.workers == 0 {
        thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    } else {
        opts.workers
    }
    .min(misses.len().max(1));
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, u32, Result<SimReport, SimError>)>();
    let mut crash: Option<SweepError> = None;

    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, stop) = (&next, &stop);
            let (cells, misses) = (&cells, &misses);
            let retry = &opts.retry;
            let deadline = spec.deadline_seconds;
            scope.spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let slot = next.fetch_add(1, Ordering::Relaxed);
                if slot >= misses.len() {
                    break;
                }
                let idx = misses[slot];
                let (attempts, out) = execute_cell(&cells[idx], deadline, retry);
                if tx.send((idx, attempts, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        for (idx, attempts, out) in rx {
            if crash.is_some() {
                continue; // crashed: drain without committing, as a dead process would
            }
            outcomes[idx].attempts = attempts;
            let result = match out {
                Ok(report) => store.commit(cells[idx].key, &outcomes[idx].label, attempts, &report),
                Err(error) => {
                    let detail = error.to_string();
                    outcomes[idx].status = CellStatus::Failed;
                    outcomes[idx].detail = detail.clone();
                    store
                        .journal_cell_event(JournalEvent::Failed, cells[idx].key, &detail)
                        .map(|()| String::new())
                }
            };
            match result {
                Ok(digest) => {
                    if outcomes[idx].status != CellStatus::Failed {
                        outcomes[idx].result_digest = Some(digest);
                    }
                    if opts.progress {
                        eprintln!(
                            "cell {} {} {} (attempts {})",
                            outcomes[idx].key,
                            outcomes[idx].label,
                            match outcomes[idx].status {
                                CellStatus::Failed => "FAILED",
                                CellStatus::Recomputed => "recomputed",
                                _ => "computed",
                            },
                            attempts
                        );
                    }
                }
                Err(e) => {
                    stop.store(true, Ordering::Relaxed);
                    crash = Some(e);
                }
            }
        }
    });

    if let Some(e) = crash {
        return Err(e);
    }

    let keys: Vec<_> = cells.iter().map(|c| c.key).collect();
    let store_digest = store.store_digest(&keys)?;
    store.journal_event(JournalEvent::Done, &store_digest)?;

    let mut summary = SweepSummary {
        name: spec.name.clone(),
        cells: cells.len(),
        cache_hits: 0,
        computed: 0,
        recomputed: 0,
        failed: 0,
        attempts_total: 0,
        store_digest,
        outcomes,
    };
    for o in &summary.outcomes {
        summary.attempts_total += u64::from(o.attempts);
        match o.status {
            CellStatus::CacheHit => summary.cache_hits += 1,
            CellStatus::Computed => summary.computed += 1,
            CellStatus::Recomputed => summary.recomputed += 1,
            CellStatus::Failed => summary.failed += 1,
        }
    }
    Ok(summary)
}
