//! Property tests for the foundational types.

use gpumem_types::{Histogram, LatencyStats, SimQueue, SimRng};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum QueueOp {
    Push(u32),
    Pop,
    Observe,
    RemoveFirstEven,
}

fn queue_ops() -> impl Strategy<Value = Vec<QueueOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..1000).prop_map(QueueOp::Push),
            Just(QueueOp::Pop),
            Just(QueueOp::Observe),
            Just(QueueOp::RemoveFirstEven),
        ],
        0..200,
    )
}

proptest! {
    /// SimQueue behaves exactly like a capacity-checked VecDeque.
    #[test]
    fn queue_matches_model(cap in 1usize..16, ops in queue_ops()) {
        let mut q = SimQueue::new("prop", cap);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        for op in ops {
            match op {
                QueueOp::Push(v) => {
                    let expect_ok = model.len() < cap;
                    let got = q.push(v);
                    prop_assert_eq!(expect_ok, got.is_ok());
                    if expect_ok {
                        model.push_back(v);
                    }
                }
                QueueOp::Pop => {
                    prop_assert_eq!(q.pop(), model.pop_front());
                }
                QueueOp::Observe => q.observe(),
                QueueOp::RemoveFirstEven => {
                    let got = q.remove_first_where(|x| x % 2 == 0);
                    let expect = model
                        .iter()
                        .position(|x| x % 2 == 0)
                        .and_then(|i| model.remove(i));
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.front(), model.front());
            prop_assert_eq!(q.is_full(), model.len() >= cap);
        }
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        let expected: Vec<u32> = model.into_iter().collect();
        prop_assert_eq!(drained, expected);
    }

    /// Occupancy statistics obey full ≤ nonempty ≤ ticks and the mean is
    /// bounded by the capacity.
    #[test]
    fn queue_stats_invariants(cap in 1usize..8, ops in queue_ops()) {
        let mut q = SimQueue::new("prop", cap);
        for op in ops {
            match op {
                QueueOp::Push(v) => { let _ = q.push(v); }
                QueueOp::Pop => { q.pop(); }
                QueueOp::Observe => q.observe(),
                QueueOp::RemoveFirstEven => { q.remove_first_where(|x| x % 2 == 0); }
            }
        }
        let s = q.stats();
        prop_assert!(s.ticks_full <= s.ticks_nonempty);
        prop_assert!(s.ticks_nonempty <= s.ticks);
        prop_assert!(s.mean_occupancy() <= cap as f64);
        prop_assert!(s.pops <= s.pushes);
        let f = s.full_fraction_of_usage();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// Histogram never loses samples and quantiles are monotone.
    #[test]
    fn histogram_conserves_samples(
        width in 1u64..100,
        buckets in 1usize..20,
        samples in prop::collection::vec(0u64..10_000, 0..200),
    ) {
        let mut h = Histogram::new(width, buckets);
        for &s in &samples {
            h.record(s);
        }
        let mut total = h.overflow();
        for i in 0..h.num_buckets() {
            total += h.bucket_count(i);
        }
        prop_assert_eq!(total, samples.len() as u64);
        if !samples.is_empty() {
            let q50 = h.quantile_upper_bound(0.5).unwrap();
            let q90 = h.quantile_upper_bound(0.9).unwrap();
            prop_assert!(q50 <= q90);
        }
    }

    /// LatencyStats mean lies between min and max; merging equals pooling.
    #[test]
    fn latency_merge_equals_pooling(
        a in prop::collection::vec(0u64..100_000, 0..50),
        b in prop::collection::vec(0u64..100_000, 0..50),
    ) {
        let mut sa = LatencyStats::new();
        for &x in &a { sa.record(x); }
        let mut sb = LatencyStats::new();
        for &x in &b { sb.record(x); }
        let mut merged = sa;
        merged.merge(&sb);

        let mut pooled = LatencyStats::new();
        for &x in a.iter().chain(&b) { pooled.record(x); }
        prop_assert_eq!(merged.count(), pooled.count());
        prop_assert_eq!(merged.sum(), pooled.sum());
        prop_assert_eq!(merged.min(), pooled.min());
        prop_assert_eq!(merged.max(), pooled.max());
        if merged.count() > 0 {
            prop_assert!(merged.min().unwrap() as f64 <= merged.mean());
            prop_assert!(merged.mean() <= merged.max().unwrap() as f64);
        }
    }

    /// The RNG is deterministic per seed, fork streams are stable, and
    /// gen_range respects bounds.
    #[test]
    fn rng_properties(seed in any::<u64>(), stream in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut f1 = SimRng::new(seed).fork(stream);
        let mut f2 = SimRng::new(seed).fork(stream);
        prop_assert_eq!(f1.next_u64(), f2.next_u64());
        for _ in 0..32 {
            prop_assert!(a.gen_range(bound) < bound);
        }
    }
}
