//! The memory-request descriptor that flows through the hierarchy.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{CoreId, Cycle, LineAddr, PartitionId};

/// Unique identifier of a [`MemFetch`], assigned at creation and stable for
/// the fetch's whole lifetime (including merges recorded against it).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FetchId(u64);

impl FetchId {
    /// Creates a fetch id from a raw sequence number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        FetchId(raw)
    }

    /// Raw sequence number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FetchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Whether a memory access reads or writes global memory.
///
/// The simulated L1 data cache is write-through / write-no-allocate (the
/// GPGPU-Sim Fermi default), so stores never occupy L1 lines but do consume
/// miss-queue, interconnect, L2 and DRAM bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A global-memory load. Produces a data response back to the core.
    Load,
    /// A global-memory store. Acknowledged implicitly; no data response
    /// travels back up the hierarchy.
    Store,
}

impl AccessKind {
    /// True for [`AccessKind::Load`].
    #[inline]
    pub const fn is_load(self) -> bool {
        matches!(self, AccessKind::Load)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => write!(f, "load"),
            AccessKind::Store => write!(f, "store"),
        }
    }
}

/// Timestamps collected as a fetch traverses the hierarchy.
///
/// All fields start as `None` and are stamped exactly once by the component
/// that owns the transition. The latency statistics of the Section II
/// experiment (`gpumem::experiments::latency_tolerance`) and the loaded
/// round-trip measurements are derived from these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchTimeline {
    /// The core issued the warp memory instruction into the LSU.
    pub issued: Option<Cycle>,
    /// The access missed in L1 and a fill request was created.
    pub l1_miss: Option<Cycle>,
    /// The request packet finished injecting into the interconnect.
    pub icnt_inject: Option<Cycle>,
    /// The request reached the L2 partition's access queue.
    pub l2_arrive: Option<Cycle>,
    /// The L2 popped the request out of its access queue and looked it up.
    pub l2_serve: Option<Cycle>,
    /// The request missed in L2 and entered the DRAM path.
    pub dram_arrive: Option<Cycle>,
    /// The DRAM scheduler selected the request for service (FR-FCFS pop).
    pub dram_issue: Option<Cycle>,
    /// The DRAM burst completed and the data left the channel.
    pub dram_data: Option<Cycle>,
    /// The response packet was injected into the response interconnect.
    pub resp_inject: Option<Cycle>,
    /// The response was delivered back to the L1 / core.
    pub returned: Option<Cycle>,
}

impl FetchTimeline {
    /// Latency from L1 miss to response delivery, if both ends were stamped.
    ///
    /// This is the quantity on the x-axis of the paper's Fig. 1: the L1 miss
    /// latency.
    pub fn l1_miss_latency(&self) -> Option<u64> {
        match (self.l1_miss, self.returned) {
            (Some(miss), Some(ret)) => Some(ret.since(miss)),
            _ => None,
        }
    }
}

/// A memory request at cache-line granularity.
///
/// One `MemFetch` is created per coalesced access (one per distinct cache
/// line touched by a warp memory instruction). It travels by value through
/// the L1, interconnect, L2 and DRAM models and, for loads, returns to the
/// issuing core where it wakes the warps recorded against its line.
///
/// # Example
///
/// ```
/// use gpumem_types::{AccessKind, CoreId, FetchId, LineAddr, MemFetch};
///
/// let f = MemFetch::new(FetchId::new(0), AccessKind::Load, LineAddr::new(7), CoreId::new(1));
/// assert!(f.kind.is_load());
/// assert_eq!(f.line, LineAddr::new(7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemFetch {
    /// Unique id.
    pub id: FetchId,
    /// Load or store.
    pub kind: AccessKind,
    /// The cache line addressed.
    pub line: LineAddr,
    /// The core that issued the access.
    pub core: CoreId,
    /// The memory partition servicing the line. Assigned when the fetch
    /// leaves the core (address-interleaved across partitions).
    pub partition: Option<PartitionId>,
    /// Set when an L2 writeback created this fetch rather than a core; such
    /// fetches terminate at DRAM and produce no response.
    pub is_writeback: bool,
    /// Hardware warp slot (on `core`) that issued the access; used to route
    /// the completion back to the right warp's scoreboard.
    pub warp_slot: u32,
    /// Per-warp tag identifying which load *instruction* this coalesced
    /// access belongs to (a gather spawns many accesses sharing one tag).
    pub load_tag: u32,
    /// Timestamps.
    pub timeline: FetchTimeline,
}

impl MemFetch {
    /// Size in bytes of a request/response control header on the
    /// interconnect (GPGPU-Sim's default).
    pub const CONTROL_BYTES: u64 = 8;

    /// Creates a new fetch originating at `core`.
    pub fn new(id: FetchId, kind: AccessKind, line: LineAddr, core: CoreId) -> Self {
        MemFetch {
            id,
            kind,
            line,
            core,
            partition: None,
            is_writeback: false,
            warp_slot: 0,
            load_tag: 0,
            timeline: FetchTimeline::default(),
        }
    }

    /// Creates a writeback (dirty-eviction) fetch from L2 towards DRAM.
    pub fn new_writeback(id: FetchId, line: LineAddr, partition: PartitionId) -> Self {
        MemFetch {
            id,
            kind: AccessKind::Store,
            line,
            core: CoreId::new(0),
            partition: Some(partition),
            is_writeback: true,
            warp_slot: 0,
            load_tag: 0,
            timeline: FetchTimeline::default(),
        }
    }

    /// Size in bytes of the *request* packet for this fetch on the
    /// core→memory interconnect: control only for loads, control + data for
    /// stores.
    pub fn request_bytes(&self, line_bytes: u64) -> u64 {
        match self.kind {
            AccessKind::Load => Self::CONTROL_BYTES,
            AccessKind::Store => Self::CONTROL_BYTES + line_bytes,
        }
    }

    /// Size in bytes of the *response* packet on the memory→core
    /// interconnect. Stores produce no response.
    pub fn response_bytes(&self, line_bytes: u64) -> Option<u64> {
        match self.kind {
            AccessKind::Load => Some(Self::CONTROL_BYTES + line_bytes),
            AccessKind::Store => None,
        }
    }
}

impl fmt::Display for MemFetch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{} {} from {}]",
            self.id, self.kind, self.line, self.core
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load() -> MemFetch {
        MemFetch::new(
            FetchId::new(1),
            AccessKind::Load,
            LineAddr::new(2),
            CoreId::new(0),
        )
    }

    #[test]
    fn packet_sizes() {
        let f = load();
        assert_eq!(f.request_bytes(128), 8);
        assert_eq!(f.response_bytes(128), Some(136));

        let s = MemFetch::new(
            FetchId::new(2),
            AccessKind::Store,
            LineAddr::new(2),
            CoreId::new(0),
        );
        assert_eq!(s.request_bytes(128), 136);
        assert_eq!(s.response_bytes(128), None);
    }

    #[test]
    fn timeline_latency() {
        let mut f = load();
        assert_eq!(f.timeline.l1_miss_latency(), None);
        f.timeline.l1_miss = Some(Cycle::new(100));
        f.timeline.returned = Some(Cycle::new(340));
        assert_eq!(f.timeline.l1_miss_latency(), Some(240));
    }

    #[test]
    fn writeback_has_no_response() {
        let wb = MemFetch::new_writeback(FetchId::new(3), LineAddr::new(9), PartitionId::new(4));
        assert!(wb.is_writeback);
        assert_eq!(wb.response_bytes(128), None);
        assert_eq!(wb.partition, Some(PartitionId::new(4)));
    }

    #[test]
    fn display_is_informative() {
        let s = load().to_string();
        assert!(s.contains("load"));
        assert!(s.contains("core0"));
    }
}
