//! A simple fixed-bucket histogram used for latency distributions.

use serde::{Deserialize, Serialize};

/// A histogram with uniform buckets of width `bucket_width`, plus an
/// overflow bucket.
///
/// Used to record per-fetch L1-miss latencies so the experiments can report
/// distribution shape, not just means.
///
/// # Example
///
/// ```
/// use gpumem_types::Histogram;
///
/// let mut h = Histogram::new(100, 8);
/// h.record(40);
/// h.record(250);
/// h.record(10_000); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(2), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` uniform buckets of `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(buckets > 0, "bucket count must be positive");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples in bucket `idx` (covering `[idx*w, (idx+1)*w)`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Number of buckets (excluding overflow).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Width of each bucket.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The smallest value `v` such that at least `q` (0..=1) of samples are
    /// `< v + bucket_width`, i.e. an upper-bound quantile estimate at bucket
    /// resolution. Returns `None` if empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as u64 + 1) * self.bucket_width);
            }
        }
        Some(u64::MAX)
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bucket width or count.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "bucket width mismatch"
        );
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

/// A histogram with power-of-two bucket boundaries, used by the fetch-trace
/// latency breakdown where stage durations span five orders of magnitude.
///
/// Bucket `i` covers values `v` with `floor(log2(v)) == i` (value 0 lands in
/// bucket 0 alongside 1). The bucket vector grows on demand, so an empty or
/// low-latency histogram stays tiny; [`merge`](Log2Histogram::merge) is an
/// element-wise sum and therefore commutative and associative — merging
/// per-shard histograms in any order yields the same result, which is what
/// makes the traced reports bit-identical across engines.
///
/// # Example
///
/// ```
/// use gpumem_types::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// h.record(1);
/// h.record(300); // floor(log2(300)) == 8
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(8), 1);
/// assert_eq!(h.min(), Some(1));
/// assert_eq!(h.max(), Some(300));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Log2Histogram {
    /// Creates an empty histogram. Allocation-free until the first sample.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for `value`: `floor(log2(value))`, with 0 mapped to
    /// bucket 0.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Lower bound of bucket `idx` (inclusive).
    #[inline]
    pub fn bucket_floor(idx: usize) -> u64 {
        1u64 << idx.min(63)
    }

    /// Records one sample. Count and sum saturate instead of wrapping.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_of(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Samples in bucket `idx`; zero for buckets past the populated range.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets.get(idx).copied().unwrap_or(0)
    }

    /// Number of populated buckets (highest occupied index + 1).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Merges another histogram into this one (element-wise sum; the two
    /// need not have the same populated range).
    pub fn merge(&mut self, other: &Log2Histogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        let mut h = Histogram::new(10, 3);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(29);
        h.record(30);
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(10, 10);
        for v in [5, 15, 25, 35] {
            h.record(v);
        }
        assert_eq!(h.quantile_upper_bound(0.5), Some(20));
        assert_eq!(h.quantile_upper_bound(1.0), Some(40));
        assert_eq!(Histogram::new(10, 1).quantile_upper_bound(0.5), None);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new(10, 2);
        a.record(5);
        let mut b = Histogram::new(10, 2);
        b.record(15);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_count(1), 1);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn merge_rejects_mismatch() {
        let mut a = Histogram::new(10, 2);
        let b = Histogram::new(20, 2);
        a.merge(&b);
    }

    #[test]
    fn log2_bucket_mapping() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 0);
        assert_eq!(Log2Histogram::bucket_of(2), 1);
        assert_eq!(Log2Histogram::bucket_of(3), 1);
        assert_eq!(Log2Histogram::bucket_of(4), 2);
        assert_eq!(Log2Histogram::bucket_of(1023), 9);
        assert_eq!(Log2Histogram::bucket_of(1024), 10);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 63);
        assert_eq!(Log2Histogram::bucket_floor(3), 8);
    }

    #[test]
    fn log2_record_and_stats() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        h.record(0);
        h.record(7);
        h.record(900);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 907);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(900));
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.bucket_count(9), 1);
        assert_eq!(h.bucket_count(40), 0, "unpopulated bucket reads zero");
    }

    #[test]
    fn log2_merge_is_commutative() {
        let mut a = Log2Histogram::new();
        a.record(3);
        a.record(5_000);
        let mut b = Log2Histogram::new();
        b.record(1);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 3);
        assert_eq!(ab.min(), Some(1));
        assert_eq!(ab.max(), Some(5_000));
        // Merging an empty histogram is the identity.
        let mut id = a.clone();
        id.merge(&Log2Histogram::new());
        assert_eq!(id, a);
    }
}
