//! A simple fixed-bucket histogram used for latency distributions.

use serde::{Deserialize, Serialize};

/// A histogram with uniform buckets of width `bucket_width`, plus an
/// overflow bucket.
///
/// Used to record per-fetch L1-miss latencies so the experiments can report
/// distribution shape, not just means.
///
/// # Example
///
/// ```
/// use gpumem_types::Histogram;
///
/// let mut h = Histogram::new(100, 8);
/// h.record(40);
/// h.record(250);
/// h.record(10_000); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(2), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` uniform buckets of `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(buckets > 0, "bucket count must be positive");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples in bucket `idx` (covering `[idx*w, (idx+1)*w)`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Number of buckets (excluding overflow).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Width of each bucket.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The smallest value `v` such that at least `q` (0..=1) of samples are
    /// `< v + bucket_width`, i.e. an upper-bound quantile estimate at bucket
    /// resolution. Returns `None` if empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as u64 + 1) * self.bucket_width);
            }
        }
        Some(u64::MAX)
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bucket width or count.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "bucket width mismatch"
        );
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        let mut h = Histogram::new(10, 3);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(29);
        h.record(30);
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(10, 10);
        for v in [5, 15, 25, 35] {
            h.record(v);
        }
        assert_eq!(h.quantile_upper_bound(0.5), Some(20));
        assert_eq!(h.quantile_upper_bound(1.0), Some(40));
        assert_eq!(Histogram::new(10, 1).quantile_upper_bound(0.5), None);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new(10, 2);
        a.record(5);
        let mut b = Histogram::new(10, 2);
        b.record(15);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_count(1), 1);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn merge_rejects_mismatch() {
        let mut a = Histogram::new(10, 2);
        let b = Histogram::new(20, 2);
        a.merge(&b);
    }
}
