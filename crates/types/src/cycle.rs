//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in core clock cycles.
///
/// The whole simulator runs in a single clock domain (see `DESIGN.md` for the
/// substitution rationale); DRAM timing parameters are expressed in core
/// cycles.
///
/// # Example
///
/// ```
/// use gpumem_types::Cycle;
///
/// let start = Cycle::new(100);
/// let end = start + 20;
/// assert_eq!(end - start, 20);
/// assert!(end > start);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycle(u64);

impl Cycle {
    /// The beginning of time.
    pub const ZERO: Cycle = Cycle(0);

    /// A cycle value far beyond any reachable simulation horizon, usable as
    /// an "never" sentinel for `ready_at`-style fields.
    pub const NEVER: Cycle = Cycle(u64::MAX);

    /// Creates a cycle from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: the number of cycles elapsed since `earlier`,
    /// or zero if `earlier` is in the future.
    #[inline]
    pub const fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The cycle immediately after this one.
    #[inline]
    pub const fn next(self) -> Cycle {
        Cycle(self.0 + 1)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "cycle subtraction underflow");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let c = Cycle::new(10);
        assert_eq!((c + 5).raw(), 15);
        assert_eq!(c + 5 - c, 5);
        let mut m = c;
        m += 7;
        assert_eq!(m.raw(), 17);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Cycle::new(5).since(Cycle::new(10)), 0);
        assert_eq!(Cycle::new(10).since(Cycle::new(5)), 5);
    }

    #[test]
    fn ordering_and_sentinels() {
        assert!(Cycle::ZERO < Cycle::NEVER);
        assert_eq!(Cycle::ZERO.next().raw(), 1);
        assert_eq!(Cycle::default(), Cycle::ZERO);
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Cycle::from(42u64).to_string(), "42");
    }
}
