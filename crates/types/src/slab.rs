//! A slab allocator handing out small copyable handles.
//!
//! The hierarchy components (L1, L2 partitions) park [`MemFetch`] bodies
//! here while a miss is outstanding and pass 4-byte [`SlotId`] handles
//! through their MSHRs and ready-heaps instead of cloning the 100+-byte
//! struct. Slots are recycled through a free list, so steady-state
//! operation performs no allocation at all.
//!
//! [`MemFetch`]: crate::MemFetch

use std::fmt;

/// Handle to an occupied [`Slab`] slot.
///
/// Deliberately *not* `Serialize`: slot numbers depend on allocation
/// history and must never leak into reports or golden files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(u32);

impl SlotId {
    /// Raw slot index (for diagnostics only).
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// A grow-on-demand slab with free-list slot reuse.
///
/// # Example
///
/// ```
/// use gpumem_types::Slab;
///
/// let mut slab: Slab<&str> = Slab::with_capacity(2);
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab[a], "alpha");
/// assert_eq!(slab.take(b), "beta");
/// assert_eq!(slab.len(), 1);
/// let c = slab.insert("gamma"); // reuses beta's slot
/// assert_eq!(b.raw(), c.raw());
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab with room for `capacity` values before reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX` slots.
    pub fn insert(&mut self, value: T) -> SlotId {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            debug_assert!(self.slots[idx as usize].is_none(), "free slot occupied");
            self.slots[idx as usize] = Some(value);
            SlotId(idx)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
            self.slots.push(Some(value));
            SlotId(idx)
        }
    }

    /// Removes and returns the value behind `id`, recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` is vacant (double-take) — that is always a
    /// bookkeeping bug in the owning component.
    pub fn take(&mut self, id: SlotId) -> T {
        let value = self.slots[id.0 as usize]
            .take()
            .expect("take() of vacant slab slot");
        self.free.push(id.0);
        self.len -= 1;
        value
    }

    /// Shared access to the value behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is vacant.
    pub fn get(&self, id: SlotId) -> &T {
        self.slots[id.0 as usize]
            .as_ref()
            .expect("get() of vacant slab slot")
    }

    /// Mutable access to the value behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is vacant.
    pub fn get_mut(&mut self, id: SlotId) -> &mut T {
        self.slots[id.0 as usize]
            .as_mut()
            .expect("get_mut() of vacant slab slot")
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> std::ops::Index<SlotId> for Slab<T> {
    type Output = T;

    fn index(&self, id: SlotId) -> &T {
        self.get(id)
    }
}

impl<T> std::ops::IndexMut<SlotId> for Slab<T> {
    fn index_mut(&mut self, id: SlotId) -> &mut T {
        self.get_mut(id)
    }
}

/// The slab specialization the memory hierarchy uses: parked
/// [`MemFetch`](crate::MemFetch) bodies addressed by [`SlotId`] handles.
pub type FetchArena = Slab<crate::MemFetch>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let mut s: Slab<u64> = Slab::new();
        let a = s.insert(10);
        let b = s.insert(20);
        assert_eq!(s.len(), 2);
        assert_eq!(s[a], 10);
        *s.get_mut(b) = 21;
        assert_eq!(s.take(b), 21);
        assert_eq!(s.take(a), 10);
        assert!(s.is_empty());
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut s: Slab<char> = Slab::with_capacity(4);
        let a = s.insert('a');
        let b = s.insert('b');
        s.take(a);
        s.take(b);
        // LIFO free list: b's slot comes back first.
        assert_eq!(s.insert('c').raw(), b.raw());
        assert_eq!(s.insert('d').raw(), a.raw());
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "vacant slab slot")]
    fn double_take_panics() {
        let mut s: Slab<u8> = Slab::new();
        let a = s.insert(1);
        s.take(a);
        s.take(a);
    }

    #[test]
    fn interleaved_churn_keeps_len_consistent() {
        let mut s: Slab<usize> = Slab::new();
        let mut live = Vec::new();
        for i in 0..100 {
            live.push((s.insert(i), i));
            if i % 3 == 0 {
                let (id, v) = live.remove(live.len() / 2);
                assert_eq!(s.take(id), v);
            }
        }
        assert_eq!(s.len(), live.len());
        for (id, v) in live {
            assert_eq!(s.take(id), v);
        }
        assert!(s.is_empty());
    }
}
