//! Bounded FIFO queues instrumented with the occupancy statistics the
//! paper's Section III congestion measurement is built on.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Error returned by [`SimQueue::push`] when the queue is at capacity.
///
/// The rejected element is handed back so the caller can retry next cycle —
/// in the timing model a full queue *must* exert backpressure rather than
/// drop or grow, because that backpressure is exactly the congestion
/// mechanism under study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushError<T>(pub T);

impl<T> PushError<T> {
    /// Recovers the element that could not be enqueued.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queue full")
    }
}

impl<T: fmt::Debug> std::error::Error for PushError<T> {}

/// Occupancy statistics accumulated by a [`SimQueue`].
///
/// The paper quantifies congestion as *"the L2 access queues are full for
/// 46% of their usage lifetime"*. Usage lifetime is the number of observed
/// cycles in which the queue was non-empty; the headline metric is
/// [`QueueStats::full_fraction_of_usage`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Total cycles observed (one [`SimQueue::observe`] call each).
    pub ticks: u64,
    /// Observed cycles in which the queue held at least one element.
    pub ticks_nonempty: u64,
    /// Observed cycles in which the queue was at capacity.
    pub ticks_full: u64,
    /// Sum of the occupancy over all observed cycles (for mean occupancy).
    pub occupancy_sum: u64,
    /// Total elements ever enqueued.
    pub pushes: u64,
    /// Total elements ever dequeued.
    pub pops: u64,
    /// Push attempts rejected because the queue was full.
    pub rejected: u64,
}

impl QueueStats {
    /// Fraction of the queue's *usage lifetime* (non-empty cycles) in which
    /// it was full — the paper's Section III congestion metric.
    ///
    /// Returns 0.0 when the queue was never used.
    pub fn full_fraction_of_usage(&self) -> f64 {
        if self.ticks_nonempty == 0 {
            0.0
        } else {
            self.ticks_full as f64 / self.ticks_nonempty as f64
        }
    }

    /// Fraction of all observed cycles in which the queue was full.
    pub fn full_fraction_of_total(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.ticks_full as f64 / self.ticks as f64
        }
    }

    /// Mean occupancy over all observed cycles.
    pub fn mean_occupancy(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.ticks as f64
        }
    }

    /// Merges another queue's statistics into this one (used to aggregate
    /// the per-partition queues into the paper's averages).
    pub fn merge(&mut self, other: &QueueStats) {
        self.ticks += other.ticks;
        self.ticks_nonempty += other.ticks_nonempty;
        self.ticks_full += other.ticks_full;
        self.occupancy_sum += other.occupancy_sum;
        self.pushes += other.pushes;
        self.pops += other.pops;
        self.rejected += other.rejected;
    }
}

/// A bounded FIFO with per-cycle occupancy instrumentation.
///
/// Every hardware queue in the simulated memory system (L1 miss queue, L2
/// access/miss/response queues, DRAM scheduler queue, interconnect ejection
/// buffers) is a `SimQueue`. The owning component calls
/// [`observe`](SimQueue::observe) exactly once per simulated cycle so that
/// the occupancy statistics are time-weighted.
///
/// Storage is a fixed-capacity ring buffer allocated once at construction:
/// the queue never grows (or reallocates) afterwards, which keeps the
/// per-cycle hot path allocation-free and the memory footprint of a
/// simulator instance exactly what its configuration implies.
///
/// # Example
///
/// ```
/// use gpumem_types::SimQueue;
///
/// let mut q = SimQueue::new("dram_sched", 2);
/// q.push('a').unwrap();
/// q.push('b').unwrap();
/// assert!(q.push('c').is_err()); // full: backpressure
/// q.observe();
/// assert_eq!(q.stats().ticks_full, 1);
/// assert_eq!(q.pop(), Some('a'));
/// ```
#[derive(Debug, Clone)]
pub struct SimQueue<T> {
    name: &'static str,
    /// Ring storage; `slots.len()` is the fixed capacity. A slot is `Some`
    /// exactly when it holds a queued element.
    slots: Box<[Option<T>]>,
    /// Index of the head element (meaningless while `len == 0`).
    head: usize,
    /// Number of queued elements.
    len: usize,
    stats: QueueStats,
}

/// Alias spelling out the central property of [`SimQueue`]: bounded,
/// preallocated, backpressuring. New code modelling a hardware queue should
/// prefer this name.
pub type BoundedQueue<T> = SimQueue<T>;

impl<T> SimQueue<T> {
    /// Creates an empty queue holding at most `capacity` elements. The
    /// backing ring buffer is allocated here, once; no later operation
    /// allocates.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        SimQueue {
            name,
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
            stats: QueueStats::default(),
        }
    }

    /// The queue's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the queue holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.len >= self.slots.len()
    }

    /// Remaining free slots.
    pub fn free(&self) -> usize {
        self.slots.len() - self.len
    }

    /// Physical slot index of logical position `pos` (0 = head; `pos` may
    /// equal the capacity, wrapping a full circle back to the head).
    #[inline]
    fn slot_of(&self, pos: usize) -> usize {
        debug_assert!(pos <= self.slots.len());
        let cap = self.slots.len();
        let s = self.head + pos;
        if s >= cap {
            s - cap
        } else {
            s
        }
    }

    /// Enqueues `item` at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] carrying `item` back if the queue is full; the
    /// rejection is also counted in [`QueueStats::rejected`].
    pub fn push(&mut self, item: T) -> Result<(), PushError<T>> {
        if self.is_full() {
            self.stats.rejected += 1;
            Err(PushError(item))
        } else {
            let tail = self.slot_of(self.len);
            debug_assert!(self.slots[tail].is_none(), "tail slot must be vacant");
            self.slots[tail] = Some(item);
            self.len += 1;
            self.stats.pushes += 1;
            Ok(())
        }
    }

    /// Dequeues from the head.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let item = self.slots[self.head].take();
        debug_assert!(item.is_some(), "head slot must be occupied");
        self.head = self.slot_of(1);
        self.len -= 1;
        self.stats.pops += 1;
        item
    }

    /// Peeks at the head without removing it.
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.slots[self.head].as_ref()
        }
    }

    /// Mutable peek at the head.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        if self.len == 0 {
            None
        } else {
            self.slots[self.head].as_mut()
        }
    }

    /// Iterates over queued elements from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        (0..self.len).map(|pos| {
            self.slots[self.slot_of(pos)]
                .as_ref()
                .expect("queued slot is occupied")
        })
    }

    /// Removes and returns the first (oldest) element matching `pred`,
    /// leaving the relative order of the others intact.
    ///
    /// This is the primitive behind out-of-order service policies such as
    /// the DRAM controller's FR-FCFS scheduler, which prefers row-hit
    /// requests over strict FIFO order.
    pub fn remove_first_where<F>(&mut self, mut pred: F) -> Option<T>
    where
        F: FnMut(&T) -> bool,
    {
        let pos = (0..self.len).find(|&pos| {
            pred(
                self.slots[self.slot_of(pos)]
                    .as_ref()
                    .expect("queued slot is occupied"),
            )
        })?;
        let item = self.slots[self.slot_of(pos)].take();
        // Close the gap by shifting the younger elements towards the head.
        for p in pos + 1..self.len {
            let from = self.slot_of(p);
            let to = self.slot_of(p - 1);
            self.slots[to] = self.slots[from].take();
        }
        self.len -= 1;
        self.stats.pops += 1;
        item
    }

    /// Records this cycle's occupancy. Call exactly once per simulated
    /// cycle.
    pub fn observe(&mut self) {
        self.stats.ticks += 1;
        let len = self.len as u64;
        self.stats.occupancy_sum += len;
        if len > 0 {
            self.stats.ticks_nonempty += 1;
        }
        if self.is_full() {
            self.stats.ticks_full += 1;
        }
    }

    /// Records `cycles` consecutive observations during which the queue's
    /// contents are known not to change (used by event-horizon skipping to
    /// fast-forward idle stretches). Equivalent to calling
    /// [`observe`](SimQueue::observe) `cycles` times.
    pub fn observe_many(&mut self, cycles: u64) {
        self.stats.ticks += cycles;
        let len = self.len as u64;
        self.stats.occupancy_sum += len * cycles;
        if len > 0 {
            self.stats.ticks_nonempty += cycles;
        }
        if self.is_full() {
            self.stats.ticks_full += cycles;
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SimQueue::<u8>::new("bad", 0);
    }

    #[test]
    fn fifo_order() {
        let mut q = SimQueue::new("t", 4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn backpressure_returns_item() {
        let mut q = SimQueue::new("t", 1);
        q.push("x").unwrap();
        let err = q.push("y").unwrap_err();
        assert_eq!(err.into_inner(), "y");
        assert_eq!(q.stats().rejected, 1);
    }

    #[test]
    fn occupancy_accounting() {
        let mut q = SimQueue::new("t", 2);
        q.observe(); // empty
        q.push(1).unwrap();
        q.observe(); // half
        q.push(2).unwrap();
        q.observe(); // full
        q.observe(); // full again

        let s = q.stats();
        assert_eq!(s.ticks, 4);
        assert_eq!(s.ticks_nonempty, 3);
        assert_eq!(s.ticks_full, 2);
        assert_eq!(s.occupancy_sum, 5); // 0 + 1 + 2 + 2
        assert!((s.full_fraction_of_usage() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.full_fraction_of_total() - 0.5).abs() < 1e-12);
        assert!((s.mean_occupancy() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn observe_many_matches_repeated_observe() {
        let mut a = SimQueue::new("a", 2);
        let mut b = SimQueue::new("b", 2);
        for q in [&mut a, &mut b] {
            q.push(1).unwrap();
            q.push(2).unwrap();
        }
        for _ in 0..7 {
            a.observe();
        }
        b.observe_many(7);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn unused_queue_reports_zero() {
        let q = SimQueue::<u8>::new("t", 2);
        assert_eq!(q.stats().full_fraction_of_usage(), 0.0);
        assert_eq!(q.stats().full_fraction_of_total(), 0.0);
        assert_eq!(q.stats().mean_occupancy(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = QueueStats {
            ticks: 10,
            ticks_nonempty: 5,
            ticks_full: 2,
            occupancy_sum: 12,
            pushes: 6,
            pops: 6,
            rejected: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.ticks, 20);
        assert_eq!(a.ticks_full, 4);
        assert_eq!(a.pushes, 12);
    }

    #[test]
    fn remove_first_where_preserves_order() {
        let mut q = SimQueue::new("t", 8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        assert_eq!(q.remove_first_where(|&x| x % 2 == 1), Some(1));
        assert_eq!(q.remove_first_where(|&x| x > 100), None);
        let rest: Vec<_> = q.iter().copied().collect();
        assert_eq!(rest, vec![0, 2, 3, 4, 5]);
        assert_eq!(q.stats().pops, 1);
    }

    #[test]
    fn ring_wraparound_preserves_fifo_without_growth() {
        let mut q: BoundedQueue<u64> = BoundedQueue::new("ring", 4);
        assert_eq!(q.capacity(), 4);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        // Interleave pushes and pops so the head index wraps the physical
        // buffer many times, crossing every alignment of head vs. tail.
        for round in 0..25u64 {
            let pushes = 1 + (round % 4) as usize;
            for _ in 0..pushes {
                if q.push(next_in).is_ok() {
                    next_in += 1;
                }
            }
            assert!(q.len() <= q.capacity(), "queue must never exceed capacity");
            assert_eq!(q.capacity(), 4, "capacity is fixed at construction");
            let pops = 1 + ((round + 1) % 3) as usize;
            for _ in 0..pops {
                if let Some(v) = q.pop() {
                    assert_eq!(v, next_out, "FIFO order across wraparound");
                    next_out += 1;
                }
            }
        }
        while let Some(v) = q.pop() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(
            next_in, next_out,
            "every pushed element popped exactly once"
        );
        assert!(next_in > 2 * q.capacity() as u64, "head wrapped repeatedly");
        assert!(q.is_empty());
    }

    #[test]
    fn remove_first_where_across_wrap_boundary() {
        let mut q = SimQueue::new("t", 4);
        // Advance head to slot 2, then fill so elements straddle the wrap.
        for i in 0..4 {
            q.push(i).unwrap();
        }
        q.pop();
        q.pop();
        q.push(4).unwrap();
        q.push(5).unwrap(); // physical layout: [4, 5, 2, 3], head at 2
        assert_eq!(q.remove_first_where(|&x| x == 4), Some(4));
        let rest: Vec<_> = q.iter().copied().collect();
        assert_eq!(rest, vec![2, 3, 5]);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
        assert!(q.is_empty());
    }

    #[test]
    fn front_and_iter() {
        let mut q = SimQueue::new("t", 3);
        q.push(10).unwrap();
        q.push(20).unwrap();
        assert_eq!(q.front(), Some(&10));
        *q.front_mut().unwrap() += 1;
        let v: Vec<_> = q.iter().copied().collect();
        assert_eq!(v, vec![11, 20]);
        assert_eq!(q.free(), 1);
    }
}
