//! Typed simulation errors, wedge diagnoses and degradation records.
//!
//! The model hot paths (queues, crossbar ports, MSHRs, DRAM) report
//! invariant violations as [`SimError`] values instead of panicking, so a
//! long sweep survives one bad run, a wedged machine produces a structured
//! [`WedgeDiagnosis`] instead of hanging, and a parallel engine that loses
//! a worker can downgrade to the sequential engine and record the
//! [`Degradation`] in its report. The `no-panic-in-model` simlint rule
//! keeps the model crates honest about this contract.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A failed simulation run.
///
/// Every variant names where in the machine the failure was observed and
/// at which cycle, so a failure inside a million-cycle sweep is diagnosable
/// from the error value alone.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The cycle budget expired before the kernel finished — either the
    /// budget was too small or the configuration deadlocked.
    Watchdog {
        /// Cycle at which the run was aborted.
        cycle: u64,
        /// Instructions retired so far (progress indicator).
        instructions: u64,
        /// Human-readable liveness diagnosis.
        detail: String,
    },
    /// The progress watchdog saw no forward progress for a full
    /// no-progress horizon: the machine is wedged, not merely congested.
    Wedged {
        /// Structured diagnosis of the wedge (boxed: it carries the full
        /// per-component occupancy survey).
        diagnosis: Box<WedgeDiagnosis>,
    },
    /// A bounded queue accepted a push its capacity check had excluded.
    QueueOverflow {
        /// Component owning the queue (e.g. `l2_partition`).
        component: &'static str,
        /// The queue's name (e.g. `l2_access`).
        queue: &'static str,
        /// Cycle of the violation.
        cycle: u64,
    },
    /// A crossbar output claimed a packet without an ejection credit.
    CreditUnderflow {
        /// Crossbar the port belongs to.
        component: &'static str,
        /// Output-port index.
        port: usize,
        /// Cycle of the violation.
        cycle: u64,
    },
    /// MSHR bookkeeping lost or duplicated a waiter, or request
    /// conservation failed (a load retired without its response).
    MshrLeak {
        /// Component owning the MSHR table.
        component: &'static str,
        /// Cycle of the violation.
        cycle: u64,
        /// What exactly leaked.
        detail: String,
    },
    /// A port was driven against its protocol (e.g. a store entered a
    /// response-only path).
    PortProtocol {
        /// Component owning the port.
        component: &'static str,
        /// Cycle of the violation.
        cycle: u64,
        /// What the protocol expected vs what happened.
        detail: String,
    },
    /// A parallel worker panicked mid-phase; shard state may be
    /// inconsistent, so the run could not be resumed.
    WorkerPanic {
        /// Cycle the worker died in.
        cycle: u64,
        /// Shard-chunk index of the dead worker.
        chunk: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The per-run wall-clock budget was exceeded (host time, not
    /// simulated time).
    DeadlineExceeded {
        /// Simulated cycle reached when the budget ran out.
        cycle: u64,
        /// The configured budget in seconds.
        budget_seconds: f64,
    },
}

impl SimError {
    /// True when the failure depends on *host* conditions (wall-clock
    /// load, a panicking worker thread) rather than on the simulated
    /// machine. Host-dependent failures are worth retrying — the same
    /// inputs can succeed on a quieter machine or a luckier schedule.
    /// Everything else is bit-reproducible from `(config, workload,
    /// engine)`: a wedge, a queue overflow or an expired cycle budget will
    /// fail the retry identically, so retry policies fail fast on them.
    pub fn is_host_dependent(&self) -> bool {
        matches!(
            self,
            SimError::DeadlineExceeded { .. } | SimError::WorkerPanic { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Watchdog {
                cycle,
                instructions,
                detail,
            } => write!(
                f,
                "watchdog expired at cycle {cycle} ({instructions} instructions retired): {detail}"
            ),
            SimError::Wedged { diagnosis } => write!(f, "{diagnosis}"),
            SimError::QueueOverflow {
                component,
                queue,
                cycle,
            } => write!(
                f,
                "queue overflow in {component}/{queue} at cycle {cycle}: a push its \
                 capacity check had excluded was attempted"
            ),
            SimError::CreditUnderflow {
                component,
                port,
                cycle,
            } => write!(
                f,
                "credit underflow on {component} output {port} at cycle {cycle}: a \
                 packet was claimed without an ejection credit"
            ),
            SimError::MshrLeak {
                component,
                cycle,
                detail,
            } => write!(f, "MSHR leak in {component} at cycle {cycle}: {detail}"),
            SimError::PortProtocol {
                component,
                cycle,
                detail,
            } => write!(
                f,
                "port protocol violation in {component} at cycle {cycle}: {detail}"
            ),
            SimError::WorkerPanic {
                cycle,
                chunk,
                message,
            } => write!(
                f,
                "parallel worker for chunk {chunk} panicked at cycle {cycle}: {message}"
            ),
            SimError::DeadlineExceeded {
                cycle,
                budget_seconds,
            } => write!(
                f,
                "wall-clock budget of {budget_seconds:.1}s exceeded at cycle {cycle}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Occupancy of one component at the moment a wedge was diagnosed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentOccupancy {
    /// Component name (e.g. `l2_access`, `req_xbar`, `dram`).
    pub name: String,
    /// Requests/packets pending inside it.
    pub pending: u64,
}

/// The oldest in-flight fetch visible in the machine's queues when a wedge
/// was diagnosed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OldestFetch {
    /// The fetch's id.
    pub id: u64,
    /// Core that issued it.
    pub core: u32,
    /// Cycle it was issued.
    pub issued_at: u64,
    /// Cycles it has been in flight.
    pub waiting: u64,
}

/// A structured wedge diagnosis: what the watchdog saw when it declared the
/// machine stuck.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WedgeDiagnosis {
    /// Cycle at which the wedge was declared.
    pub cycle: u64,
    /// Last cycle at which any progress counter moved.
    pub last_progress_cycle: u64,
    /// The configured no-progress horizon.
    pub horizon: u64,
    /// Instructions retired in total.
    pub instructions: u64,
    /// Responses delivered to cores in total.
    pub responses_delivered: u64,
    /// Requests injected into the memory system in total.
    pub requests_injected: u64,
    /// CTAs dispatched so far.
    pub ctas_dispatched: u32,
    /// CTAs in the grid.
    pub grid_ctas: u32,
    /// Non-empty components, in pipeline order.
    pub components: Vec<ComponentOccupancy>,
    /// The oldest fetch visible in any queue, if any.
    pub oldest_fetch: Option<OldestFetch>,
    /// Stages that are full or held, in pipeline order — the blocked
    /// component chain the wedge propagates through.
    pub blocked_chain: Vec<String>,
}

impl fmt::Display for WedgeDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "wedged at cycle {}: no progress since cycle {} (horizon {})",
            self.cycle, self.last_progress_cycle, self.horizon
        )?;
        writeln!(
            f,
            "  progress: {} instructions, {} responses delivered, {} requests \
             injected, {}/{} CTAs dispatched",
            self.instructions,
            self.responses_delivered,
            self.requests_injected,
            self.ctas_dispatched,
            self.grid_ctas
        )?;
        if self.blocked_chain.is_empty() {
            writeln!(f, "  blocked chain: (no full or held stage found)")?;
        } else {
            writeln!(f, "  blocked chain: {}", self.blocked_chain.join(" -> "))?;
        }
        match &self.oldest_fetch {
            Some(o) => writeln!(
                f,
                "  oldest in-flight fetch: id {} from core {}, issued at cycle {}, \
                 waiting {} cycles",
                o.id, o.core, o.issued_at, o.waiting
            )?,
            None => writeln!(f, "  oldest in-flight fetch: none visible")?,
        }
        write!(f, "  occupancy:")?;
        for c in &self.components {
            write!(f, " {}={}", c.name, c.pending)?;
        }
        Ok(())
    }
}

/// A recorded downgrade from the parallel engine to the sequential one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Degradation {
    /// Cycle at which the parallel engine was abandoned.
    pub at_cycle: u64,
    /// Why (e.g. which worker died).
    pub reason: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_site() {
        let e = SimError::QueueOverflow {
            component: "l2_partition",
            queue: "l2_access",
            cycle: 42,
        };
        let s = e.to_string();
        assert!(s.contains("l2_partition"));
        assert!(s.contains("l2_access"));
        assert!(s.contains("42"));
    }

    #[test]
    fn wedge_diagnosis_renders_chain_and_oldest() {
        let d = WedgeDiagnosis {
            cycle: 1000,
            last_progress_cycle: 500,
            horizon: 500,
            instructions: 10,
            responses_delivered: 3,
            requests_injected: 7,
            ctas_dispatched: 2,
            grid_ctas: 4,
            components: vec![ComponentOccupancy {
                name: "l2_to_icnt".into(),
                pending: 8,
            }],
            oldest_fetch: Some(OldestFetch {
                id: 9,
                core: 1,
                issued_at: 480,
                waiting: 520,
            }),
            blocked_chain: vec!["resp_xbar.ingress(held)".into(), "l2_to_icnt(full)".into()],
        };
        let s = SimError::Wedged {
            diagnosis: Box::new(d),
        }
        .to_string();
        assert!(s.contains("no progress since cycle 500"));
        assert!(s.contains("resp_xbar.ingress(held) -> l2_to_icnt(full)"));
        assert!(s.contains("waiting 520 cycles"));
        assert!(s.contains("l2_to_icnt=8"));
    }

    #[test]
    fn host_dependence_split_matches_the_retry_contract() {
        assert!(SimError::DeadlineExceeded {
            cycle: 1,
            budget_seconds: 0.5
        }
        .is_host_dependent());
        assert!(SimError::WorkerPanic {
            cycle: 1,
            chunk: 0,
            message: "boom".into()
        }
        .is_host_dependent());
        // Deterministic failures reproduce bit-identically on retry.
        assert!(!SimError::Watchdog {
            cycle: 1,
            instructions: 0,
            detail: String::new()
        }
        .is_host_dependent());
        assert!(!SimError::QueueOverflow {
            component: "l2",
            queue: "access",
            cycle: 1
        }
        .is_host_dependent());
    }

    #[test]
    fn degradation_round_trips_through_serde() {
        let d = Degradation {
            at_cycle: 77,
            reason: "worker panic in chunk 2".into(),
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: Degradation = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
