//! Deterministic pseudo-random number generation.
//!
//! The simulator must be exactly reproducible from a seed (a property-tested
//! invariant), so workload generators use this small self-contained
//! xoshiro256** implementation rather than a thread-seeded source.

use serde::{Deserialize, Serialize};

/// A deterministic xoshiro256** PRNG seeded via SplitMix64.
///
/// # Example
///
/// ```
/// use gpumem_types::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 to expand the seed into a full non-zero state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent stream for a sub-component (e.g. one warp),
    /// keyed by `stream`. Deterministic in (self-seed, stream).
    pub fn fork(&self, stream: u64) -> SimRng {
        SimRng::new(
            self.state[0]
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(stream.wrapping_mul(0xD1B5_4A32_D192_ED03)),
        )
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound` is 0.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift rejection-free approximation is fine here;
        // bias is negligible for simulation bounds (< 2^40).
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let root = SimRng::new(9);
        let mut f1 = root.fork(0);
        let mut f2 = root.fork(1);
        let mut f1b = root.fork(0);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SimRng::new(7);
        for _ in 0..1000 {
            assert!(r.gen_range(10) < 10);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.gen_range(0), 0);
    }

    #[test]
    fn bool_probabilities_extreme() {
        let mut r = SimRng::new(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[r.gen_range(4) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "count {c} out of tolerance");
        }
    }
}
