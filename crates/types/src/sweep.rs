//! Content-addressed sweep-cell keys and typed sweep-orchestration errors.
//!
//! A design-space sweep runs hundreds of `(DesignPoint × workload × seed ×
//! engine)` cells, each of which is a pure function of its inputs. The
//! orchestrator (`gpumem-sweep`) content-addresses every cell with a
//! [`CellKey`] — a 128-bit FNV-1a digest of the cell's canonical
//! description — so a completed cell can be recognized and served from the
//! on-disk results store instead of being recomputed. Failures of the
//! *store* (as opposed to failures of a simulation, which stay
//! [`SimError`](crate::SimError)s) are reported as [`SweepError`]s: torn
//! journal writes, corrupt cell files, version-salt mismatches and invalid
//! sweep specs each carry enough context to be diagnosed from the value
//! alone.

use std::fmt;

use serde::{Deserialize, Serialize};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Independent second offset basis for the high half of a 128-bit digest
/// (the canonical basis folded through one round of the prime).
const FNV_OFFSET_HI: u64 = FNV_OFFSET ^ 0x5bd1_e995_7b93_c2a1;

/// FNV-1a over `bytes` from an explicit offset basis.
fn fnv1a(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Streaming 128-bit FNV-1a hasher: the incremental form of
/// [`CellKey::from_canonical`], for content that arrives in chunks (trace
/// files decoded from a reader, journal replays) where buffering the whole
/// input just to digest it would defeat a bounded-memory decode.
///
/// Feeding the same bytes in any chunking produces the same key:
///
/// ```
/// use gpumem_types::{CellKey, Fnv128};
///
/// let mut h = Fnv128::new();
/// h.update(b"gpumem-");
/// h.update(b"trace");
/// assert_eq!(h.finish(), CellKey::from_canonical("gpumem-trace"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv128 {
    hi: u64,
    lo: u64,
}

impl Fnv128 {
    /// Starts a digest at the two independent offset bases.
    pub fn new() -> Fnv128 {
        Fnv128 {
            hi: FNV_OFFSET_HI,
            lo: FNV_OFFSET,
        }
    }

    /// Absorbs a chunk.
    pub fn update(&mut self, bytes: &[u8]) {
        self.hi = fnv1a(self.hi, bytes);
        self.lo = fnv1a(self.lo, bytes);
    }

    /// The digest of everything absorbed so far (the hasher remains
    /// usable; finishing is a read, not a consume).
    pub fn finish(&self) -> CellKey {
        CellKey {
            hi: self.hi,
            lo: self.lo,
        }
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

/// Stable 64-bit FNV-1a content digest (canonical offset basis).
///
/// This is the workspace's standard checksum construction: the golden-trace
/// harness, the sweep journal and the results store all use it, so digests
/// printed by different tools are comparable.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// The content address of one sweep cell: a 128-bit FNV-1a digest of the
/// cell's canonical description (configuration, workload parameters, seed,
/// engine, epoch policy and code-version salt).
///
/// Two cells with the same key are guaranteed to describe the same
/// simulation, so a stored result can be served instead of recomputing.
/// The 128-bit width (two independently-seeded 64-bit FNV-1a streams)
/// makes accidental collisions across even very large campaigns
/// negligible.
///
/// # Example
///
/// ```
/// use gpumem_types::CellKey;
///
/// let a = CellKey::from_canonical("cfg|sc|seed=0|event|v1");
/// let b = CellKey::from_canonical("cfg|sc|seed=0|event|v1");
/// let c = CellKey::from_canonical("cfg|sc|seed=1|event|v1");
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// assert_eq!(CellKey::from_hex(&a.to_string()), Some(a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellKey {
    /// High 64 bits of the digest.
    pub hi: u64,
    /// Low 64 bits of the digest.
    pub lo: u64,
}

impl CellKey {
    /// Digests a canonical cell description.
    pub fn from_canonical(canonical: &str) -> CellKey {
        let mut h = Fnv128::new();
        h.update(canonical.as_bytes());
        h.finish()
    }

    /// Parses the 32-hex-digit form produced by [`fmt::Display`].
    pub fn from_hex(s: &str) -> Option<CellKey> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(CellKey { hi, lo })
    }
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// A failure of the sweep orchestrator or its results store.
///
/// Simulation failures stay typed [`SimError`](crate::SimError)s attached
/// to their cell; `SweepError` covers the machinery around them — disk
/// I/O, journal integrity, spec validation and injected crashes.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// A filesystem operation failed.
    Io {
        /// Path (or store-relative path) of the failed operation.
        path: String,
        /// The underlying error, rendered.
        detail: String,
    },
    /// A journal line failed its checksum or framing mid-file (a torn
    /// tail is tolerated silently; this is corruption *before* the tail).
    CorruptJournal {
        /// Store-relative journal path.
        path: String,
        /// 1-based line number of the first bad record.
        line: u64,
        /// What was wrong with it.
        detail: String,
    },
    /// A committed cell file failed verification (checksum, key or salt).
    /// The store quarantines the file and recomputes the cell; this error
    /// only surfaces if quarantine itself fails.
    CorruptCell {
        /// The cell whose file was bad.
        cell: CellKey,
        /// What failed to verify.
        detail: String,
    },
    /// A sweep spec failed validation (unknown benchmark, bad design-point
    /// label, malformed engine string, empty axis…).
    SpecInvalid {
        /// What was wrong.
        detail: String,
    },
    /// The crash-injection harness reached its configured journal offset:
    /// the orchestrator aborted exactly as if the process had been killed
    /// there (a partial journal record may be on disk).
    InjectedCrash {
        /// Total journal bytes written when the crash fired.
        journal_bytes: u64,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io { path, detail } => write!(f, "sweep store I/O on {path}: {detail}"),
            SweepError::CorruptJournal { path, line, detail } => {
                write!(f, "corrupt journal record {path}:{line}: {detail}")
            }
            SweepError::CorruptCell { cell, detail } => {
                write!(f, "corrupt cell {cell}: {detail}")
            }
            SweepError::SpecInvalid { detail } => write!(f, "invalid sweep spec: {detail}"),
            SweepError::InjectedCrash { journal_bytes } => {
                write!(f, "injected crash after {journal_bytes} journal bytes")
            }
        }
    }
}

impl std::error::Error for SweepError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinct() {
        let a = CellKey::from_canonical("x");
        assert_eq!(a, CellKey::from_canonical("x"));
        assert_ne!(a, CellKey::from_canonical("y"));
        // The two halves are independent streams: a single-byte input must
        // not produce mirrored halves.
        assert_ne!(a.hi, a.lo);
    }

    #[test]
    fn hex_round_trips() {
        let k = CellKey::from_canonical("round-trip");
        let s = k.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(CellKey::from_hex(&s), Some(k));
        assert_eq!(CellKey::from_hex("zz"), None);
        assert_eq!(CellKey::from_hex(&s[..31]), None);
    }

    #[test]
    fn streaming_hasher_is_chunking_independent() {
        let text = b"kernel name=gemm grid=12";
        let mut whole = Fnv128::new();
        whole.update(text);
        for split in 0..text.len() {
            let mut parts = Fnv128::new();
            parts.update(&text[..split]);
            parts.update(&text[split..]);
            assert_eq!(parts.finish(), whole.finish(), "split at {split}");
        }
        assert_eq!(Fnv128::new().finish(), CellKey::from_canonical(""));
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // Standard FNV-1a 64 test vector: "a" -> 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b""), FNV_OFFSET);
    }

    #[test]
    fn errors_render_their_context() {
        let e = SweepError::CorruptJournal {
            path: "journal.log".into(),
            line: 7,
            detail: "checksum mismatch".into(),
        };
        let s = e.to_string();
        assert!(s.contains("journal.log:7"));
        assert!(s.contains("checksum mismatch"));
    }
}
