//! Identifiers for hardware structures and execution entities.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// Raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                $name(index)
            }
        }
    };
}

id_newtype!(
    /// Index of a streaming multiprocessor (SM / SIMT core).
    ///
    /// The GTX480 baseline has 15 cores, so valid values are `0..15` in the
    /// default configuration.
    CoreId,
    "core"
);

id_newtype!(
    /// Index of a memory partition (an L2 slice plus its DRAM channel).
    ///
    /// The GTX480 baseline has 6 partitions.
    PartitionId,
    "part"
);

id_newtype!(
    /// Index of a cooperative thread array (thread block) within a kernel
    /// launch grid.
    CtaId,
    "cta"
);

/// A warp's identity: which hardware warp slot on which core, and which CTA
/// and intra-CTA warp it is currently running.
///
/// # Example
///
/// ```
/// use gpumem_types::{CoreId, CtaId, WarpId};
///
/// let w = WarpId::new(CoreId::new(3), 12);
/// assert_eq!(w.core, CoreId::new(3));
/// assert_eq!(w.slot, 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WarpId {
    /// The core the warp runs on.
    pub core: CoreId,
    /// The hardware warp slot within the core.
    pub slot: u32,
}

impl WarpId {
    /// Creates a warp id for a hardware slot on a core.
    #[inline]
    pub const fn new(core: CoreId, slot: u32) -> Self {
        WarpId { core, slot }
    }
}

impl fmt::Display for WarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.w{}", self.core, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        assert_eq!(CoreId::new(7).index(), 7);
        assert_eq!(PartitionId::from(3u32).index(), 3);
        assert_eq!(CtaId::new(11).to_string(), "cta11");
    }

    #[test]
    fn warp_display() {
        let w = WarpId::new(CoreId::new(2), 5);
        assert_eq!(w.to_string(), "core2.w5");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(CoreId::new(1) < CoreId::new(2));
        let a = WarpId::new(CoreId::new(0), 9);
        let b = WarpId::new(CoreId::new(1), 0);
        assert!(a < b);
    }
}
