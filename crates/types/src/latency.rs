//! Scalar latency accounting.

use serde::{Deserialize, Serialize};

/// Running mean/min/max of a latency population.
///
/// # Example
///
/// ```
/// use gpumem_types::LatencyStats;
///
/// let mut s = LatencyStats::default();
/// s.record(100);
/// s.record(300);
/// assert_eq!(s.mean(), 200.0);
/// assert_eq!(s.min(), Some(100));
/// assert_eq!(s.max(), Some(300));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyStats {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LatencyStats {
    /// Creates an empty population.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample. The count and sum saturate instead of
    /// wrapping, so a pathological population can never panic or corrupt the
    /// extremes.
    pub fn record(&mut self, latency: u64) {
        if self.count == 0 {
            self.min = latency;
            self.max = latency;
        } else {
            self.min = self.min.min(latency);
            self.max = self.max.max(latency);
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(latency);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean latency, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another population into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = LatencyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn record_updates_extremes() {
        let mut s = LatencyStats::new();
        s.record(50);
        s.record(10);
        s.record(90);
        assert_eq!(s.min(), Some(10));
        assert_eq!(s.max(), Some(90));
        assert_eq!(s.sum(), 150);
        assert_eq!(s.mean(), 50.0);
    }

    #[test]
    fn merge_handles_empties() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.min(), Some(7));
        let empty = LatencyStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn merge_of_two_empties_stays_empty() {
        let mut a = LatencyStats::new();
        let b = LatencyStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
        assert_eq!(a.mean(), 0.0);
    }

    #[test]
    fn single_sample_merge_is_exact() {
        let mut a = LatencyStats::new();
        a.record(42);
        let mut b = LatencyStats::new();
        b.record(42);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 84);
        assert_eq!(a.min(), Some(42));
        assert_eq!(a.max(), Some(42));
        assert_eq!(a.mean(), 42.0);
    }

    #[test]
    fn record_saturates_instead_of_wrapping() {
        let mut s = LatencyStats::new();
        s.record(u64::MAX);
        s.record(u64::MAX);
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum(), u64::MAX, "sum saturates at u64::MAX");
        assert_eq!(s.max(), Some(u64::MAX));
        let mut other = LatencyStats::new();
        other.record(u64::MAX);
        s.merge(&other);
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), u64::MAX, "merge saturates too");
        assert_eq!(s.min(), Some(u64::MAX));
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = LatencyStats::new();
        a.record(1);
        a.record(3);
        let mut b = LatencyStats::new();
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.max(), Some(5));
    }
}
