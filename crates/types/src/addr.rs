//! Byte and cache-line addresses.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A byte address in the simulated GPU's global memory space.
///
/// # Example
///
/// ```
/// use gpumem_types::Addr;
///
/// let a = Addr::new(0x1040);
/// let line = a.line(128);
/// assert_eq!(line.base(128), Addr::new(0x1000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte offset.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Raw byte offset.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `line_bytes` is not a power of two.
    #[inline]
    pub const fn line(self, line_bytes: u64) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(self.0 / line_bytes)
    }

    /// Offsets the address by `delta` bytes.
    #[inline]
    pub const fn offset(self, delta: u64) -> Addr {
        Addr(self.0 + delta)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line index: a byte address divided by the line size.
///
/// All traffic below the coalescer operates at line granularity; the memory
/// hierarchy never sees sub-line addresses. Line index arithmetic is used by
/// the L2 partition hash, the cache set mapping and the DRAM bank/row
/// mapping.
///
/// # Example
///
/// ```
/// use gpumem_types::{Addr, LineAddr};
///
/// let line = Addr::new(256).line(128);
/// assert_eq!(line, LineAddr::new(2));
/// assert_eq!(line.base(128), Addr::new(256));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        LineAddr(index)
    }

    /// Raw line index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// First byte address of the line.
    #[inline]
    pub const fn base(self, line_bytes: u64) -> Addr {
        Addr(self.0 * line_bytes)
    }
}

impl Addr {
    /// Byte offset of this address within its cache line.
    #[inline]
    pub const fn byte_offset(self, line_bytes: u64) -> u64 {
        self.0 % line_bytes
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(index: u64) -> Self {
        LineAddr(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping_roundtrip() {
        let a = Addr::new(0x1234);
        let line = a.line(128);
        assert_eq!(line.index(), 0x1234 / 128);
        assert!(line.base(128).raw() <= a.raw());
        assert!(a.raw() < line.base(128).raw() + 128);
    }

    #[test]
    fn offsets() {
        assert_eq!(Addr::new(10).offset(6), Addr::new(16));
        assert_eq!(Addr::new(0x87).byte_offset(128), 7);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(LineAddr::new(2).to_string(), "L0x2");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
    }

    #[test]
    fn adjacent_addresses_same_line() {
        let base = Addr::new(0x4000);
        for i in 0..128 {
            assert_eq!(base.offset(i).line(128), base.line(128));
        }
        assert_ne!(base.offset(128).line(128), base.line(128));
    }
}
