//! Foundational types shared by every crate in the `gpumem` workspace.
//!
//! The `gpumem` workspace reproduces the IISWC 2016 paper *Characterizing
//! Memory Bottlenecks in GPGPU Workloads* (Dublish, Nagarajan, Topham) on top
//! of a from-scratch cycle-level GPU memory-hierarchy simulator. This crate
//! holds the vocabulary types that the substrate crates (`gpumem-cache`,
//! `gpumem-noc`, `gpumem-dram`, `gpumem-simt`, `gpumem-sim`) communicate
//! with:
//!
//! * [`Cycle`] — simulation time.
//! * [`Addr`] / [`LineAddr`] — byte and cache-line addresses.
//! * [`MemFetch`] — the memory-request descriptor that flows from a core's
//!   load/store unit down through L1, the interconnect, L2 and DRAM, and
//!   back up as a response.
//! * [`SimQueue`] — a bounded FIFO instrumented with the occupancy
//!   statistics the paper's Section III is built on (how often is a queue
//!   *full* during its *usage lifetime*).
//! * [`LatencyStats`] / [`Histogram`] — latency accounting for the paper's
//!   Section II latency-tolerance analysis.
//! * [`SimRng`] — a small deterministic PRNG so that every simulation is
//!   exactly reproducible from a seed.
//!
//! # Example
//!
//! ```
//! use gpumem_types::{Addr, Cycle, SimQueue};
//!
//! let mut q: SimQueue<u32> = SimQueue::new("l2_access", 8);
//! q.push(41).unwrap();
//! q.observe(); // called once per simulated cycle by the owning component
//! assert_eq!(q.pop(), Some(41));
//! assert_eq!(q.stats().ticks_nonempty, 1);
//!
//! let a = Addr::new(0x1234);
//! assert_eq!(a.byte_offset(128), 0x34);
//! assert_eq!(Cycle::ZERO + 5, Cycle::new(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cycle;
mod error;
mod fetch;
mod histogram;
mod host;
mod ids;
mod latency;
mod queue;
mod rng;
mod slab;
mod sweep;

pub use addr::{Addr, LineAddr};
pub use cycle::Cycle;
pub use error::{ComponentOccupancy, Degradation, OldestFetch, SimError, WedgeDiagnosis};
pub use fetch::{AccessKind, FetchId, FetchTimeline, MemFetch};
pub use histogram::{Histogram, Log2Histogram};
pub use host::{host_wall_clock, HostStopwatch};
pub use ids::{CoreId, CtaId, PartitionId, WarpId};
pub use latency::LatencyStats;
pub use queue::{BoundedQueue, PushError, QueueStats, SimQueue};
pub use rng::SimRng;
pub use slab::{FetchArena, Slab, SlotId};
pub use sweep::{fnv1a64, CellKey, Fnv128, SweepError};
