//! Host-side wall-clock access, confined to one auditable site.
//!
//! Simulation results must be a pure function of `(GpuConfig, workload,
//! engine)` — the host wall clock may influence *throughput reporting only*
//! (the `SimReport::host` block). To make that auditable, this module is the
//! single place in the workspace allowed to read the clock; the `simlint`
//! determinism pass (`cargo run -p gpumem-lint -- check`) denies
//! `std::time::Instant` everywhere else.

// simlint::allow(no-wall-clock, reason = "the one sanctioned host-clock site")
use std::time::Instant;

/// A monotonic stopwatch started by [`host_wall_clock`].
///
/// Deliberately opaque: callers can only ask for elapsed seconds, which
/// keeps raw `Instant` values (and the temptation to branch on them) out of
/// simulation code.
#[derive(Debug, Clone, Copy)]
pub struct HostStopwatch {
    // simlint::allow(no-wall-clock, reason = "the one sanctioned host-clock site")
    start: Instant,
}

impl HostStopwatch {
    /// Seconds elapsed since [`host_wall_clock`] created this stopwatch.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Starts the workspace's only sanctioned wall-clock read, for host
/// throughput reporting (cycles/sec in `SimReport::host`).
pub fn host_wall_clock() -> HostStopwatch {
    HostStopwatch {
        // simlint::allow(no-wall-clock, reason = "the one sanctioned host-clock site")
        start: Instant::now(),
    }
}
