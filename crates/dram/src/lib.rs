//! DRAM substrate for the `gpumem` simulator.
//!
//! One [`DramChannel`] serves each memory partition: a GDDR5-like device
//! with a bounded memory-controller scheduler queue (Table I baseline **16
//! entries**, the queue whose occupancy the paper reports as *full for 39%
//! of its usage lifetime*), FR-FCFS scheduling (row hits first, then
//! oldest), per-bank row state (Table I baseline **16 banks/chip**), and a
//! shared data bus whose burst time scales inversely with the bus width
//! (Table I baseline **32 bits**, i.e. 16 cycles per 128-byte line at
//! double data rate).
//!
//! # Example
//!
//! ```
//! use gpumem_config::GpuConfig;
//! use gpumem_dram::DramChannel;
//! use gpumem_types::{AccessKind, CoreId, Cycle, FetchId, LineAddr, MemFetch};
//!
//! let cfg = GpuConfig::gtx480();
//! let mut dram = DramChannel::new(&cfg, 0);
//! let fetch = MemFetch::new(FetchId::new(1), AccessKind::Load, LineAddr::new(6), CoreId::new(0));
//! dram.try_push(fetch, Cycle::ZERO).unwrap();
//!
//! let mut now = Cycle::ZERO;
//! let mut done = None;
//! for _ in 0..500 {
//!     dram.tick(now).unwrap();
//!     dram.observe();
//!     if let Some(f) = dram.pop_return() {
//!         done = Some((f, now));
//!         break;
//!     }
//!     now = now.next();
//! }
//! let (_, finished_at) = done.expect("read must complete");
//! assert!(finished_at.raw() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gpumem_config::{DramConfig, GpuConfig};
use gpumem_types::{
    AccessKind, Cycle, LatencyStats, Log2Histogram, MemFetch, QueueStats, SimError, SimQueue,
};

/// Activity counters for one [`DramChannel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DramStats {
    /// Read requests serviced.
    pub reads: u64,
    /// Write requests serviced (stores and L2 writebacks).
    pub writes: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests to a closed (precharged) bank.
    pub row_closed: u64,
    /// Requests that required closing another row first.
    pub row_conflicts: u64,
    /// Cycles the data bus was transferring.
    pub bus_busy_cycles: u64,
}

impl DramStats {
    /// Accumulates another channel's counters (for per-GPU aggregation).
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_closed += other.row_closed;
        self.row_conflicts += other.row_conflicts;
        self.bus_busy_cycles += other.bus_busy_cycles;
    }

    /// Row-hit rate over all serviced requests.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_closed + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// Write-path lifecycle histograms, collected only when tracing is enabled.
///
/// Stores and L2 writebacks terminate at DRAM and never travel back to a
/// core, so their queue-wait and service stages are recorded here, at the
/// point the write lands, instead of at the core's response path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteTrace {
    /// `dram_arrive → dram_issue`: scheduler-queue wait.
    pub queue: Log2Histogram,
    /// `dram_issue → dram_data`: row activate + burst transfer.
    pub service: Log2Histogram,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Cycle,
    /// When the currently open row was activated (for tRAS).
    activated_at: Cycle,
}

#[derive(Debug)]
struct Pending {
    fetch: MemFetch,
    /// Earliest cycle the scheduler may consider this request (models the
    /// fixed controller front-end latency).
    ready_at: Cycle,
}

#[derive(Debug)]
struct Completion {
    done_at: Cycle,
    seq: u64,
    fetch: MemFetch,
}

impl PartialEq for Completion {
    fn eq(&self, other: &Self) -> bool {
        self.done_at == other.done_at && self.seq == other.seq
    }
}
impl Eq for Completion {}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (done_at, seq).
        (other.done_at, other.seq).cmp(&(self.done_at, self.seq))
    }
}

/// A single DRAM channel with FR-FCFS scheduling.
///
/// Requests enter through [`try_push`](DramChannel::try_push) (bounded by
/// the Table I scheduler queue — rejection back-pressures the L2 miss
/// queue), are scheduled one per cycle onto per-bank row state machines,
/// contend for the shared data bus, and — for reads — leave through the
/// bounded return queue towards the L2 fill path.
#[derive(Debug)]
pub struct DramChannel {
    line_bytes: u64,
    /// Address-interleave stride: the number of partitions, so that the
    /// per-channel line index is `line / stride`.
    stride: u64,
    lines_per_row: u64,
    cfg: DramConfig,
    burst_cycles: u64,
    queue: SimQueue<Pending>,
    write_queue: SimQueue<Pending>,
    banks: Vec<Bank>,
    bus_free_at: Cycle,
    completions: BinaryHeap<Completion>,
    next_seq: u64,
    return_queue: SimQueue<MemFetch>,
    stats: DramStats,
    service_latency: LatencyStats,
    in_flight: usize,
    /// Write-path stage histograms; `None` (and zero-cost) unless tracing
    /// was enabled on the owning simulator.
    trace: Option<Box<WriteTrace>>,
}

impl DramChannel {
    /// Builds a channel for one partition of the configured GPU.
    /// `partition_index` is informational; the address interleave stride is
    /// `cfg.num_partitions`.
    pub fn new(cfg: &GpuConfig, partition_index: usize) -> Self {
        let _ = partition_index;
        Self::from_parts(cfg.dram.clone(), cfg.line_bytes, cfg.num_partitions as u64)
    }

    /// Builds a channel from raw parts (used by tests that want exotic
    /// geometries).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent
    /// (`row_bytes < line_bytes` or zero stride).
    pub fn from_parts(cfg: DramConfig, line_bytes: u64, stride: u64) -> Self {
        assert!(stride > 0, "partition stride must be positive");
        assert!(
            cfg.row_bytes >= line_bytes,
            "row must hold at least one line"
        );
        let lines_per_row = cfg.row_bytes / line_bytes;
        let burst_cycles = line_bytes.div_ceil(cfg.bus_bytes * cfg.data_rate);
        DramChannel {
            line_bytes,
            stride,
            lines_per_row,
            burst_cycles,
            queue: SimQueue::new("dram_sched", cfg.scheduler_queue),
            write_queue: SimQueue::new("dram_write", cfg.scheduler_queue),
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: Cycle::ZERO,
                    activated_at: Cycle::ZERO,
                };
                cfg.banks
            ],
            bus_free_at: Cycle::ZERO,
            completions: BinaryHeap::new(),
            next_seq: 0,
            return_queue: SimQueue::new("dram_return", cfg.return_queue),
            stats: DramStats::default(),
            service_latency: LatencyStats::new(),
            in_flight: 0,
            trace: None,
            cfg,
        }
    }

    /// Turns on write-path tracing. Idempotent; enable before running.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Box::default());
        }
    }

    /// The write-path histograms, if tracing was enabled.
    pub fn trace(&self) -> Option<&WriteTrace> {
        self.trace.as_deref()
    }

    /// Current depth of the read scheduler queue (for occupancy probes).
    pub fn read_queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Cycles one line transfer occupies the data bus.
    pub fn burst_cycles(&self) -> u64 {
        self.burst_cycles
    }

    /// (bank, row) decoding of a line address for this channel.
    pub fn map_address(&self, line: gpumem_types::LineAddr) -> (usize, u64) {
        let local_line = line.index() / self.stride;
        let global_row = local_line / self.lines_per_row;
        let bank = (global_row % self.banks.len() as u64) as usize;
        let row = global_row / self.banks.len() as u64;
        (bank, row)
    }

    /// True if the appropriate scheduler queue (reads and writes are
    /// queued separately, as in real GDDR5 controllers) can accept a
    /// request of `kind` this cycle.
    pub fn can_accept(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Load => !self.queue.is_full(),
            AccessKind::Store => !self.write_queue.is_full(),
        }
    }

    /// Enqueues a request into the read or write scheduler queue.
    ///
    /// # Errors
    ///
    /// Hands the fetch back if that queue is full (the caller — the L2
    /// miss/writeback path — must retry, propagating backpressure upward).
    #[allow(clippy::result_large_err)] // the rejected fetch is handed back by design
    pub fn try_push(&mut self, mut fetch: MemFetch, now: Cycle) -> Result<(), MemFetch> {
        if fetch.timeline.dram_arrive.is_none() {
            fetch.timeline.dram_arrive = Some(now);
        }
        let ready_at = now + self.cfg.controller_latency;
        let queue = match fetch.kind {
            AccessKind::Load => &mut self.queue,
            AccessKind::Store => &mut self.write_queue,
        };
        match queue.push(Pending { fetch, ready_at }) {
            Ok(()) => {
                self.in_flight += 1;
                Ok(())
            }
            Err(e) => Err(e.into_inner().fetch),
        }
    }

    /// Advances the channel one cycle: lands finished requests into the
    /// return queue and schedules at most one new request FR-FCFS.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QueueOverflow`] if the return queue rejects a
    /// completion after its fullness check — an internal invariant
    /// violation, never ordinary congestion.
    pub fn tick(&mut self, now: Cycle) -> Result<(), SimError> {
        // Land completions whose data transfer finished.
        loop {
            let landable = match self.completions.peek() {
                Some(head) if head.done_at <= now => {
                    !(head.fetch.kind.is_load() && self.return_queue.is_full())
                }
                _ => false,
            };
            if !landable {
                break;
            }
            let Some(mut c) = self.completions.pop() else {
                break;
            };
            if let Some(arr) = c.fetch.timeline.dram_arrive {
                self.service_latency.record(now.since(arr));
            }
            // The burst finished at `done_at`; landing may lag it when a
            // blocked read at the heap's head stalls the loop.
            c.fetch.timeline.dram_data = Some(c.done_at);
            if let Some(trace) = self.trace.as_deref_mut() {
                if !c.fetch.kind.is_load() {
                    let t = &c.fetch.timeline;
                    if let (Some(arr), Some(issue)) = (t.dram_arrive, t.dram_issue) {
                        trace.queue.record(issue.since(arr));
                        trace.service.record(c.done_at.since(issue));
                    }
                }
            }
            if c.fetch.kind.is_load() {
                if self.return_queue.push(c.fetch).is_err() {
                    return Err(SimError::QueueOverflow {
                        component: "dram",
                        queue: "dram_return",
                        cycle: now.raw(),
                    });
                }
            } else {
                self.in_flight = self.in_flight.saturating_sub(1);
            }
        }

        // Do not race reads ahead of a clogged return path: if completed
        // reads are already waiting for return-queue space, scheduling
        // more reads would model infinite buffering. Holding off lets the
        // scheduler queue fill up instead — the backpressure the paper
        // measures at this queue. Writes never enter the return path, so
        // they remain schedulable and keep the writeback pipeline live
        // (deadlock freedom).
        let return_blocked = self.return_queue.is_full()
            && self
                .completions
                .peek()
                .is_some_and(|c| c.done_at <= now && c.fetch.kind.is_load());
        // Read-first scheduling with two exceptions: a blocked return path
        // or a write queue running hot (drain threshold at 3/4).
        let prefer_writes =
            return_blocked || self.write_queue.len() * 4 >= self.write_queue.capacity() * 3;
        if prefer_writes {
            if !self.schedule_one(now, AccessKind::Store) && !return_blocked {
                self.schedule_one(now, AccessKind::Load);
            }
        } else if !self.schedule_one(now, AccessKind::Load) {
            self.schedule_one(now, AccessKind::Store);
        }
        Ok(())
    }

    /// FR-FCFS over the selected queue: prefer the oldest request hitting
    /// an open row on an idle bank; otherwise the oldest request whose
    /// bank is idle. Returns whether a request was scheduled.
    fn schedule_one(&mut self, now: Cycle, kind: AccessKind) -> bool {
        // Borrow-friendly precomputation of bank readiness.
        let pick_row_hit = |p: &Pending, banks: &[Bank], stride, lpr| {
            if p.ready_at > now {
                return false;
            }
            let local = p.fetch.line.index() / stride;
            let grow = local / lpr;
            let bank = (grow % banks.len() as u64) as usize;
            let row = grow / banks.len() as u64;
            banks[bank].busy_until <= now && banks[bank].open_row == Some(row)
        };
        let pick_ready = |p: &Pending, banks: &[Bank], stride, lpr| {
            if p.ready_at > now {
                return false;
            }
            let local = p.fetch.line.index() / stride;
            let grow = local / lpr;
            let bank = (grow % banks.len() as u64) as usize;
            banks[bank].busy_until <= now
        };

        let (stride, lpr) = (self.stride, self.lines_per_row);
        let banks_snapshot: Vec<Bank> = self.banks.clone();
        let queue = match kind {
            AccessKind::Load => &mut self.queue,
            AccessKind::Store => &mut self.write_queue,
        };
        let chosen = queue
            .remove_first_where(|p| pick_row_hit(p, &banks_snapshot, stride, lpr))
            .or_else(|| queue.remove_first_where(|p| pick_ready(p, &banks_snapshot, stride, lpr)));
        let Some(mut pending) = chosen else {
            return false;
        };
        pending.fetch.timeline.dram_issue = Some(now);

        let (bank_idx, row) = self.map_address(pending.fetch.line);
        let t = &self.cfg;
        let bank = &mut self.banks[bank_idx];

        // When can the column command's data phase begin?
        let col_ready = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                now.raw()
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                // Precharge (respecting tRAS), activate, then column.
                let pre_at = now.raw().max(bank.activated_at.raw() + t.t_ras);
                let act_at = pre_at + t.t_rp;
                bank.open_row = Some(row);
                bank.activated_at = Cycle::new(act_at);
                act_at + t.t_rcd
            }
            None => {
                self.stats.row_closed += 1;
                bank.open_row = Some(row);
                bank.activated_at = now;
                now.raw() + t.t_rcd
            }
        };

        let data_start = (col_ready + t.t_cl).max(self.bus_free_at.raw());
        let done_at = Cycle::new(data_start + self.burst_cycles);
        self.bus_free_at = done_at;
        self.stats.bus_busy_cycles += self.burst_cycles;
        bank.busy_until = done_at;

        match pending.fetch.kind {
            AccessKind::Load => self.stats.reads += 1,
            AccessKind::Store => self.stats.writes += 1,
        }
        self.completions.push(Completion {
            done_at,
            seq: self.next_seq,
            fetch: pending.fetch,
        });
        self.next_seq += 1;
        true
    }

    /// Takes one completed read from the return queue (the L2 fill path
    /// drains this).
    pub fn pop_return(&mut self) -> Option<MemFetch> {
        let f = self.return_queue.pop();
        if f.is_some() {
            self.in_flight = self.in_flight.saturating_sub(1);
        }
        f
    }

    /// Iterates over every fetch queued or in service inside the channel
    /// (scheduler queues, completions in flight, return queue), for wedge
    /// diagnosis.
    pub fn fetches(&self) -> impl Iterator<Item = &MemFetch> {
        self.queue
            .iter()
            .chain(self.write_queue.iter())
            .map(|p| &p.fetch)
            .chain(self.completions.iter().map(|c| &c.fetch))
            .chain(self.return_queue.iter())
    }

    /// Peeks the next completed read.
    pub fn peek_return(&self) -> Option<&MemFetch> {
        self.return_queue.front()
    }

    /// Per-cycle statistics bookkeeping; call once per cycle.
    pub fn observe(&mut self) {
        self.queue.observe();
        self.write_queue.observe();
        self.return_queue.observe();
    }

    /// Batch bookkeeping for `cycles` consecutive cycles proven inactive
    /// via [`next_event`](DramChannel::next_event).
    pub fn observe_many(&mut self, cycles: u64) {
        self.queue.observe_many(cycles);
        self.write_queue.observe_many(cycles);
        self.return_queue.observe_many(cycles);
    }

    /// The earliest cycle at or after `now` at which this channel can act:
    /// land a completion, have a completed read drained by the fill path,
    /// or schedule a queued request. `None` when the channel is idle.
    ///
    /// A queued request becomes schedulable at
    /// `max(ready_at, bank.busy_until)`; before that cycle
    /// [`tick`](DramChannel::tick) is a provable no-op, so the caller may
    /// fast-forward across the gap.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.return_queue.is_empty() {
            return Some(now);
        }
        let mut earliest: Option<Cycle> = None;
        let mut fold = |t: Cycle| {
            earliest = Some(match earliest {
                Some(e) if e <= t => e,
                _ => t,
            });
        };
        if let Some(head) = self.completions.peek() {
            if head.done_at <= now {
                return Some(now);
            }
            fold(head.done_at);
        }
        for p in self.queue.iter().chain(self.write_queue.iter()) {
            let (bank, _) = self.map_address(p.fetch.line);
            let at = p.ready_at.max(self.banks[bank].busy_until);
            if at <= now {
                return Some(now);
            }
            fold(at);
        }
        earliest
    }

    /// True if nothing is queued, scheduled or awaiting return.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
            && self.write_queue.is_empty()
            && self.completions.is_empty()
            && self.return_queue.is_empty()
    }

    /// Requests inside the channel (queued + in service + awaiting
    /// return).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Activity counters.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Write-scheduler-queue occupancy statistics.
    pub fn write_queue_stats(&self) -> &QueueStats {
        self.write_queue.stats()
    }

    /// Read-scheduler-queue occupancy statistics — the paper's "DRAM
    /// access queues full for 39% of usage lifetime" metric reads
    /// [`QueueStats::full_fraction_of_usage`] of this.
    pub fn scheduler_queue_stats(&self) -> &QueueStats {
        self.queue.stats()
    }

    /// Return-queue occupancy statistics.
    pub fn return_queue_stats(&self) -> &QueueStats {
        self.return_queue.stats()
    }

    /// Distribution of request service latencies (arrival to data
    /// completion).
    pub fn service_latency(&self) -> &LatencyStats {
        &self.service_latency
    }

    /// The line size the channel was built with.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }
}

/// Drains every request currently inside `channel`, advancing time until
/// idle; returns completed reads in completion order. Test helper shared by
/// this crate's tests and the integration suite.
pub fn drain_channel(
    channel: &mut DramChannel,
    mut now: Cycle,
    max_cycles: u64,
) -> (Vec<MemFetch>, Cycle) {
    let mut out = Vec::new();
    let mut waited = 0;
    while !channel.is_idle() && waited < max_cycles {
        // simlint::allow(no-panic-in-model, reason = "test-only drain helper; a broken channel invariant should abort the test")
        channel.tick(now).expect("channel invariant violated");
        channel.observe();
        while let Some(f) = channel.pop_return() {
            out.push(f);
        }
        now = now.next();
        waited += 1;
    }
    (out, now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_types::{CoreId, FetchId, LineAddr};

    fn channel() -> DramChannel {
        DramChannel::new(&GpuConfig::gtx480(), 0)
    }

    fn load(id: u64, line: u64) -> MemFetch {
        MemFetch::new(
            FetchId::new(id),
            AccessKind::Load,
            LineAddr::new(line),
            CoreId::new(0),
        )
    }

    fn store(id: u64, line: u64) -> MemFetch {
        MemFetch::new(
            FetchId::new(id),
            AccessKind::Store,
            LineAddr::new(line),
            CoreId::new(0),
        )
    }

    #[test]
    fn single_read_latency_is_controller_plus_rcd_cl_burst() {
        let mut d = channel();
        d.try_push(load(1, 0), Cycle::ZERO).unwrap();
        let (done, _) = drain_channel(&mut d, Cycle::ZERO, 10_000);
        assert_eq!(done.len(), 1);
        let cfg = GpuConfig::gtx480();
        let expected =
            cfg.dram.controller_latency + cfg.dram.t_rcd + cfg.dram.t_cl + cfg.dram_burst_cycles();
        let measured = d.service_latency().mean();
        // Completion lands within a couple of cycles of the analytic value
        // (tick-granularity rounding).
        assert!(
            (measured - expected as f64).abs() <= 3.0,
            "measured {measured}, expected ~{expected}"
        );
    }

    #[test]
    fn row_hits_are_faster_than_conflicts() {
        let cfg = GpuConfig::gtx480();
        let lines_per_row = cfg.dram.row_bytes / cfg.line_bytes;
        let stride = cfg.num_partitions as u64;

        // Same row: line indices differing only within a row.
        let mut d = channel();
        d.try_push(load(1, 0), Cycle::ZERO).unwrap();
        d.try_push(load(2, stride), Cycle::ZERO).unwrap(); // next local line, same row
        let (_, t_same) = drain_channel(&mut d, Cycle::ZERO, 10_000);
        assert_eq!(d.stats().row_hits, 1);

        // Same bank, different rows → conflict.
        let mut d2 = channel();
        let banks = cfg.dram.banks as u64;
        d2.try_push(load(1, 0), Cycle::ZERO).unwrap();
        let conflict_line = stride * lines_per_row * banks; // same bank, row+1
        let (b1, r1) = d2.map_address(LineAddr::new(0));
        let (b2, r2) = d2.map_address(LineAddr::new(conflict_line));
        assert_eq!(b1, b2);
        assert_ne!(r1, r2);
        d2.try_push(load(2, conflict_line), Cycle::ZERO).unwrap();
        let (_, t_conflict) = drain_channel(&mut d2, Cycle::ZERO, 10_000);
        assert_eq!(d2.stats().row_conflicts, 1);

        assert!(
            t_conflict > t_same,
            "conflict {t_conflict} vs same-row {t_same}"
        );
    }

    #[test]
    fn scheduler_queue_backpressures() {
        let mut d = channel();
        let cap = GpuConfig::gtx480().dram.scheduler_queue;
        for i in 0..cap as u64 {
            d.try_push(load(i, i * 1000), Cycle::ZERO).unwrap();
        }
        assert!(!d.can_accept(AccessKind::Load));
        // The write queue is independent and still open.
        assert!(d.can_accept(AccessKind::Store));
        let back = d.try_push(load(99, 0), Cycle::ZERO).unwrap_err();
        assert_eq!(back.id, FetchId::new(99));
    }

    #[test]
    fn fr_fcfs_prefers_open_row() {
        let cfg = GpuConfig::gtx480();
        let stride = cfg.num_partitions as u64;
        let lines_per_row = cfg.dram.row_bytes / cfg.line_bytes;
        let banks = cfg.dram.banks as u64;
        let mut d = channel();

        // Open row 0 of bank 0 with a first request, then enqueue a
        // conflicting request (same bank, different row) *before* a row-hit
        // request. FR-FCFS should service the row hit first.
        d.try_push(load(1, 0), Cycle::ZERO).unwrap();
        let conflict = stride * lines_per_row * banks;
        d.try_push(load(2, conflict), Cycle::ZERO).unwrap();
        d.try_push(load(3, stride), Cycle::ZERO).unwrap(); // row hit after #1
        let (done, _) = drain_channel(&mut d, Cycle::ZERO, 20_000);
        let order: Vec<u64> = done.iter().map(|f| f.id.raw()).collect();
        assert_eq!(order[0], 1);
        assert_eq!(order[1], 3, "row hit must bypass older conflict");
        assert_eq!(order[2], 2);
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn writes_complete_without_return() {
        let mut d = channel();
        d.try_push(store(1, 0), Cycle::ZERO).unwrap();
        let (done, _) = drain_channel(&mut d, Cycle::ZERO, 10_000);
        assert!(done.is_empty());
        assert!(d.is_idle());
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn wider_bus_shortens_bursts() {
        let base = GpuConfig::gtx480();
        let mut wide_cfg = base.clone();
        wide_cfg.dram.bus_bytes = 8;
        let narrow = DramChannel::new(&base, 0);
        let wide = DramChannel::new(&wide_cfg, 0);
        assert_eq!(narrow.burst_cycles(), 4); // 128 B / (4 B × 8)
        assert_eq!(wide.burst_cycles(), 2); // 128 B / (8 B × 8)
    }

    #[test]
    fn bus_serializes_parallel_banks() {
        // Two requests to different banks can overlap activation but must
        // share the bus: total time >= 2 bursts.
        let cfg = GpuConfig::gtx480();
        let stride = cfg.num_partitions as u64;
        let lines_per_row = cfg.dram.row_bytes / cfg.line_bytes;
        let mut d = channel();
        d.try_push(load(1, 0), Cycle::ZERO).unwrap();
        d.try_push(load(2, stride * lines_per_row), Cycle::ZERO)
            .unwrap(); // bank 1
        let (b1, _) = d.map_address(LineAddr::new(0));
        let (b2, _) = d.map_address(LineAddr::new(stride * lines_per_row));
        assert_ne!(b1, b2);
        let (done, end) = drain_channel(&mut d, Cycle::ZERO, 20_000);
        assert_eq!(done.len(), 2);
        let single_req_time = {
            let mut s = channel();
            s.try_push(load(1, 0), Cycle::ZERO).unwrap();
            drain_channel(&mut s, Cycle::ZERO, 20_000).1
        };
        // Overlapped, but by at least one extra burst.
        assert!(end.raw() >= single_req_time.raw() + d.burst_cycles() - 2);
        assert!(end.raw() < single_req_time.raw() * 2);
    }

    #[test]
    fn return_queue_backpressure_holds_completions() {
        let mut cfg = GpuConfig::gtx480();
        cfg.dram.return_queue = 1;
        let mut d = DramChannel::new(&cfg, 0);
        d.try_push(load(1, 0), Cycle::ZERO).unwrap();
        d.try_push(load(2, 6), Cycle::ZERO).unwrap();
        // Run without draining returns.
        let mut now = Cycle::ZERO;
        for _ in 0..2000 {
            d.tick(now).unwrap();
            d.observe();
            now = now.next();
        }
        // Only one return fits; the other completion is held.
        assert!(d.peek_return().is_some());
        assert!(!d.is_idle());
        // Drain and finish.
        let mut got = 0;
        for _ in 0..2000 {
            d.tick(now).unwrap();
            while d.pop_return().is_some() {
                got += 1;
            }
            now = now.next();
        }
        assert_eq!(got, 2);
        assert!(d.is_idle());
    }

    #[test]
    fn next_event_skips_controller_latency_exactly() {
        let mut d = channel();
        assert_eq!(d.next_event(Cycle::new(5)), None);
        d.try_push(load(1, 0), Cycle::new(5)).unwrap();
        let ev = d.next_event(Cycle::new(5)).expect("queued work");
        let ctrl = GpuConfig::gtx480().dram.controller_latency;
        assert_eq!(ev, Cycle::new(5 + ctrl));
        // Ticking strictly before the event changes nothing.
        let stats_before = *d.stats();
        d.tick(Cycle::new(5 + ctrl - 1)).unwrap();
        assert_eq!(*d.stats(), stats_before);
        // Ticking at the event schedules the request.
        d.tick(ev).unwrap();
        assert_eq!(d.stats().reads, 1);
        let next = d.next_event(ev).expect("completion pending");
        assert!(next > ev, "completion lies in the future");
    }

    #[test]
    fn address_mapping_covers_all_banks() {
        let d = channel();
        let cfg = GpuConfig::gtx480();
        let stride = cfg.num_partitions as u64;
        let lines_per_row = cfg.dram.row_bytes / cfg.line_bytes;
        let mut seen = vec![false; cfg.dram.banks];
        for r in 0..cfg.dram.banks as u64 {
            let (bank, _) = d.map_address(LineAddr::new(r * lines_per_row * stride));
            seen[bank] = true;
        }
        assert!(seen.iter().all(|&b| b), "row stride must touch every bank");
    }
}
