//! Property tests for the DRAM channel.

use gpumem_config::GpuConfig;
use gpumem_dram::DramChannel;
use gpumem_types::{AccessKind, CoreId, Cycle, FetchId, LineAddr, MemFetch};
use proptest::prelude::*;

fn fetch(id: u64, line: u64, store: bool) -> MemFetch {
    MemFetch::new(
        FetchId::new(id),
        if store {
            AccessKind::Store
        } else {
            AccessKind::Load
        },
        LineAddr::new(line),
        CoreId::new(0),
    )
}

proptest! {
    /// Liveness + conservation: every accepted read returns exactly once,
    /// every accepted write completes, and the channel drains to idle.
    #[test]
    fn every_request_completes(
        requests in prop::collection::vec((0u64..100_000, any::<bool>()), 1..120),
    ) {
        let cfg = GpuConfig::gtx480();
        let mut d = DramChannel::new(&cfg, 0);
        let mut now = Cycle::ZERO;
        let mut accepted_reads = 0u64;
        let mut returned = Vec::new();
        let mut pending: std::collections::VecDeque<(u64, u64, bool)> = requests
            .iter()
            .enumerate()
            .map(|(i, &(l, s))| (i as u64, l, s))
            .collect();

        for _ in 0..2_000_000u64 {
            if let Some(&(id, line, store)) = pending.front() {
                if d.try_push(fetch(id, line, store), now).is_ok() {
                    if !store {
                        accepted_reads += 1;
                    }
                    pending.pop_front();
                }
            }
            d.tick(now).unwrap();
            d.observe();
            while let Some(f) = d.pop_return() {
                returned.push(f.id.raw());
            }
            now = now.next();
            if pending.is_empty() && d.is_idle() {
                break;
            }
        }
        prop_assert!(d.is_idle(), "channel failed to drain");
        prop_assert_eq!(returned.len() as u64, accepted_reads);
        // Exactly-once: ids unique.
        let mut unique = returned.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), returned.len());
        // Stats consistency.
        prop_assert_eq!(d.stats().reads, accepted_reads);
        let total = d.stats().row_hits + d.stats().row_closed + d.stats().row_conflicts;
        prop_assert_eq!(total, d.stats().reads + d.stats().writes);
    }

    /// The (bank, row) mapping is a function of the line address alone and
    /// bank indices stay in range.
    #[test]
    fn address_mapping_is_stable_and_bounded(lines in prop::collection::vec(0u64..10_000_000, 1..100)) {
        let cfg = GpuConfig::gtx480();
        let d = DramChannel::new(&cfg, 0);
        for &l in &lines {
            let (b1, r1) = d.map_address(LineAddr::new(l));
            let (b2, r2) = d.map_address(LineAddr::new(l));
            prop_assert_eq!((b1, r1), (b2, r2));
            prop_assert!(b1 < cfg.dram.banks);
        }
    }

    /// Lines within one DRAM row map to the same (bank, row); service of a
    /// row-local burst is faster than a scatter of the same size.
    #[test]
    fn row_locality_speeds_service(seed in 0u64..1000) {
        let cfg = GpuConfig::gtx480();
        let stride = cfg.num_partitions as u64;
        let lines_per_row = cfg.dram.row_bytes / cfg.line_bytes;

        let run = |lines: Vec<u64>| {
            let mut d = DramChannel::new(&cfg, 0);
            let mut now = Cycle::ZERO;
            for (i, l) in lines.iter().enumerate() {
                // Scheduler queue is 16 deep; batches fit.
                d.try_push(fetch(i as u64, *l, false), now).unwrap();
            }
            let mut got = 0;
            while got < lines.len() {
                d.tick(now).unwrap();
                while d.pop_return().is_some() {
                    got += 1;
                }
                now = now.next();
                if now.raw() > 1_000_000 {
                    panic!("no progress");
                }
            }
            now
        };

        // 8 accesses within one row vs 8 to distinct, conflicting rows of
        // the same bank.
        let local: Vec<u64> = (0..8).map(|i| i * stride).collect();
        let banks = cfg.dram.banks as u64;
        let scatter: Vec<u64> = (0..8)
            .map(|i| (seed + 1) * stride * lines_per_row * banks * (i + 1))
            .collect();
        let t_local = run(local);
        let t_scatter = run(scatter);
        prop_assert!(
            t_local <= t_scatter,
            "row-local {t_local} should not be slower than scatter {t_scatter}"
        );
    }
}
