//! `simlint` — the workspace static-analysis pass.
//!
//! The simulator's headline guarantee is that [`run`], `run_stepped` and
//! `run_parallel` produce bit-identical reports at every thread count. The
//! runtime differential suite can only catch a nondeterminism hazard *after*
//! it changes a report; this crate catches the hazard classes statically,
//! before any cycle runs:
//!
//! * **Determinism** — no unordered hash containers, wall-clock reads,
//!   environment reads or thread-identity dependence in simulation code
//!   ([`rules::NO_HASH_COLLECTIONS`], [`rules::NO_WALL_CLOCK`],
//!   [`rules::NO_ENV`], [`rules::NO_THREAD_ID`]).
//! * **Unsafe-freedom** — no `unsafe` token anywhere, and every `crates/*`
//!   library must carry `#![forbid(unsafe_code)]`
//!   ([`rules::NO_UNSAFE`], [`rules::MISSING_FORBID_UNSAFE`]).
//! * **Port discipline** — `take_ports`/`restore_ports` must pair on all
//!   paths out of a function, protecting the parallel engine's crossbar
//!   invariant ([`rules::PORT_PAIRING`]).
//! * **Config fidelity** — the paper's Table I baseline, recorded as a
//!   machine-readable manifest, is cross-checked against the literals in
//!   `crates/config/src/gpu.rs` ([`rules::TABLE_I_DRIFT`]).
//!
//! On top of the token rules sits **simcheck**, the flow-sensitive tier
//! ([`simcheck`]): a lightweight function parser ([`parser`]) and
//! branch-aware CFG ([`cfg`]) drive three whole-unit analyses — shard
//! isolation for the epoch engine ([`rules::SHARD_ISOLATION`]), fetch-slot
//! leak freedom ([`rules::FETCH_SLOT_LEAK`]) and queue/credit deadlock
//! freedom ([`rules::QUEUE_DEADLOCK`]).
//!
//! Sites with a legitimate need (host CLIs, the one sanctioned wall-clock
//! helper) opt out per line with `// simlint::allow(<rule>, reason = "…")`;
//! the reason is mandatory and stale directives are themselves flagged.
//!
//! Run as `cargo run -p gpumem-lint -- check` (add `--format json` for the
//! machine-readable report); the tier-1 test `tests/simlint.rs` wires the
//! same pass into `cargo test -q`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod cfg;
pub mod lexer;
pub mod manifest;
pub mod parser;
pub mod report;
pub mod rules;
pub mod simcheck;

use std::path::{Path, PathBuf};

pub use report::{Diagnostic, Severity};

use allowlist::Allowlist;

/// The Table I manifest shipped with the tool, used when the workspace copy
/// (`crates/lint/table_i.json`) is absent.
pub const EMBEDDED_MANIFEST: &str = include_str!("../table_i.json");

/// Strictness options for a lint run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintOptions {
    /// Promote warnings (e.g. [`rules::UNUSED_ALLOW`]) to errors.
    pub deny_all: bool,
}

/// The result of a lint run.
#[derive(Debug)]
pub struct LintOutcome {
    /// Every finding, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintOutcome {
    /// Findings that fail the pass under `opts`.
    pub fn denied<'a>(&'a self, opts: &LintOptions) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        let deny_all = opts.deny_all;
        self.diagnostics
            .iter()
            .filter(move |d| d.is_denied(deny_all))
    }

    /// Renders every diagnostic, one per line block.
    pub fn render(&self) -> String {
        report::render(&self.diagnostics)
    }
}

/// Directory names never descended into while scanning.
const EXCLUDED_DIRS: &[&str] = &["target", "vendored", "fixtures"];

/// True when `path` is test code: it lives under a `tests/` directory.
/// Fixture files (any `fixtures/` component) are *not* test code — they
/// stand in for production sources.
pub fn is_test_path(path: &Path) -> bool {
    let mut is_test = false;
    for c in path.components() {
        let c = c.as_os_str().to_string_lossy();
        if c == "fixtures" {
            return false;
        }
        if c == "tests" {
            is_test = true;
        }
    }
    is_test
}

/// Recursively collects `.rs` files under `dir` (sorted, deterministic),
/// skipping [`EXCLUDED_DIRS`].
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().map(|n| n.to_string_lossy().into_owned());
            if name
                .as_deref()
                .is_some_and(|n| EXCLUDED_DIRS.contains(&n) || n.starts_with('.'))
            {
                continue;
            }
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// One source file queued for a lint run.
#[derive(Debug)]
pub struct FileInput {
    /// Diagnostic label, used verbatim.
    pub label: String,
    /// Full source text.
    pub source: String,
    /// Whether the file is test code (exempt from determinism rules).
    pub is_test: bool,
}

/// Lints a set of files as one unit: per-file token rules, then the
/// flow-sensitive simcheck tier over all files together (the deadlock
/// graph spans crates), then allowlist application and unused-directive
/// warnings per file.
pub fn lint_files(inputs: &[FileInput]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut units = Vec::new();
    let mut analyzed = Vec::new();
    for input in inputs {
        let (code, comments) = lexer::split_comments(lexer::lex(&input.source));
        let allows = Allowlist::collect(&input.label, &comments, &mut out);
        let file_diags = rules::run(&input.label, &code, input.is_test);
        let test_spans = rules::cfg_test_spans(&code);
        analyzed.push(simcheck::AnalyzedFile {
            label: input.label.clone(),
            parsed: parser::parse_file(&code, &test_spans, input.is_test),
        });
        units.push((input.label.as_str(), allows, file_diags));
    }
    let sim_diags = simcheck::run(&analyzed);
    for (label, mut allows, file_diags) in units {
        let for_file = sim_diags.iter().filter(|d| d.file == label).cloned();
        for d in file_diags.into_iter().chain(for_file) {
            if !allows.suppresses(d.rule, d.line) {
                out.push(d);
            }
        }
        allows.unused_warnings(label, &mut out);
    }
    out
}

/// Lints one file's source text: token rules, the simcheck tier (on this
/// file alone), allowlist application, and unused-directive warnings.
/// `label` is used verbatim in diagnostics.
pub fn lint_source(label: &str, source: &str, is_test: bool) -> Vec<Diagnostic> {
    lint_files(&[FileInput {
        label: label.to_owned(),
        source: source.to_owned(),
        is_test,
    }])
}

/// Lints explicit files/directories (no workspace-level checks). Paths are
/// used verbatim as diagnostic labels.
///
/// # Errors
///
/// Returns a message when a path cannot be read.
pub fn check_paths(paths: &[PathBuf], _opts: &LintOptions) -> Result<LintOutcome, String> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(p, &mut files);
        } else {
            files.push(p.clone());
        }
    }
    let mut inputs = Vec::new();
    for f in &files {
        let src =
            std::fs::read_to_string(f).map_err(|e| format!("cannot read {}: {e}", f.display()))?;
        inputs.push(FileInput {
            label: f.display().to_string(),
            source: src,
            is_test: is_test_path(f),
        });
    }
    let mut diagnostics = lint_files(&inputs);
    report::sort(&mut diagnostics);
    Ok(LintOutcome {
        diagnostics,
        files_scanned: files.len(),
    })
}

/// Runs the full workspace pass rooted at `root` (the directory holding the
/// workspace `Cargo.toml`): scans `crates/**` and `tests/**`, audits
/// `#![forbid(unsafe_code)]` on every `crates/*` library, and cross-checks
/// the Table I manifest against `crates/config/src/gpu.rs`.
///
/// # Errors
///
/// Returns a message when the root is not a workspace or a file cannot be
/// read.
pub fn check_workspace(root: &Path, _opts: &LintOptions) -> Result<LintOutcome, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} has no crates/ directory; pass the workspace root via --root",
            root.display()
        ));
    }

    let mut files = Vec::new();
    collect_rs_files(&crates_dir, &mut files);
    collect_rs_files(&root.join("tests"), &mut files);

    let mut inputs = Vec::new();
    for f in &files {
        let src =
            std::fs::read_to_string(f).map_err(|e| format!("cannot read {}: {e}", f.display()))?;
        inputs.push(FileInput {
            label: f.strip_prefix(root).unwrap_or(f).display().to_string(),
            source: src,
            is_test: is_test_path(f),
        });
    }
    let mut diagnostics = lint_files(&inputs);

    diagnostics.extend(audit_forbid_unsafe(root, &crates_dir)?);
    diagnostics.extend(manifest_check(root)?);

    report::sort(&mut diagnostics);
    Ok(LintOutcome {
        diagnostics,
        files_scanned: files.len(),
    })
}

/// Every `crates/*` package's `src/lib.rs` must carry
/// `#![forbid(unsafe_code)]`.
fn audit_forbid_unsafe(root: &Path, crates_dir: &Path) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();
    let entries = std::fs::read_dir(crates_dir).map_err(|e| format!("cannot list crates/: {e}"))?;
    let mut dirs: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    dirs.sort();
    for dir in dirs {
        let lib = dir.join("src/lib.rs");
        if !dir.join("Cargo.toml").is_file() || !lib.is_file() {
            continue;
        }
        let src = std::fs::read_to_string(&lib)
            .map_err(|e| format!("cannot read {}: {e}", lib.display()))?;
        let (code, _) = lexer::split_comments(lexer::lex(&src));
        if !rules::has_forbid_unsafe_attr(&code) {
            diags.push(Diagnostic::error(
                lib.strip_prefix(root).unwrap_or(&lib).display().to_string(),
                1,
                rules::MISSING_FORBID_UNSAFE,
                "library crate lacks #![forbid(unsafe_code)]",
                "add `#![forbid(unsafe_code)]` to the crate root so the promise the \
                 existing crates make cannot silently regress",
            ));
        }
    }
    Ok(diags)
}

/// Cross-checks the Table I manifest against `crates/config/src/gpu.rs`.
fn manifest_check(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let manifest_path = root.join("crates/lint/table_i.json");
    let json = match std::fs::read_to_string(&manifest_path) {
        Ok(s) => s,
        Err(_) => EMBEDDED_MANIFEST.to_owned(),
    };
    let entries = manifest::parse_manifest(&json)?;
    let gpu_rs = root.join("crates/config/src/gpu.rs");
    let src = std::fs::read_to_string(&gpu_rs)
        .map_err(|e| format!("cannot read {}: {e}", gpu_rs.display()))?;
    Ok(manifest::check_source(
        &entries,
        &gpu_rs
            .strip_prefix(root)
            .unwrap_or(&gpu_rs)
            .display()
            .to_string(),
        &src,
    ))
}
