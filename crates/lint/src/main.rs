//! The `gpumem-lint` CLI.
//!
//! ```text
//! gpumem-lint check [--root DIR] [--deny-all] [--format text|json] [--paths P…]
//! gpumem-lint rules
//! ```
//!
//! * `check` — run the workspace pass (or lint just `--paths`, e.g. a
//!   fixture, skipping the workspace-level audits). Exit 0 when clean, 1 on
//!   violations, 2 on usage errors.
//! * `--deny-all` — promote warnings (stale `simlint::allow` directives) to
//!   errors; CI runs in this mode.
//! * `--format json` — emit the machine-readable report (stable schema, see
//!   [`gpumem_lint::report::render_json`]) instead of the text rendering;
//!   the exit-code contract is unchanged.
//! * `rules` — print the rule catalogue.

use std::path::PathBuf;

use gpumem_lint::{check_paths, check_workspace, report, rules, LintOptions};

fn usage() -> ! {
    eprintln!(
        "usage: gpumem-lint check [--root DIR] [--deny-all] [--format text|json] [--paths P…] \
         | rules"
    );
    std::process::exit(2)
}

fn main() {
    // simlint::allow(no-env, reason = "host CLI argument parsing")
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = None;
    let mut deny_all = false;
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" | "rules" => command = Some(arg),
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--deny-all" => deny_all = true,
            "--format" => match it.next().as_deref() {
                Some("text") => json = false,
                Some("json") => json = true,
                _ => usage(),
            },
            "--paths" => {
                paths.extend(it.by_ref().map(PathBuf::from));
                if paths.is_empty() {
                    usage();
                }
            }
            _ => usage(),
        }
    }

    match command.as_deref() {
        Some("rules") => {
            println!("simlint rule catalogue:");
            for r in rules::RULES {
                let escape = if r.suppressible {
                    "allowlistable"
                } else {
                    "no escape hatch"
                };
                println!("  {:<22} {} [{escape}]", r.id, r.summary);
            }
        }
        Some("check") => {
            let opts = LintOptions { deny_all };
            let outcome = if paths.is_empty() {
                let root = root.unwrap_or_else(find_workspace_root);
                check_workspace(&root, &opts)
            } else {
                check_paths(&paths, &opts)
            };
            let outcome = match outcome {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            };
            let denied = outcome.denied(&opts).count();
            if json {
                print!(
                    "{}",
                    report::render_json(&outcome.diagnostics, outcome.files_scanned)
                );
            } else {
                print!("{}", outcome.render());
                let warnings = outcome.diagnostics.len() - denied;
                println!(
                    "simlint: {} files scanned, {denied} violation(s), {warnings} warning(s)",
                    outcome.files_scanned
                );
            }
            if denied > 0 {
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}

/// Walks upward from the current directory to the first directory holding
/// both `Cargo.toml` and `crates/`.
fn find_workspace_root() -> PathBuf {
    // simlint::allow(no-env, reason = "host CLI locating the workspace root")
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
