//! The machine-readable Table I manifest and its drift check.
//!
//! `crates/lint/table_i.json` records every paper baseline value by the
//! `GpuConfig` field that carries it (`dram.scheduler_queue`, `l1.mshr_entries`,
//! …). The check lexes `crates/config/src/gpu.rs`, reads the literal field
//! initializers out of the `gtx480()` constructor, and fails with a
//! [`TABLE_I_DRIFT`] diagnostic when any constant has drifted from the
//! manifest — catching silent model/config drift before a single cycle runs.

use std::collections::BTreeMap;

use serde::Deserialize;

use crate::lexer::{self, Tok, Token};
use crate::report::Diagnostic;
use crate::rules::TABLE_I_DRIFT;

/// One row of the Table I manifest.
#[derive(Debug, Clone, Deserialize)]
pub struct ManifestEntry {
    /// Which paper table the value comes from (`I(a)`, `I(b)`, `I(c)`, or
    /// `II` for structural geometry stated in the text).
    pub table: String,
    /// The paper's row label.
    pub name: String,
    /// Dotted `GpuConfig` field path holding the value (e.g.
    /// `l2.mshr_entries`).
    pub field: String,
    /// The paper's baseline value.
    pub baseline: u64,
}

/// Parses the manifest JSON.
///
/// # Errors
///
/// Returns a message when the JSON does not parse into manifest rows.
pub fn parse_manifest(json: &str) -> Result<Vec<ManifestEntry>, String> {
    serde_json::from_str(json).map_err(|e| format!("invalid Table I manifest: {e}"))
}

/// Extracts `field path -> (literal value, line)` from the `gtx480()`
/// constructor in a lexed `gpu.rs` token stream. Nested struct literals
/// (`dram: DramConfig { scheduler_queue: 16, … }`) contribute their field
/// name to the dotted path.
pub fn extract_gtx480_fields(code: &[Token]) -> BTreeMap<String, (u64, u32)> {
    let mut fields = BTreeMap::new();
    // Find `fn gtx480`.
    let Some(fn_idx) = code.windows(2).position(|w| {
        matches!(&w[0].tok, Tok::Ident(s) if s == "fn")
            && matches!(&w[1].tok, Tok::Ident(s) if s == "gtx480")
    }) else {
        return fields;
    };
    // Find the body's opening brace.
    let Some(open) = (fn_idx..code.len()).find(|&k| matches!(code[k].tok, Tok::Punct('{'))) else {
        return fields;
    };
    let mut depth = 1usize;
    // (depth inside the braces of this prefix, field name)
    let mut prefixes: Vec<(usize, String)> = Vec::new();
    let mut j = open + 1;
    while j < code.len() && depth > 0 {
        // `name : Type {` opens a nested struct literal named `name`;
        // `name : <int>` records a value. Guard against path separators so
        // `a::b` never matches.
        if let (Tok::Ident(name), Some(Tok::Punct(':'))) =
            (&code[j].tok, code.get(j + 1).map(|t| &t.tok))
        {
            let not_path = !matches!(code.get(j + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
                && !matches!(
                    j.checked_sub(1).and_then(|p| code.get(p)).map(|t| &t.tok),
                    Some(Tok::Punct(':'))
                );
            if not_path {
                match (
                    code.get(j + 2).map(|t| &t.tok),
                    code.get(j + 3).map(|t| &t.tok),
                ) {
                    (Some(Tok::Ident(_)), Some(Tok::Punct('{'))) => {
                        depth += 1;
                        prefixes.push((depth, name.clone()));
                        j += 4;
                        continue;
                    }
                    (Some(Tok::Int(v)), _) => {
                        let mut path = String::new();
                        for (_, p) in &prefixes {
                            path.push_str(p);
                            path.push('.');
                        }
                        path.push_str(name);
                        fields.insert(path, (*v, code[j + 2].line));
                        j += 3;
                        continue;
                    }
                    _ => {}
                }
            }
        }
        match code[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                if prefixes.last().is_some_and(|&(d, _)| d == depth) {
                    prefixes.pop();
                }
                depth -= 1;
            }
            _ => {}
        }
        j += 1;
    }
    fields
}

/// Checks `source` (the text of `crates/config/src/gpu.rs`) against the
/// manifest, returning one diagnostic per missing or drifted field.
pub fn check_source(entries: &[ManifestEntry], file: &str, source: &str) -> Vec<Diagnostic> {
    let (code, _) = lexer::split_comments(lexer::lex(source));
    let actual = extract_gtx480_fields(&code);
    let mut diags = Vec::new();
    for e in entries {
        match actual.get(&e.field) {
            None => diags.push(Diagnostic::error(
                file,
                1,
                TABLE_I_DRIFT,
                format!(
                    "Table {} \"{}\": field `{}` not found as a literal in gtx480()",
                    e.table, e.name, e.field
                ),
                "keep every Table I baseline a named literal in GpuConfig::gtx480() \
                 so fidelity stays statically checkable",
            )),
            Some(&(value, line)) if value != e.baseline => diags.push(Diagnostic::error(
                file,
                line,
                TABLE_I_DRIFT,
                format!(
                    "Table {} \"{}\": `{}` is {} but the paper baseline is {}",
                    e.table, e.name, e.field, value, e.baseline
                ),
                "restore the paper value, or update crates/lint/table_i.json in the \
                 same commit with a justification",
            )),
            Some(_) => {}
        }
    }
    diags
}
