//! A lightweight item/function parser over the token stream.
//!
//! simcheck's flow-sensitive analyses need more structure than a flat token
//! stream but far less than a full AST: per-function statement trees with
//! branch shapes (`if`/`match`/loops/early returns) preserved, and a flat
//! *summary* of every expression (calls with receiver chains, identifier
//! uses, `?` operators). Everything the parser does not model — closures,
//! nested items, exotic patterns — degrades to an opaque expression that
//! still harvests its calls and identifiers, so the analyses keep scanning
//! instead of giving up. That is the right failure mode for a linter.
//!
//! The parser never fails: malformed input produces fewer statements, not
//! errors.

use crate::lexer::{Tok, Token};

/// All functions found in one source file, with their statement trees.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnDef>,
}

/// One `fn` item (free or inherent/trait method).
#[derive(Debug)]
pub struct FnDef {
    /// The function name.
    pub name: String,
    /// Last path segment of the `impl` type this method lives in, if any
    /// (`impl HierChunk<'_>` → `"HierChunk"`).
    pub impl_type: Option<String>,
    /// True when the parameter list starts with a `self` receiver.
    pub has_self: bool,
    /// Non-self parameter names, in order.
    pub params: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the function is test code (`#[cfg(test)]` span or a test
    /// file) — analyses skip these.
    pub is_test: bool,
    /// The function body.
    pub body: Block,
}

/// A `{ … }` statement sequence.
#[derive(Debug, Default)]
pub struct Block {
    /// The block's statements, in order.
    pub stmts: Vec<Stmt>,
}

/// One statement, with branch structure preserved and everything else
/// flattened into [`ExprInfo`] summaries.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> = <init>;` (including `if let`-style destructuring).
    Let {
        /// Lowercase binding names from the pattern (`let (a, b)` → a, b).
        names: Vec<String>,
        /// The initializer expression, when present.
        init: Option<ExprInfo>,
        /// `let … else { … }` diverging block.
        else_block: Option<Block>,
        /// 1-based line of the `let` keyword.
        line: u32,
    },
    /// A bare expression statement.
    Expr(ExprInfo),
    /// `if`/`if let` with optional `else`.
    If {
        /// `if let` pattern bindings (empty for a plain `if`).
        pat: Vec<String>,
        /// The condition (or `if let` scrutinee).
        cond: ExprInfo,
        /// The then-branch.
        then_blk: Block,
        /// The else-branch (a chained `else if` parses as a nested `If`).
        else_blk: Option<Block>,
        /// 1-based line of the `if` keyword.
        line: u32,
    },
    /// `match` with its arms.
    Match {
        /// The matched expression.
        scrutinee: ExprInfo,
        /// The arms, in order.
        arms: Vec<Arm>,
        /// 1-based line of the `match` keyword.
        line: u32,
    },
    /// `while`/`while let`.
    While {
        /// `while let` pattern bindings (empty for a plain `while`).
        pat: Vec<String>,
        /// The loop condition (or `while let` scrutinee).
        cond: ExprInfo,
        /// The loop body.
        body: Block,
        /// 1-based line of the `while` keyword.
        line: u32,
    },
    /// `loop { … }`.
    Loop {
        /// The loop body.
        body: Block,
        /// 1-based line of the `loop` keyword.
        line: u32,
    },
    /// `for <pat> in <iter> { … }`.
    For {
        /// Pattern bindings of the loop variable.
        pat: Vec<String>,
        /// The iterated expression.
        iter: ExprInfo,
        /// The loop body.
        body: Block,
        /// 1-based line of the `for` keyword.
        line: u32,
    },
    /// `return <value>;`.
    Return {
        /// The returned expression, when present.
        value: Option<ExprInfo>,
        /// 1-based line of the `return` keyword.
        line: u32,
    },
    /// `break;` (labels and values are not modelled).
    Break {
        /// 1-based line of the `break` keyword.
        line: u32,
    },
    /// `continue;`.
    Continue {
        /// 1-based line of the `continue` keyword.
        line: u32,
    },
    /// A bare `{ … }` or `unsafe { … }` block.
    Nested(Block),
}

/// One `match` arm; a guard expression is folded in as the body's first
/// statement (flow-equivalent for the analyses).
#[derive(Debug)]
pub struct Arm {
    /// Lowercase binding names of the arm pattern.
    pub pat: Vec<String>,
    /// The arm body (expression arms become a one-statement block).
    pub body: Block,
    /// 1-based line of the arm pattern.
    pub line: u32,
}

/// Flat summary of an expression: enough for use/def and call analysis,
/// deliberately not a tree.
#[derive(Debug, Default)]
pub struct ExprInfo {
    /// Every call site found in the expression.
    pub calls: Vec<Call>,
    /// Every non-keyword identifier with its line (includes method names —
    /// a harmless over-approximation for "is this variable used here").
    pub idents: Vec<(String, u32)>,
    /// True when the expression contains a `?` operator.
    pub has_try: bool,
    /// 1-based line where the expression starts.
    pub line: u32,
}

/// One call site inside an expression.
#[derive(Debug)]
pub struct Call {
    /// Receiver chain for method calls: `self.arena.insert(f)` →
    /// `["self", "arena"]`. `"()"` marks an unresolvable link (a chained
    /// call result). Empty for free/path calls.
    pub recv: Vec<String>,
    /// Path segments for path calls: `SimQueue::new(…)` →
    /// `["SimQueue", "new"]`. Empty for plain method calls.
    pub path: Vec<String>,
    /// The called method or function name (last path segment).
    pub method: String,
    /// Struct-literal field or assignment target feeding this call:
    /// `miss_queue: SimQueue::new(…)` / `self.q = SimQueue::new(…)` →
    /// `Some("miss_queue")` / `Some("q")`.
    pub field_hint: Option<String>,
    /// Identifiers appearing anywhere in the argument list.
    pub arg_idents: Vec<String>,
    /// String-literal arguments, in order of appearance.
    pub args_str: Vec<String>,
    /// Token index where the receiver chain starts (within the scanned
    /// statement slice), for nesting tests.
    pub start: usize,
    /// Token index one past the closing paren.
    pub end: usize,
    /// 1-based line of the method-name token.
    pub line: u32,
    /// 1-based column of the method-name token.
    pub col: u32,
    /// True when the call's result is dropped on the floor: the whole
    /// statement is `recv.method(…);` with nothing consuming the value.
    pub discarded: bool,
}

impl ExprInfo {
    /// True if `name` appears anywhere in this expression.
    pub fn uses(&self, name: &str) -> bool {
        self.idents.iter().any(|(n, _)| n == name)
    }
}

const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "loop", "for", "in", "let", "mut", "ref", "return", "break",
    "continue", "fn", "self", "Self", "pub", "use", "mod", "impl", "struct", "enum", "trait",
    "where", "as", "dyn", "move", "unsafe", "async", "await", "const", "static", "type", "crate",
    "super", "true", "false",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parses a comment-free token stream into per-function statement trees.
/// `test_spans` are 1-based inclusive line ranges of `#[cfg(test)]` items;
/// functions starting inside one are marked `is_test`.
pub fn parse_file(code: &[Token], test_spans: &[(u32, u32)], file_is_test: bool) -> ParsedFile {
    let mut fns = Vec::new();
    // (impl type name, brace depth the impl body opened at)
    let mut impl_stack: Vec<(Option<String>, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < code.len() {
        match &code[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                if let Some(&(_, d)) = impl_stack.last() {
                    if depth <= d {
                        impl_stack.pop();
                    }
                }
                i += 1;
            }
            Tok::Ident(w) if w == "impl" => {
                let (ty, j, has_body) = parse_impl_header(code, i);
                if has_body {
                    impl_stack.push((ty, depth));
                    depth += 1;
                    i = j + 1;
                } else {
                    i = j;
                }
            }
            Tok::Ident(w) if w == "fn" => {
                let start_line = code[i].line;
                let impl_ty = impl_stack.last().and_then(|(t, _)| t.clone());
                let (def, next) = parse_fn(code, i, impl_ty);
                if let Some(mut f) = def {
                    f.is_test = file_is_test
                        || test_spans
                            .iter()
                            .any(|&(a, b)| start_line >= a && start_line <= b);
                    fns.push(f);
                }
                i = next;
            }
            _ => i += 1,
        }
    }
    ParsedFile { fns }
}

fn ident_at(code: &[Token], i: usize) -> Option<&str> {
    match code.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(code: &[Token], i: usize, c: char) -> bool {
    matches!(code.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Skips a balanced `<…>` generic group starting at `i` (which must be
/// `<`). `->` arrows inside (`Fn() -> T` bounds) do not close the group.
fn skip_angles(code: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < code.len() {
        if punct_at(code, j, '<') {
            depth += 1;
        } else if punct_at(code, j, '>') && !(j > 0 && punct_at(code, j - 1, '-')) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if punct_at(code, j, '{') || punct_at(code, j, ';') {
            // Malformed generics; bail before eating a body.
            return j;
        }
        j += 1;
    }
    j
}

/// From `impl` at `i`, returns (type name, index of the body `{` or where
/// scanning stopped, whether a body was found).
fn parse_impl_header(code: &[Token], i: usize) -> (Option<String>, usize, bool) {
    let mut j = i + 1;
    if punct_at(code, j, '<') {
        j = skip_angles(code, j);
    }
    let mut ty: Option<String> = None;
    while j < code.len() {
        match &code[j].tok {
            Tok::Punct('{') => return (ty, j, true),
            Tok::Punct(';') => return (ty, j + 1, false),
            Tok::Punct('<') => j = skip_angles(code, j),
            Tok::Ident(w) if w == "where" => {
                // Type already captured; scan to the body.
                while j < code.len() && !punct_at(code, j, '{') {
                    if punct_at(code, j, ';') {
                        return (ty, j + 1, false);
                    }
                    j += 1;
                }
            }
            Tok::Ident(w) if w == "for" => {
                // `impl Trait for Type`: the segments after `for` win.
                ty = None;
                j += 1;
            }
            Tok::Ident(w) => {
                ty = Some(w.clone());
                j += 1;
            }
            _ => j += 1,
        }
    }
    (ty, j, false)
}

/// From `fn` at `i`, parses one function; returns (parsed def or None, next
/// scan index). Trait method declarations (no body) return None.
fn parse_fn(code: &[Token], i: usize, impl_type: Option<String>) -> (Option<FnDef>, usize) {
    let line = code[i].line;
    let mut j = i + 1;
    let name = match ident_at(code, j) {
        Some(n) => n.to_string(),
        None => return (None, i + 1),
    };
    j += 1;
    if punct_at(code, j, '<') {
        j = skip_angles(code, j);
    }
    if !punct_at(code, j, '(') {
        return (None, j);
    }
    // Parameter list: names are idents at paren depth 1 followed by `:`.
    let mut params = Vec::new();
    let mut has_self = false;
    let mut pd = 0i32;
    while j < code.len() {
        match &code[j].tok {
            Tok::Punct('(') => pd += 1,
            Tok::Punct(')') => {
                pd -= 1;
                if pd == 0 {
                    j += 1;
                    break;
                }
            }
            Tok::Ident(w) if pd == 1 && w == "self" => has_self = true,
            Tok::Ident(w)
                if pd == 1
                    && !is_keyword(w)
                    && punct_at(code, j + 1, ':')
                    && !punct_at(code, j + 2, ':') =>
            {
                params.push(w.clone());
            }
            _ => {}
        }
        j += 1;
    }
    // Return type / where clause: scan to the body `{` (or `;` for a
    // bodyless trait declaration) at bracket depth 0.
    let mut bd = 0i32;
    while j < code.len() {
        match &code[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => bd += 1,
            Tok::Punct(')') | Tok::Punct(']') => bd -= 1,
            Tok::Punct('{') if bd == 0 => break,
            Tok::Punct(';') if bd == 0 => return (None, j + 1),
            _ => {}
        }
        j += 1;
    }
    if j >= code.len() {
        return (None, j);
    }
    let (body, next) = parse_block(code, j);
    (
        Some(FnDef {
            name,
            impl_type,
            has_self,
            params,
            line,
            is_test: false,
            body,
        }),
        next,
    )
}

/// Parses a `{ … }` block whose opening brace is at `i`; returns (block,
/// index past the closing brace).
fn parse_block(code: &[Token], i: usize) -> (Block, usize) {
    let mut stmts = Vec::new();
    let mut j = i + 1;
    while j < code.len() {
        match &code[j].tok {
            Tok::Punct('}') => return (Block { stmts }, j + 1),
            Tok::Punct(';') => j += 1,
            Tok::Punct('{') => {
                let (blk, next) = parse_block(code, j);
                stmts.push(Stmt::Nested(blk));
                j = next;
            }
            Tok::Punct('#') => j = skip_attribute(code, j),
            Tok::Ident(w) => {
                let line = code[j].line;
                match w.as_str() {
                    "let" => {
                        let (s, next) = parse_let(code, j);
                        stmts.push(s);
                        j = next;
                    }
                    "if" => {
                        let (s, next) = parse_if(code, j);
                        stmts.push(s);
                        j = next;
                    }
                    "match" => {
                        let (s, next) = parse_match(code, j);
                        stmts.push(s);
                        j = next;
                    }
                    "while" => {
                        let (s, next) = parse_while(code, j);
                        stmts.push(s);
                        j = next;
                    }
                    "loop" if punct_at(code, j + 1, '{') => {
                        let (body, next) = parse_block(code, j + 1);
                        stmts.push(Stmt::Loop { body, line });
                        j = next;
                    }
                    "for" => {
                        let (s, next) = parse_for(code, j);
                        stmts.push(s);
                        j = next;
                    }
                    "return" => {
                        let (range, next) = scan_to_semi(code, j + 1);
                        let value = if range.is_empty() {
                            None
                        } else {
                            Some(scan_expr(code, range, false))
                        };
                        stmts.push(Stmt::Return { value, line });
                        j = next;
                    }
                    "break" => {
                        let (_, next) = scan_to_semi(code, j + 1);
                        stmts.push(Stmt::Break { line });
                        j = next;
                    }
                    "continue" => {
                        let (_, next) = scan_to_semi(code, j + 1);
                        stmts.push(Stmt::Continue { line });
                        j = next;
                    }
                    "unsafe" if punct_at(code, j + 1, '{') => {
                        let (blk, next) = parse_block(code, j + 1);
                        stmts.push(Stmt::Nested(blk));
                        j = next;
                    }
                    "fn" | "struct" | "enum" | "impl" | "trait" | "mod" | "use" | "type"
                    | "macro_rules" | "extern" | "pub" => {
                        j = skip_item(code, j);
                    }
                    _ => {
                        let (s, next) = parse_expr_stmt(code, j);
                        stmts.push(s);
                        j = next;
                    }
                }
            }
            _ => {
                let (s, next) = parse_expr_stmt(code, j);
                stmts.push(s);
                j = next;
            }
        }
    }
    (Block { stmts }, j)
}

/// Skips a `#[…]` or `#![…]` attribute.
fn skip_attribute(code: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if punct_at(code, j, '!') {
        j += 1;
    }
    if !punct_at(code, j, '[') {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < code.len() {
        match &code[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skips a nested item (fn/struct/const/…): consumes to the terminating
/// `;`, or over the balanced `{…}` body.
fn skip_item(code: &[Token], i: usize) -> usize {
    let mut j = i;
    let mut bd = 0i32;
    while j < code.len() {
        match &code[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => bd += 1,
            Tok::Punct(')') | Tok::Punct(']') => bd -= 1,
            Tok::Punct(';') if bd == 0 => return j + 1,
            Tok::Punct('{') if bd == 0 => {
                let mut depth = 0i32;
                while j < code.len() {
                    match &code[j].tok {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return j + 1;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return j;
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Scans from `i` to the statement end: `;` at depth 0 (consumed) or `}` at
/// depth 0 (not consumed — a trailing expression). Returns (token range,
/// next index).
fn scan_to_semi(code: &[Token], i: usize) -> (std::ops::Range<usize>, usize) {
    let mut depth = 0i32;
    let mut j = i;
    while j < code.len() {
        match &code[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('}') => {
                if depth == 0 {
                    return (i..j, j);
                }
                depth -= 1;
            }
            Tok::Punct(';') if depth == 0 => return (i..j, j + 1),
            _ => {}
        }
        j += 1;
    }
    (i..j, j)
}

/// Lowercase binding names from a pattern token range (`Some(x)` → x;
/// uppercase path segments and keywords are not bindings).
fn pattern_names(code: &[Token], range: std::ops::Range<usize>) -> Vec<String> {
    let mut names = Vec::new();
    for k in range {
        if let Tok::Ident(w) = &code[k].tok {
            if !is_keyword(w)
                && w != "_"
                && w.chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
                && !punct_at(code, k + 1, ':')
            {
                // `field: binding` struct patterns: the field name is
                // followed by `:` and is not a binding. Shorthand
                // `Struct { field }` binds `field`, which this keeps.
                names.push(w.clone());
            }
        }
    }
    names
}

fn parse_let(code: &[Token], i: usize) -> (Stmt, usize) {
    let line = code[i].line;
    // Pattern (and optional type): up to the first top-level `=` that is
    // not `==`, or the `;` of an initializer-less let.
    let mut depth = 0i32;
    let mut j = i + 1;
    let mut eq = None;
    while j < code.len() {
        match &code[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(';') if depth == 0 => break,
            Tok::Punct('=') if depth == 0 && !punct_at(code, j + 1, '=') => {
                eq = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    // Binding names come from the pattern part, before any `:` type
    // annotation at depth 0.
    let pat_end = {
        let mut d = 0i32;
        let mut end = eq.unwrap_or(j);
        for k in i + 1..eq.unwrap_or(j) {
            match &code[k].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => d += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => d -= 1,
                Tok::Punct(':')
                    if d == 0 && !punct_at(code, k + 1, ':') && !punct_at(code, k - 1, ':') =>
                {
                    end = k;
                    break;
                }
                _ => {}
            }
        }
        end
    };
    let mut names = pattern_names(code, i + 1..pat_end);
    // A bare `let _ = …` is an explicit drop: surface the wildcard so the
    // analyses can treat the value as discarded rather than escaped.
    if names.is_empty() && pat_end == i + 2 && matches!(&code[i + 1].tok, Tok::Ident(w) if w == "_")
    {
        names.push("_".to_owned());
    }
    let Some(eq) = eq else {
        return (
            Stmt::Let {
                names,
                init: None,
                else_block: None,
                line,
            },
            j + 1,
        );
    };
    // Initializer: to `;` at depth 0, or a `let … else` block. The
    // let-else `else` directly follows a value token; an if/else inside the
    // initializer always follows `}`.
    let mut depth = 0i32;
    let mut k = eq + 1;
    while k < code.len() {
        match &code[k].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('}') => {
                if depth == 0 {
                    // Unclosed statement (trailing expr) — treat as init.
                    let init = scan_expr(code, eq + 1..k, false);
                    return (
                        Stmt::Let {
                            names,
                            init: Some(init),
                            else_block: None,
                            line,
                        },
                        k,
                    );
                }
                depth -= 1;
            }
            Tok::Punct(';') if depth == 0 => {
                // The binding consumes the value: never `discarded`.
                let init = scan_expr(code, eq + 1..k, false);
                return (
                    Stmt::Let {
                        names,
                        init: Some(init),
                        else_block: None,
                        line,
                    },
                    k + 1,
                );
            }
            Tok::Ident(w)
                if w == "else"
                    && depth == 0
                    && k > eq + 1
                    && !punct_at(code, k - 1, '}')
                    && punct_at(code, k + 1, '{') =>
            {
                let init = scan_expr(code, eq + 1..k, false);
                let (blk, next) = parse_block(code, k + 1);
                let next = if punct_at(code, next, ';') {
                    next + 1
                } else {
                    next
                };
                return (
                    Stmt::Let {
                        names,
                        init: Some(init),
                        else_block: Some(blk),
                        line,
                    },
                    next,
                );
            }
            _ => {}
        }
        k += 1;
    }
    let init = scan_expr(code, eq + 1..k, false);
    (
        Stmt::Let {
            names,
            init: Some(init),
            else_block: None,
            line,
        },
        k,
    )
}

/// Scans a control-flow head expression from `i` to the body `{` at
/// bracket depth 0. Returns (range, index of the `{`).
fn scan_to_brace(code: &[Token], i: usize) -> (std::ops::Range<usize>, usize) {
    let mut depth = 0i32;
    let mut j = i;
    while j < code.len() {
        match &code[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('{') if depth == 0 => return (i..j, j),
            Tok::Punct(';') if depth == 0 => return (i..j, j),
            _ => {}
        }
        j += 1;
    }
    (i..j, j)
}

/// Splits an optional `let <pat> = ` prefix off a condition; returns
/// (pattern names, start of the scrutinee expression).
fn split_let_pattern(code: &[Token], i: usize) -> (Vec<String>, usize) {
    if ident_at(code, i) != Some("let") {
        return (Vec::new(), i);
    }
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < code.len() {
        match &code[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('=') if depth == 0 && !punct_at(code, j + 1, '=') => {
                return (pattern_names(code, i + 1..j), j + 1);
            }
            Tok::Punct('{') if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    (Vec::new(), i)
}

fn parse_if(code: &[Token], i: usize) -> (Stmt, usize) {
    let line = code[i].line;
    let (pat, cond_start) = split_let_pattern(code, i + 1);
    let (range, brace) = scan_to_brace(code, cond_start);
    let cond = scan_expr(code, range, false);
    if !punct_at(code, brace, '{') {
        return (Stmt::Expr(cond), brace);
    }
    let (then_blk, mut next) = parse_block(code, brace);
    let mut else_blk = None;
    if ident_at(code, next) == Some("else") {
        if ident_at(code, next + 1) == Some("if") {
            let (nested, after) = parse_if(code, next + 1);
            else_blk = Some(Block {
                stmts: vec![nested],
            });
            next = after;
        } else if punct_at(code, next + 1, '{') {
            let (blk, after) = parse_block(code, next + 1);
            else_blk = Some(blk);
            next = after;
        }
    }
    (
        Stmt::If {
            pat,
            cond,
            then_blk,
            else_blk,
            line,
        },
        next,
    )
}

fn parse_while(code: &[Token], i: usize) -> (Stmt, usize) {
    let line = code[i].line;
    let (pat, cond_start) = split_let_pattern(code, i + 1);
    let (range, brace) = scan_to_brace(code, cond_start);
    let cond = scan_expr(code, range, false);
    if !punct_at(code, brace, '{') {
        return (Stmt::Expr(cond), brace);
    }
    let (body, next) = parse_block(code, brace);
    (
        Stmt::While {
            pat,
            cond,
            body,
            line,
        },
        next,
    )
}

fn parse_for(code: &[Token], i: usize) -> (Stmt, usize) {
    let line = code[i].line;
    // Pattern up to top-level `in`.
    let mut depth = 0i32;
    let mut j = i + 1;
    let mut in_pos = None;
    while j < code.len() {
        match &code[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Ident(w) if w == "in" && depth == 0 => {
                in_pos = Some(j);
                break;
            }
            Tok::Punct('{') if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    let Some(in_pos) = in_pos else {
        let (range, brace) = scan_to_brace(code, i + 1);
        return (Stmt::Expr(scan_expr(code, range, false)), brace);
    };
    let pat = pattern_names(code, i + 1..in_pos);
    let (range, brace) = scan_to_brace(code, in_pos + 1);
    let iter = scan_expr(code, range, false);
    if !punct_at(code, brace, '{') {
        return (Stmt::Expr(iter), brace);
    }
    let (body, next) = parse_block(code, brace);
    (
        Stmt::For {
            pat,
            iter,
            body,
            line,
        },
        next,
    )
}

fn parse_match(code: &[Token], i: usize) -> (Stmt, usize) {
    let line = code[i].line;
    let (range, brace) = scan_to_brace(code, i + 1);
    let scrutinee = scan_expr(code, range, false);
    if !punct_at(code, brace, '{') {
        return (Stmt::Expr(scrutinee), brace);
    }
    let mut arms = Vec::new();
    let mut j = brace + 1;
    while j < code.len() && !punct_at(code, j, '}') {
        if punct_at(code, j, '#') {
            j = skip_attribute(code, j);
            continue;
        }
        let arm_line = code[j].line;
        // Pattern (and optional guard) up to the `=>` at depth 0.
        let mut depth = 0i32;
        let mut k = j;
        let mut arrow = None;
        let mut guard_if = None;
        while k < code.len() {
            match &code[k].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                Tok::Punct('=') if depth == 0 && punct_at(code, k + 1, '>') => {
                    arrow = Some(k);
                    break;
                }
                Tok::Ident(w) if w == "if" && depth == 0 && guard_if.is_none() => {
                    guard_if = Some(k);
                }
                _ => {}
            }
            k += 1;
        }
        let Some(arrow) = arrow else { break };
        let pat_end = guard_if.unwrap_or(arrow);
        let pat = pattern_names(code, j..pat_end);
        let mut body_stmts = Vec::new();
        if let Some(g) = guard_if {
            body_stmts.push(Stmt::Expr(scan_expr(code, g + 1..arrow, false)));
        }
        let body_start = arrow + 2;
        let next = if punct_at(code, body_start, '{') {
            let (blk, after) = parse_block(code, body_start);
            body_stmts.extend(blk.stmts);
            if punct_at(code, after, ',') {
                after + 1
            } else {
                after
            }
        } else {
            // Expression arm: to `,` or the match's closing `}` at depth 0.
            let mut depth = 0i32;
            let mut k = body_start;
            while k < code.len() {
                match &code[k].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                    Tok::Punct('}') => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    Tok::Punct(',') if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            // Control-flow expression arms keep their statement shape so the
            // CFG sees the break/continue/return.
            match ident_at(code, body_start) {
                Some("return") => {
                    let value = if body_start + 1 < k {
                        Some(scan_expr(code, body_start + 1..k, false))
                    } else {
                        None
                    };
                    body_stmts.push(Stmt::Return {
                        value,
                        line: code[body_start].line,
                    });
                }
                Some("break") => body_stmts.push(Stmt::Break {
                    line: code[body_start].line,
                }),
                Some("continue") => body_stmts.push(Stmt::Continue {
                    line: code[body_start].line,
                }),
                _ => body_stmts.push(Stmt::Expr(scan_expr(code, body_start..k, false))),
            }
            if punct_at(code, k, ',') {
                k + 1
            } else {
                k
            }
        };
        arms.push(Arm {
            pat,
            body: Block { stmts: body_stmts },
            line: arm_line,
        });
        j = next;
    }
    let end = if punct_at(code, j, '}') { j + 1 } else { j };
    (
        Stmt::Match {
            scrutinee,
            arms,
            line,
        },
        end,
    )
}

fn parse_expr_stmt(code: &[Token], i: usize) -> (Stmt, usize) {
    let (range, mut next) = scan_to_semi(code, i);
    let semi = next > range.end; // a `;` was consumed
    let expr = scan_expr(code, range, semi);
    if next == i {
        // Zero progress on a stray token: skip it so the block loop can't
        // spin forever.
        next = i + 1;
    }
    (Stmt::Expr(expr), next)
}

/// Matching `)` for the `(` at `open`.
fn close_paren(code: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < code.len() {
        match &code[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j.saturating_sub(1)
}

/// Builds the flat expression summary for a token range. `stmt_semi` marks
/// a semicolon-terminated expression statement (needed to tell a discarded
/// call result from a tail expression).
fn scan_expr(code: &[Token], range: std::ops::Range<usize>, stmt_semi: bool) -> ExprInfo {
    let start = range.start;
    let end = range.end;
    let mut info = ExprInfo {
        line: code.get(start).map_or(0, |t| t.line),
        ..Default::default()
    };
    let mut k = start;
    while k < end {
        match &code[k].tok {
            Tok::Punct('?') => info.has_try = true,
            Tok::Ident(name) => {
                if !is_keyword(name) {
                    info.idents.push((name.clone(), code[k].line));
                }
                let is_macro = punct_at(code, k + 1, '!');
                if punct_at(code, k + 1, '(') && !is_macro && !is_keyword(name) {
                    info.calls.push(build_call(code, start, end, k, stmt_semi));
                }
            }
            _ => {}
        }
        k += 1;
    }
    info
}

/// Builds a [`Call`] for the callee identifier at `k` (whose next token is
/// the opening paren).
fn build_call(code: &[Token], start: usize, end: usize, k: usize, stmt_semi: bool) -> Call {
    let method = match &code[k].tok {
        Tok::Ident(n) => n.clone(),
        _ => String::new(),
    };
    let open = k + 1;
    let close = close_paren(code, open);
    let mut recv = Vec::new();
    let mut path = Vec::new();
    let mut chain_start = k;
    if k >= 2 && punct_at(code, k - 1, ':') && punct_at(code, k - 2, ':') {
        // Path call: walk `Seg::Seg::name` backward.
        path.push(method.clone());
        let mut m = k;
        while m >= 3 && punct_at(code, m - 1, ':') && punct_at(code, m - 2, ':') {
            if let Some(seg) = ident_at(code, m - 3) {
                path.insert(0, seg.to_string());
                chain_start = m - 3;
                m -= 3;
            } else {
                break;
            }
        }
    } else if k >= 1 && punct_at(code, k - 1, '.') {
        // Method call: walk the receiver chain backward.
        let mut m = k;
        while m >= 1 && punct_at(code, m - 1, '.') {
            if m >= 2 {
                match &code[m - 2].tok {
                    Tok::Ident(seg) => {
                        recv.insert(0, seg.clone());
                        chain_start = m - 2;
                        m -= 2;
                    }
                    Tok::Punct(')') | Tok::Punct(']') => {
                        recv.insert(0, "()".to_string());
                        chain_start = m - 2;
                        break;
                    }
                    Tok::Int(_) => {
                        // Tuple field access (`pair.0.push(…)`).
                        recv.insert(0, "0".to_string());
                        chain_start = m - 2;
                        m -= 2;
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
    }
    // Field/assignment hint: `field: Call(…)` or `field = Call(…)`.
    let mut field_hint = None;
    if chain_start >= 2 {
        let before = chain_start - 1;
        let colon =
            punct_at(code, before, ':') && !(chain_start >= 3 && punct_at(code, before - 1, ':'));
        // A plain `=` (not `==`, `!=`, `<=`, `>=` or a compound assign).
        let assign = punct_at(code, before, '=')
            && !matches!(
                code[before - 1].tok,
                Tok::Punct('=')
                    | Tok::Punct('!')
                    | Tok::Punct('<')
                    | Tok::Punct('>')
                    | Tok::Punct('+')
                    | Tok::Punct('-')
                    | Tok::Punct('*')
                    | Tok::Punct('/')
                    | Tok::Punct('%')
                    | Tok::Punct('&')
                    | Tok::Punct('|')
                    | Tok::Punct('^')
            );
        if colon || assign {
            if let Some(f) = ident_at(code, before - 1) {
                field_hint = Some(f.to_string());
            }
        }
    }
    let mut arg_idents = Vec::new();
    let mut args_str = Vec::new();
    for t in &code[open + 1..close] {
        match &t.tok {
            Tok::Ident(n) if !is_keyword(n) => arg_idents.push(n.clone()),
            Tok::Str(s) => args_str.push(s.clone()),
            _ => {}
        }
    }
    let discarded = stmt_semi && chain_start == start && close + 1 >= end;
    Call {
        recv,
        path,
        method,
        field_hint,
        arg_idents,
        args_str,
        start: chain_start,
        end: close + 1,
        line: code[k].line,
        col: code[k].col,
        discarded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, split_comments};

    fn parse(src: &str) -> ParsedFile {
        let (code, _) = split_comments(lex(src));
        parse_file(&code, &[], false)
    }

    #[test]
    fn fn_and_impl_context() {
        let p = parse("impl Foo { fn go(&mut self, n: u32) {} }\nfn free(x: u32) {}");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "go");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Foo"));
        assert!(p.fns[0].has_self);
        assert_eq!(p.fns[0].params, ["n"]);
        assert_eq!(p.fns[1].impl_type, None);
    }

    #[test]
    fn call_receiver_chains() {
        let p = parse("fn f(&mut self) { self.arena.insert(fetch); }");
        let Stmt::Expr(e) = &p.fns[0].body.stmts[0] else {
            panic!("expr stmt")
        };
        assert_eq!(e.calls.len(), 1);
        assert_eq!(e.calls[0].recv, ["self", "arena"]);
        assert_eq!(e.calls[0].method, "insert");
        assert!(e.calls[0].discarded);
    }

    #[test]
    fn path_calls_keep_string_args() {
        let p = parse(r#"fn f() { let q = SimQueue::new("l2_access", 8); }"#);
        let Stmt::Let { init: Some(e), .. } = &p.fns[0].body.stmts[0] else {
            panic!("let stmt")
        };
        assert_eq!(e.calls[0].path, ["SimQueue", "new"]);
        assert_eq!(e.calls[0].args_str, ["l2_access"]);
    }
}
