//! The `// simlint::allow(<rule>, reason = "…")` escape hatch.
//!
//! A directive suppresses findings of the named rule on its own line (for
//! trailing comments) and on the line immediately below (for standalone
//! comment lines). The reason is mandatory and must be non-empty: an
//! allowlisted site with no stated justification is itself a violation
//! ([`crate::rules::ALLOW_SYNTAX`]), and a directive that suppresses nothing
//! is flagged ([`crate::rules::UNUSED_ALLOW`]) so stale escapes cannot
//! accumulate.

use crate::lexer::{Tok, Token};
use crate::report::Diagnostic;
use crate::rules::{self, ALLOW_SYNTAX, UNUSED_ALLOW};

/// One parsed `simlint::allow` directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// The rule id the directive suppresses.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Line of the comment carrying the directive.
    pub line: u32,
    used: bool,
}

/// All directives of one file, plus syntax diagnostics for malformed ones.
#[derive(Debug, Default)]
pub struct Allowlist {
    directives: Vec<Directive>,
}

impl Allowlist {
    /// Parses every directive out of a file's comment tokens. Malformed
    /// directives become [`ALLOW_SYNTAX`] errors in `diags`.
    pub fn collect(file: &str, comments: &[Token], diags: &mut Vec<Diagnostic>) -> Self {
        let mut directives = Vec::new();
        for t in comments {
            let Tok::Comment(text) = &t.tok else { continue };
            let trimmed = text.trim();
            let Some(rest) = trimmed.strip_prefix("simlint::allow") else {
                continue;
            };
            match parse_directive(rest) {
                Ok((rule, reason)) => match rules::rule_info(&rule) {
                    Some(info) if info.suppressible => directives.push(Directive {
                        rule,
                        reason,
                        line: t.line,
                        used: false,
                    }),
                    Some(_) => diags.push(Diagnostic::error(
                        file,
                        t.line,
                        ALLOW_SYNTAX,
                        format!("rule `{rule}` cannot be allowlisted"),
                        "no-unsafe and the workspace-level checks have no escape hatch",
                    )),
                    None => diags.push(Diagnostic::error(
                        file,
                        t.line,
                        ALLOW_SYNTAX,
                        format!("unknown rule `{rule}` in simlint::allow"),
                        "run `gpumem-lint rules` for the catalogue of rule ids",
                    )),
                },
                Err(msg) => diags.push(Diagnostic::error(
                    file,
                    t.line,
                    ALLOW_SYNTAX,
                    msg,
                    "write `// simlint::allow(<rule>, reason = \"why this site is \
                     exempt\")`",
                )),
            }
        }
        Allowlist { directives }
    }

    /// True when a finding of `rule` at `line` is covered by a directive;
    /// marks the directive used.
    pub fn suppresses(&mut self, rule: &str, line: u32) -> bool {
        for d in &mut self.directives {
            if d.rule == rule && (d.line == line || d.line + 1 == line) {
                d.used = true;
                return true;
            }
        }
        false
    }

    /// Emits an [`UNUSED_ALLOW`] warning for every directive that never
    /// suppressed a finding.
    pub fn unused_warnings(&self, file: &str, diags: &mut Vec<Diagnostic>) {
        for d in &self.directives {
            if !d.used {
                diags.push(Diagnostic::warning(
                    file,
                    d.line,
                    UNUSED_ALLOW,
                    format!(
                        "stale simlint::allow({rule}): no {rule} finding on line {l} or {n}",
                        rule = d.rule,
                        l = d.line,
                        n = d.line + 1
                    ),
                    "the rule this directive suppresses no longer fires here; delete the \
                     stale directive",
                ));
            }
        }
    }

    /// The parsed directives (for tooling and tests).
    pub fn directives(&self) -> &[Directive] {
        &self.directives
    }
}

/// Parses `(<rule>, reason = "…")`, returning (rule, reason).
fn parse_directive(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(inner) = rest
        .strip_prefix('(')
        .and_then(|s| s.rfind(')').map(|end| &s[..end]))
    else {
        return Err("simlint::allow must be followed by `(<rule>, reason = \"…\")`".into());
    };
    let Some((rule, reason_part)) = inner.split_once(',') else {
        return Err("simlint::allow requires a reason: `(<rule>, reason = \"…\")`".into());
    };
    let rule = rule.trim().to_owned();
    if rule.is_empty() {
        return Err("simlint::allow is missing a rule id".into());
    }
    let reason_part = reason_part.trim();
    let Some(value) = reason_part
        .strip_prefix("reason")
        .map(|s| s.trim_start())
        .and_then(|s| s.strip_prefix('='))
        .map(|s| s.trim())
    else {
        return Err("simlint::allow requires `reason = \"…\"` after the rule id".into());
    };
    let reason = value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| "simlint::allow reason must be a quoted string".to_owned())?;
    if reason.trim().is_empty() {
        return Err("simlint::allow reason must not be empty".into());
    }
    Ok((rule, reason.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rule_and_reason() {
        let (rule, reason) =
            parse_directive("(no-env, reason = \"host CLI argument parsing\")").unwrap();
        assert_eq!(rule, "no-env");
        assert_eq!(reason, "host CLI argument parsing");
    }

    #[test]
    fn rejects_missing_or_empty_reason() {
        assert!(parse_directive("(no-env)").is_err());
        assert!(parse_directive("(no-env, reason = \"\")").is_err());
        assert!(parse_directive("(no-env, because = \"x\")").is_err());
    }
}
