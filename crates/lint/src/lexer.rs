//! A hand-rolled Rust lexer.
//!
//! The build environment is offline, so `syn` is unavailable; simlint's rules
//! only need a faithful *token* stream, not a syntax tree. The lexer handles
//! everything that could make naive text matching lie about code:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * cooked strings with escapes, raw strings with arbitrary `#` fences
//!   (`r"…"`, `r##"…"##`), byte strings (`b"…"`, `br#"…"#`),
//! * char and byte-char literals, including the `'a` lifetime vs `'a'` char
//!   ambiguity,
//! * raw identifiers (`r#match`),
//! * numeric literals with radix prefixes, `_` separators and type suffixes
//!   (integers keep their value so the Table I manifest check can read the
//!   `gtx480()` field initializers),
//! * a leading `#!/…` shebang line (skipped; `#![…]` inner attributes are
//!   not shebangs and still lex as punctuation).
//!
//! Comments are kept as tokens because the `// simlint::allow(…)` escape
//! hatch lives in them; rule matching runs on the comment-free stream.

/// A lexical token plus the 1-based source position it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind (and payload where rules need one).
    pub tok: Tok,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

/// Token kinds produced by [`lex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`HashMap`, `fn`, `unsafe`, …). Raw
    /// identifiers are unescaped: `r#match` lexes as `Ident("match")`.
    Ident(String),
    /// A lifetime such as `'a` or `'static` (payload without the quote).
    Lifetime(String),
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`. The
    /// payload is the literal's content (escapes left unprocessed). String
    /// text never triggers a *token* lint — only the simcheck resource
    /// discovery reads it, to learn queue names from `SimQueue::new("…")`.
    Str(String),
    /// A char or byte-char literal (`'x'`, `'\n'`, `b'\0'`).
    Char,
    /// An integer literal whose value fits in `u64` (after stripping `_`
    /// separators and a type suffix).
    Int(u64),
    /// A float literal, or an integer too large for `u64`.
    Float,
    /// A single punctuation character; multi-character operators arrive as
    /// consecutive tokens (`::` is `Punct(':') Punct(':')`).
    Punct(char),
    /// A line or block comment; payload is the text without delimiters.
    Comment(String),
}

/// Lexes `src` into a token stream. Never fails: unterminated literals and
/// stray characters degrade to best-effort tokens, which is the right
/// behaviour for a linter that must keep scanning.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

/// Splits a lexed stream into (code tokens, comment tokens).
pub fn split_comments(tokens: Vec<Token>) -> (Vec<Token>, Vec<Token>) {
    let mut code = Vec::with_capacity(tokens.len());
    let mut comments = Vec::new();
    for t in tokens {
        match t.tok {
            Tok::Comment(_) => comments.push(t),
            _ => code.push(t),
        }
    }
    (code, comments)
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.pos + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn push(&mut self, tok: Tok, line: u32, col: u32) {
        self.out.push(Token { tok, line, col });
    }

    fn run(mut self) -> Vec<Token> {
        // A `#!/usr/bin/env …` shebang may legally start a Rust source file;
        // `#![…]` inner attributes must NOT be treated as one.
        if self.peek(0) == Some('#') && self.peek(1) == Some('!') && self.peek(2) != Some('[') {
            while self.peek(0).is_some_and(|c| c != '\n') {
                self.bump();
            }
        }
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line, col);
            } else if c == '"' {
                let s = self.cooked_string();
                self.push(Tok::Str(s), line, col);
            } else if c == '\'' {
                self.quote(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if is_ident_start(c) {
                self.ident_or_prefixed(line, col);
            } else {
                self.bump();
                self.push(Tok::Punct(c), line, col);
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::Comment(text), line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.push(Tok::Comment(text), line, col);
    }

    /// Consumes a `"…"` string (escape-aware); the opening quote is at the
    /// current position. Returns the content with escapes unprocessed.
    fn cooked_string(&mut self) -> String {
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        text
    }

    /// Consumes a raw string whose opening `"` is at the current position
    /// and which is fenced by `hashes` trailing `#` characters. Returns the
    /// content verbatim.
    fn raw_string(&mut self, hashes: usize) -> String {
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|k| self.peek(k) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        text
    }

    /// Disambiguates `'a` (lifetime), `'a'` (char) and `'\n'` (escaped
    /// char); the opening quote is at the current position.
    fn quote(&mut self, line: u32, col: u32) {
        match self.peek(1) {
            Some('\\') => {
                self.char_literal();
                self.push(Tok::Char, line, col);
            }
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                // Scan the identifier run after the quote: a closing quote
                // right after it makes this a char literal, anything else a
                // lifetime.
                let mut j = 2;
                while self.peek(j).is_some_and(is_ident_continue) {
                    j += 1;
                }
                if self.peek(j) == Some('\'') {
                    self.char_literal();
                    self.push(Tok::Char, line, col);
                } else {
                    self.bump();
                    let mut name = String::new();
                    while self.peek(0).is_some_and(is_ident_continue) {
                        name.push(self.bump().expect("peeked"));
                    }
                    self.push(Tok::Lifetime(name), line, col);
                }
            }
            Some(_) if self.peek(2) == Some('\'') => {
                // A non-identifier char like '(' or ' '.
                self.bump();
                self.bump();
                self.bump();
                self.push(Tok::Char, line, col);
            }
            _ => {
                self.bump();
                self.push(Tok::Punct('\''), line, col);
            }
        }
    }

    /// Consumes a char literal whose opening quote is at the current
    /// position (handles `\'`, `\\`, `\u{…}`).
    fn char_literal(&mut self) {
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut digits = String::new();
        let mut radix = 10;
        let mut float = false;
        if self.peek(0) == Some('0') {
            match self.peek(1) {
                Some('x') | Some('X') => radix = 16,
                Some('o') | Some('O') => radix = 8,
                Some('b') | Some('B') => radix = 2,
                _ => {}
            }
        }
        if radix != 10 {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c == '_' {
                self.bump();
            } else if c.is_digit(radix) {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if radix == 10 {
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                self.bump();
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
            if matches!(self.peek(0), Some('e') | Some('E'))
                && self
                    .peek(1)
                    .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-')
            {
                float = true;
                self.bump();
                self.bump();
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
        }
        // Type suffix (`u64`, `usize`, `f32`, …).
        let mut suffix = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            suffix.push(self.bump().expect("peeked"));
        }
        if suffix.starts_with('f') {
            float = true;
        }
        match u64::from_str_radix(&digits, radix) {
            Ok(v) if !float => self.push(Tok::Int(v), line, col),
            _ => self.push(Tok::Float, line, col),
        }
    }

    fn ident_or_prefixed(&mut self, line: u32, col: u32) {
        let mut name = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            name.push(self.bump().expect("peeked"));
        }
        match name.as_str() {
            // Raw-string / raw-identifier prefixes.
            "r" | "br" => match self.peek(0) {
                Some('"') => {
                    let s = self.raw_string(0);
                    self.push(Tok::Str(s), line, col);
                }
                Some('#') => {
                    let mut hashes = 0;
                    while self.peek(hashes) == Some('#') {
                        hashes += 1;
                    }
                    if self.peek(hashes) == Some('"') {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        let s = self.raw_string(hashes);
                        self.push(Tok::Str(s), line, col);
                    } else if name == "r" && hashes == 1 && self.peek(1).is_some_and(is_ident_start)
                    {
                        // Raw identifier `r#match`.
                        self.bump();
                        let mut raw = String::new();
                        while self.peek(0).is_some_and(is_ident_continue) {
                            raw.push(self.bump().expect("peeked"));
                        }
                        self.push(Tok::Ident(raw), line, col);
                    } else {
                        self.push(Tok::Ident(name), line, col);
                    }
                }
                _ => self.push(Tok::Ident(name), line, col),
            },
            // Byte-string / byte-char prefixes.
            "b" => match self.peek(0) {
                Some('"') => {
                    let s = self.cooked_string();
                    self.push(Tok::Str(s), line, col);
                }
                Some('\'') => {
                    self.char_literal();
                    self.push(Tok::Char, line, col);
                }
                _ => self.push(Tok::Ident(name), line, col),
            },
            _ => self.push(Tok::Ident(name), line, col),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn string_content_never_becomes_idents() {
        assert_eq!(idents(r#"let x = "HashMap unsafe Instant";"#), ["let", "x"]);
    }

    #[test]
    fn comment_text_is_not_code() {
        let toks = lex("// HashMap here\nlet y = 1;");
        assert!(matches!(toks[0].tok, Tok::Comment(_)));
        assert_eq!(idents("// HashMap\nlet y = 1;"), ["let", "y"]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }
}
