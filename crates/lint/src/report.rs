//! Diagnostic records and rendering.
//!
//! Every finding carries a `file:line` anchor, a stable rule id, a message
//! and a fix hint, so a violation surfaced in CI can be acted on without
//! re-running the tool locally.

use std::fmt;

/// How a diagnostic counts towards the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory by default; promoted to an error under `--deny-all`.
    Warning,
    /// Always fails the pass.
    Error,
}

/// One simlint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path of the offending file, relative to the workspace root when
    /// produced by a workspace check.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Stable rule id (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Whether the finding fails the pass by default.
    pub severity: Severity,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to allowlist it when that is legitimate).
    pub hint: String,
}

impl Diagnostic {
    /// Builds an error-severity diagnostic.
    pub fn error(
        file: impl Into<String>,
        line: u32,
        rule: &'static str,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            severity: Severity::Error,
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// Builds a warning-severity diagnostic.
    pub fn warning(
        file: impl Into<String>,
        line: u32,
        rule: &'static str,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(file, line, rule, message, hint)
        }
    }

    /// True when this diagnostic fails the pass under the given strictness.
    pub fn is_denied(&self, deny_all: bool) -> bool {
        self.severity == Severity::Error || deny_all
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{}:{}: {tag}[{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        if !self.hint.is_empty() {
            write!(f, "\n    hint: {}", self.hint)?;
        }
        Ok(())
    }
}

/// Sorts diagnostics into deterministic (file, line, rule) order.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

/// Renders all diagnostics, one per entry, separated by newlines.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}
