//! Diagnostic records and rendering.
//!
//! Every finding carries a `file:line` anchor, a stable rule id, a message
//! and a fix hint, so a violation surfaced in CI can be acted on without
//! re-running the tool locally.

use std::fmt;

/// How a diagnostic counts towards the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory by default; promoted to an error under `--deny-all`.
    Warning,
    /// Always fails the pass.
    Error,
}

/// One simlint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path of the offending file, relative to the workspace root when
    /// produced by a workspace check.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token; 0 when unknown.
    pub col: u32,
    /// Stable rule id (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Whether the finding fails the pass by default.
    pub severity: Severity,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to allowlist it when that is legitimate).
    pub hint: String,
}

impl Diagnostic {
    /// Builds an error-severity diagnostic.
    pub fn error(
        file: impl Into<String>,
        line: u32,
        rule: &'static str,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            col: 0,
            rule,
            severity: Severity::Error,
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// Attaches a 1-based column, making the finding's span precise.
    #[must_use]
    pub fn with_col(mut self, col: u32) -> Self {
        self.col = col;
        self
    }

    /// Builds a warning-severity diagnostic.
    pub fn warning(
        file: impl Into<String>,
        line: u32,
        rule: &'static str,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(file, line, rule, message, hint)
        }
    }

    /// True when this diagnostic fails the pass under the given strictness.
    pub fn is_denied(&self, deny_all: bool) -> bool {
        self.severity == Severity::Error || deny_all
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{}:{}: {tag}[{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        if !self.hint.is_empty() {
            write!(f, "\n    hint: {}", self.hint)?;
        }
        Ok(())
    }
}

/// Sorts diagnostics into deterministic (file, line, rule) order.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

/// Renders all diagnostics, one per entry, separated by newlines.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders all diagnostics as a stable JSON report for CI and other tools.
///
/// Schema (append-only; fields are never renamed or removed):
/// ```json
/// {
///   "version": 1,
///   "findings": [
///     {
///       "rule": "…", "file": "…", "line": N,
///       "span": {"line": N, "col": N},
///       "severity": "error" | "warning",
///       "message": "…", "reason": "…"
///     }
///   ],
///   "summary": {"errors": N, "warnings": N}
/// }
/// ```
/// `reason` carries the fix hint; `span.col` is 0 when the rule only knows
/// the line.
pub fn render_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let sev = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"span\": {{\"line\": {}, \"col\": {}}}, \"severity\": \"{sev}\", \
             \"message\": \"{}\", \"reason\": \"{}\"}}",
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            d.line,
            d.col,
            json_escape(&d.message),
            json_escape(&d.hint),
        ));
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    out.push_str(&format!(
        "\n  ],\n  \"summary\": {{\"errors\": {errors}, \"warnings\": {warnings}, \
         \"files_scanned\": {files_scanned}}}\n}}\n"
    ));
    out
}
