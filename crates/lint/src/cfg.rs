//! Branch-aware control-flow graphs over the parser's statement trees.
//!
//! One graph per function. Nodes are statements (or condition/scrutinee
//! evaluations); edges follow `if`/`else`, `match` arms, loop back edges,
//! `break`/`continue`, `return`, and the implicit early exit of every `?`
//! operator. Node 0 is the synthetic exit; the analyses ask reachability
//! questions ("can an allocation reach the exit without passing a use?")
//! rather than interpreting statements.

use crate::parser::{Block, ExprInfo, FnDef, Stmt};

/// Control-flow graph of one function. Node 0 is the exit.
pub struct Cfg<'a> {
    /// All nodes; index 0 is the synthetic exit.
    pub nodes: Vec<Node<'a>>,
    /// Index of the function's entry node.
    pub entry: usize,
}

/// The synthetic exit node's index.
pub const EXIT: usize = 0;

/// One CFG node: the expressions evaluated there, the names it binds, and
/// its successors.
#[derive(Default)]
pub struct Node<'a> {
    /// Expressions evaluated at this node.
    pub exprs: Vec<&'a ExprInfo>,
    /// Names bound at this node (a `let` pattern or loop/arm pattern).
    pub defs: Vec<String>,
    /// 1-based source line the node anchors to (0 for synthetic nodes).
    pub line: u32,
    /// Successor node indices.
    pub succs: Vec<usize>,
}

struct LoopCtx {
    continue_to: usize,
    breaks: Vec<usize>,
}

struct Builder<'a> {
    nodes: Vec<Node<'a>>,
    loops: Vec<LoopCtx>,
}

/// Builds the CFG for one function.
pub fn build(f: &FnDef) -> Cfg<'_> {
    let mut b = Builder {
        nodes: vec![Node::default()], // exit
        loops: Vec::new(),
    };
    let (entry, ends) = b.lower_block(&f.body);
    for e in ends {
        b.edge(e, EXIT);
    }
    Cfg {
        nodes: b.nodes,
        entry: entry.unwrap_or(EXIT),
    }
}

impl<'a> Builder<'a> {
    fn node(&mut self, exprs: Vec<&'a ExprInfo>, defs: Vec<String>, line: u32) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            exprs,
            defs,
            line,
            succs: Vec::new(),
        });
        id
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.nodes[from].succs.contains(&to) {
            self.nodes[from].succs.push(to);
        }
    }

    /// Adds the implicit `?` early-exit edge if any expression at the node
    /// contains a try operator.
    fn try_edge(&mut self, id: usize) {
        if self.nodes[id].exprs.iter().any(|e| e.has_try) {
            self.edge(id, EXIT);
        }
    }

    /// Lowers a block; returns (entry node, open ends that fall through to
    /// whatever follows the block).
    fn lower_block(&mut self, block: &'a Block) -> (Option<usize>, Vec<usize>) {
        let mut entry = None;
        let mut open: Vec<usize> = Vec::new();
        for stmt in &block.stmts {
            let (s_entry, s_ends) = self.lower_stmt(stmt);
            let Some(s_entry) = s_entry else { continue };
            if entry.is_none() {
                entry = Some(s_entry);
            }
            for o in open {
                self.edge(o, s_entry);
            }
            open = s_ends;
        }
        (entry, open)
    }

    fn lower_stmt(&mut self, stmt: &'a Stmt) -> (Option<usize>, Vec<usize>) {
        match stmt {
            Stmt::Let {
                names,
                init,
                else_block,
                line,
            } => {
                let exprs: Vec<_> = init.iter().collect();
                let id = self.node(exprs, names.clone(), *line);
                self.try_edge(id);
                if let Some(blk) = else_block {
                    // `let … else` diverges; the else body's open ends can
                    // only be reached if it failed to diverge — route them
                    // to the exit conservatively.
                    let (e_entry, e_ends) = self.lower_block(blk);
                    if let Some(e_entry) = e_entry {
                        self.edge(id, e_entry);
                    } else {
                        self.edge(id, EXIT);
                    }
                    for e in e_ends {
                        self.edge(e, EXIT);
                    }
                }
                (Some(id), vec![id])
            }
            Stmt::Expr(e) => {
                let id = self.node(vec![e], Vec::new(), e.line);
                self.try_edge(id);
                (Some(id), vec![id])
            }
            Stmt::If {
                pat,
                cond,
                then_blk,
                else_blk,
                line,
            } => {
                let c = self.node(vec![cond], pat.clone(), *line);
                self.try_edge(c);
                let mut ends = Vec::new();
                let (t_entry, t_ends) = self.lower_block(then_blk);
                match t_entry {
                    Some(t) => {
                        self.edge(c, t);
                        ends.extend(t_ends);
                    }
                    None => ends.push(c),
                }
                match else_blk {
                    Some(blk) => {
                        let (e_entry, e_ends) = self.lower_block(blk);
                        match e_entry {
                            Some(e) => {
                                self.edge(c, e);
                                ends.extend(e_ends);
                            }
                            None => ends.push(c),
                        }
                    }
                    None => ends.push(c),
                }
                (Some(c), ends)
            }
            Stmt::Match {
                scrutinee,
                arms,
                line,
            } => {
                let s = self.node(vec![scrutinee], Vec::new(), *line);
                self.try_edge(s);
                let mut ends = Vec::new();
                if arms.is_empty() {
                    ends.push(s);
                }
                for arm in arms {
                    let a = self.node(Vec::new(), arm.pat.clone(), arm.line);
                    self.edge(s, a);
                    let (b_entry, b_ends) = self.lower_block(&arm.body);
                    match b_entry {
                        Some(b) => {
                            self.edge(a, b);
                            ends.extend(b_ends);
                        }
                        None => ends.push(a),
                    }
                }
                (Some(s), ends)
            }
            Stmt::While {
                pat,
                cond,
                body,
                line,
            } => {
                let c = self.node(vec![cond], pat.clone(), *line);
                self.try_edge(c);
                self.loops.push(LoopCtx {
                    continue_to: c,
                    breaks: Vec::new(),
                });
                let (b_entry, b_ends) = self.lower_block(body);
                if let Some(b) = b_entry {
                    self.edge(c, b);
                }
                for e in b_ends {
                    self.edge(e, c);
                }
                let ctx = self.loops.pop().expect("loop ctx pushed above");
                let mut ends = vec![c];
                ends.extend(ctx.breaks);
                (Some(c), ends)
            }
            Stmt::Loop { body, line } => {
                let head = self.node(Vec::new(), Vec::new(), *line);
                self.loops.push(LoopCtx {
                    continue_to: head,
                    breaks: Vec::new(),
                });
                let (b_entry, b_ends) = self.lower_block(body);
                if let Some(b) = b_entry {
                    self.edge(head, b);
                } else {
                    self.edge(head, head);
                }
                for e in b_ends {
                    self.edge(e, head);
                }
                let ctx = self.loops.pop().expect("loop ctx pushed above");
                // Only `break` leaves a `loop`.
                (Some(head), ctx.breaks)
            }
            Stmt::For {
                pat,
                iter,
                body,
                line,
            } => {
                let h = self.node(vec![iter], pat.clone(), *line);
                self.try_edge(h);
                self.loops.push(LoopCtx {
                    continue_to: h,
                    breaks: Vec::new(),
                });
                let (b_entry, b_ends) = self.lower_block(body);
                if let Some(b) = b_entry {
                    self.edge(h, b);
                }
                for e in b_ends {
                    self.edge(e, h);
                }
                let ctx = self.loops.pop().expect("loop ctx pushed above");
                let mut ends = vec![h];
                ends.extend(ctx.breaks);
                (Some(h), ends)
            }
            Stmt::Return { value, line } => {
                let exprs: Vec<_> = value.iter().collect();
                let id = self.node(exprs, Vec::new(), *line);
                self.edge(id, EXIT);
                (Some(id), Vec::new())
            }
            Stmt::Break { line } => {
                let id = self.node(Vec::new(), Vec::new(), *line);
                match self.loops.last_mut() {
                    Some(ctx) => ctx.breaks.push(id),
                    None => self.edge(id, EXIT),
                }
                (Some(id), Vec::new())
            }
            Stmt::Continue { line } => {
                let id = self.node(Vec::new(), Vec::new(), *line);
                let target = self.loops.last().map(|c| c.continue_to);
                match target {
                    Some(t) => self.edge(id, t),
                    None => self.edge(id, EXIT),
                }
                (Some(id), Vec::new())
            }
            Stmt::Nested(blk) => self.lower_block(blk),
        }
    }
}

impl Cfg<'_> {
    /// True if the exit is reachable from `start`'s successors without
    /// passing through a node for which `stop` holds. `start` itself is not
    /// tested.
    pub fn exit_reachable_avoiding(&self, start: usize, stop: impl Fn(&Node<'_>) -> bool) -> bool {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self.nodes[start].succs.clone();
        while let Some(n) = stack.pop() {
            if n == EXIT {
                return true;
            }
            if visited[n] {
                continue;
            }
            visited[n] = true;
            if stop(&self.nodes[n]) {
                continue;
            }
            stack.extend(self.nodes[n].succs.iter().copied());
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, split_comments};
    use crate::parser::parse_file;

    fn cfg_of(src: &str) -> (crate::parser::ParsedFile, ()) {
        let (code, _) = split_comments(lex(src));
        (parse_file(&code, &[], false), ())
    }

    #[test]
    fn early_return_reaches_exit() {
        let (p, _) =
            cfg_of("fn f(&mut self) { let s = self.a.get(); if bad { return; } use_it(s); }");
        let cfg = build(&p.fns[0]);
        // From the let node, the exit is reachable without passing the
        // `use_it` node (via the early return).
        let alloc = cfg
            .nodes
            .iter()
            .position(|n| n.defs.contains(&"s".to_string()))
            .expect("let node");
        assert!(cfg.exit_reachable_avoiding(alloc, |n| n.exprs.iter().any(|e| e.uses("s"))));
    }

    #[test]
    fn use_on_all_paths_blocks_exit() {
        let (p, _) = cfg_of(
            "fn f(&mut self) { let s = self.a.get(); if bad { drop_it(s); return; } use_it(s); }",
        );
        let cfg = build(&p.fns[0]);
        let alloc = cfg
            .nodes
            .iter()
            .position(|n| n.defs.contains(&"s".to_string()))
            .expect("let node");
        assert!(!cfg.exit_reachable_avoiding(alloc, |n| n.exprs.iter().any(|e| e.uses("s"))));
    }
}
