//! Queue/credit deadlock analysis: every cycle in the backpressure graph
//! must contain a guaranteed drain.
//!
//! Resources are the named bounded queues (`SimQueue::new("l2_access", …)`
//! struct fields, discovered from constructor literals — the same idiom on
//! both crossbar port queues and component queues). The analysis then
//! summarizes how fetches move between resources:
//!
//! * a **transfer edge** A → B exists where a function pops A and pushes
//!   the popped value (tracked through its binding) into B — directly
//!   (`b.push(f)` after `let f = a.pop()`) or through one level of
//!   accessor (`self.dram.pop_return()` resolves to `dram_return`;
//!   `port.try_inject(pkt)` resolves to `noc_input`);
//! * a **drain** exists where a popped value leaves the tracked topology
//!   (consumed by a component, dropped, or handed to an untracked buffer)
//!   and the pop is *not* conditioned on another resource's capacity
//!   (`is_full`/`free`/`can_inject`/`can_accept`/credit predicates) — a
//!   capacity-guarded pop is backpressure-coupled, not a guaranteed drain.
//!
//! A strongly connected component of transfer edges with no member drain
//! can wedge: once every queue in the cycle fills, every pop in it is
//! waiting on capacity that only those same pops can create. The finding
//! reports the cycle in the same pipeline order the watchdog uses for its
//! blocked-port chain, so a static report and a runtime `WedgeDiagnosis`
//! read the same way.
//!
//! Approximations (all biased toward silence on sound code): values handed
//! to untracked buffers count as drains, accessor summaries propagate one
//! level, and single-resource self-loops (scheduler requeue scans) are
//! ignored.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{Block, Call, ExprInfo, FnDef, Stmt};
use crate::report::Diagnostic;
use crate::rules::QUEUE_DEADLOCK;

use super::AnalyzedFile;

/// Queue constructors whose first string argument names the resource.
const QUEUE_CTORS: &[&str] = &["SimQueue", "BoundedQueue"];

/// Capacity/credit predicates: a pop under one of these is guarded.
const CAPACITY_METHODS: &[&str] = &[
    "is_full",
    "free",
    "can_inject",
    "can_accept",
    "can_push",
    "has_credit",
    "credits",
    "headroom",
];

/// The watchdog's pipeline order for blocked-port chains
/// (`gpu.rs` wedge diagnosis); unknown resources sort after, by name.
const PIPELINE_ORDER: &[&str] = &[
    "lsu_pipeline",
    "l1_miss",
    "noc_input",
    "noc_ejection",
    "l2_access",
    "l2_miss",
    "dram_sched",
    "dram_write",
    "dram_return",
    "l2_response",
    "l2_writeback",
    "l2_to_icnt",
];

fn pipeline_rank(name: &str) -> (usize, String) {
    match PIPELINE_ORDER.iter().position(|p| *p == name) {
        Some(i) => (i, String::new()),
        None => (PIPELINE_ORDER.len(), name.to_string()),
    }
}

#[derive(Default, Clone)]
struct Summary {
    pops: BTreeSet<String>,
    pushes: BTreeSet<String>,
}

/// Where a transfer edge was established.
#[derive(Clone)]
struct EdgeSite {
    file: String,
    line: u32,
    col: u32,
}

struct Analysis {
    /// (file label, field name) → resource name.
    fields: BTreeMap<(String, String), String>,
    /// field name → all resource names it maps to anywhere (for the
    /// unambiguous-global fallback).
    global: BTreeMap<String, BTreeSet<String>>,
    /// accessor fn name → summary of its direct queue operations.
    summaries: BTreeMap<String, Summary>,
    /// transfer edges with their first recorded site.
    edges: BTreeMap<(String, String), EdgeSite>,
    /// resources with a guaranteed (unguarded) drain.
    drains: BTreeSet<String>,
}

/// Runs the analysis over the whole unit.
pub fn check(files: &[AnalyzedFile]) -> Vec<Diagnostic> {
    let mut a = Analysis {
        fields: BTreeMap::new(),
        global: BTreeMap::new(),
        summaries: BTreeMap::new(),
        edges: BTreeMap::new(),
        drains: BTreeSet::new(),
    };
    a.discover_resources(files);
    if a.fields.is_empty() {
        return Vec::new();
    }
    a.build_summaries(files);
    for file in files {
        for f in &file.parsed.fns {
            if f.is_test {
                continue;
            }
            FnWalk::new(&mut a, &file.label).run(f);
        }
    }
    a.report()
}

fn for_each_expr<'a>(block: &'a Block, f: &mut impl FnMut(&'a ExprInfo)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    f(e);
                }
                if let Some(b) = else_block {
                    for_each_expr(b, f);
                }
            }
            Stmt::Expr(e) => f(e),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                f(cond);
                for_each_expr(then_blk, f);
                if let Some(b) = else_blk {
                    for_each_expr(b, f);
                }
            }
            Stmt::Match {
                scrutinee, arms, ..
            } => {
                f(scrutinee);
                for arm in arms {
                    for_each_expr(&arm.body, f);
                }
            }
            Stmt::While { cond, body, .. } => {
                f(cond);
                for_each_expr(body, f);
            }
            Stmt::Loop { body, .. } => for_each_expr(body, f),
            Stmt::For { iter, body, .. } => {
                f(iter);
                for_each_expr(body, f);
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    f(e);
                }
            }
            Stmt::Break { .. } | Stmt::Continue { .. } => {}
            Stmt::Nested(b) => for_each_expr(b, f),
        }
    }
}

impl Analysis {
    /// Pass 1: find `field: SimQueue::new("name", …)` constructor literals.
    fn discover_resources(&mut self, files: &[AnalyzedFile]) {
        for file in files {
            for f in &file.parsed.fns {
                if f.is_test {
                    continue;
                }
                for_each_expr(&f.body, &mut |e| {
                    for call in &e.calls {
                        let is_ctor = call.path.len() == 2
                            && QUEUE_CTORS.contains(&call.path[0].as_str())
                            && call.path[1] == "new";
                        if !is_ctor {
                            continue;
                        }
                        let (Some(name), Some(field)) =
                            (call.args_str.first(), call.field_hint.as_ref())
                        else {
                            continue;
                        };
                        self.fields
                            .insert((file.label.clone(), field.clone()), name.clone());
                        self.global
                            .entry(field.clone())
                            .or_default()
                            .insert(name.clone());
                    }
                });
            }
        }
    }

    /// Resolves a queue field to its resource name: per-file first, then
    /// the global map when unambiguous.
    fn resolve(&self, file: &str, field: &str) -> Option<String> {
        if let Some(n) = self.fields.get(&(file.to_string(), field.to_string())) {
            return Some(n.clone());
        }
        match self.global.get(field) {
            Some(names) if names.len() == 1 => names.iter().next().cloned(),
            _ => None,
        }
    }

    /// Direct pop/push operations of one expression, resolved in `file`.
    fn direct_ops(&self, file: &str, e: &ExprInfo) -> Summary {
        let mut s = Summary::default();
        for call in &e.calls {
            let Some(field) = call.recv.last() else {
                continue;
            };
            let Some(res) = self.resolve(file, field) else {
                continue;
            };
            match call.method.as_str() {
                "pop" => {
                    s.pops.insert(res);
                }
                "push" => {
                    s.pushes.insert(res);
                }
                _ => {}
            }
        }
        s
    }

    /// Pass 2: per-function summaries of direct queue operations, keyed by
    /// function name (one-level accessor propagation).
    fn build_summaries(&mut self, files: &[AnalyzedFile]) {
        for file in files {
            for f in &file.parsed.fns {
                if f.is_test || f.name == "new" {
                    continue;
                }
                let mut total = Summary::default();
                for_each_expr(&f.body, &mut |e| {
                    let s = self.direct_ops(&file.label, e);
                    total.pops.extend(s.pops);
                    total.pushes.extend(s.pushes);
                });
                if total.pops.is_empty() && total.pushes.is_empty() {
                    continue;
                }
                let entry = self.summaries.entry(f.name.clone()).or_default();
                entry.pops.extend(total.pops);
                entry.pushes.extend(total.pushes);
            }
        }
    }

    /// The resource a call pops, when it is a clean single-pop operation.
    fn pop_resource(&self, file: &str, call: &Call) -> Option<String> {
        if call.method == "pop" {
            if let Some(field) = call.recv.last() {
                if let Some(res) = self.resolve(file, field) {
                    return Some(res);
                }
            }
        }
        if let Some(s) = self.summaries.get(&call.method) {
            if call.method != "pop" && s.pops.len() == 1 && s.pushes.is_empty() {
                return s.pops.iter().next().cloned();
            }
        }
        None
    }

    /// The resources a call pushes into, when it is a clean push operation.
    fn push_targets(&self, file: &str, call: &Call) -> Vec<String> {
        if call.method == "push" {
            if let Some(field) = call.recv.last() {
                if let Some(res) = self.resolve(file, field) {
                    return vec![res];
                }
            }
            return Vec::new();
        }
        match self.summaries.get(&call.method) {
            Some(s) if !s.pushes.is_empty() && s.pops.is_empty() => {
                s.pushes.iter().cloned().collect()
            }
            _ => Vec::new(),
        }
    }

    /// True when the expression conditions on capacity or credit state of
    /// some tracked resource.
    fn mentions_capacity(&self, file: &str, e: &ExprInfo) -> bool {
        if e.idents.iter().any(|(n, _)| n.contains("credit")) {
            return true;
        }
        e.calls.iter().any(|c| {
            CAPACITY_METHODS.contains(&c.method.as_str())
                && c.recv.last().and_then(|f| self.resolve(file, f)).is_some()
        })
    }

    fn edge(&mut self, from: &str, to: &str, file: &str, line: u32, col: u32) {
        if from == to {
            // Single-queue requeue scans (FR-FCFS style) are not transfer
            // cycles.
            return;
        }
        self.edges
            .entry((from.to_string(), to.to_string()))
            .or_insert(EdgeSite {
                file: file.to_string(),
                line,
                col,
            });
    }

    /// Pass 4: SCCs of the transfer graph; flag those without a drain.
    fn report(&self) -> Vec<Diagnostic> {
        let mut nodes: BTreeSet<&str> = BTreeSet::new();
        for (a, b) in self.edges.keys() {
            nodes.insert(a);
            nodes.insert(b);
        }
        let nodes: Vec<&str> = nodes.into_iter().collect();
        let index: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (a, b) in self.edges.keys() {
            adj[index[a.as_str()]].push(index[b.as_str()]);
        }
        let mut out = Vec::new();
        for scc in tarjan_sccs(&adj) {
            if scc.len() < 2 {
                continue;
            }
            let mut members: Vec<&str> = scc.iter().map(|&i| nodes[i]).collect();
            if members.iter().any(|m| self.drains.contains(*m)) {
                continue;
            }
            members.sort_by_key(|m| pipeline_rank(m));
            // Anchor on the cycle-internal edge earliest in pipeline order.
            let in_scc: BTreeSet<&str> = members.iter().copied().collect();
            let site = self
                .edges
                .iter()
                .filter(|((a, b), _)| in_scc.contains(a.as_str()) && in_scc.contains(b.as_str()))
                .min_by_key(|((a, _), s)| (pipeline_rank(a), s.file.clone(), s.line))
                .map(|(_, s)| s.clone());
            let Some(site) = site else { continue };
            let chain = members.join(" -> ");
            out.push(
                Diagnostic::error(
                    site.file.clone(),
                    site.line,
                    QUEUE_DEADLOCK,
                    format!(
                        "queue/credit cycle with no guaranteed drain: {chain} \
                         (blocked-port chain in watchdog pipeline order)"
                    ),
                    "every resource cycle needs at least one consumer that pops \
                     unconditionally (not behind another queue's capacity/credit \
                     check); add an unguarded drain or allowlist the site with the \
                     invariant that prevents the wedge",
                )
                .with_col(site.col),
            );
        }
        out
    }
}

/// One tracked binding: a variable holding a value popped from `resource`.
struct Bind {
    name: String,
    resource: String,
    guarded: bool,
    pushed: bool,
    escaped: bool,
}

struct FnWalk<'a> {
    a: &'a mut Analysis,
    file: &'a str,
    binds: Vec<Bind>,
}

impl<'a> FnWalk<'a> {
    fn new(a: &'a mut Analysis, file: &'a str) -> Self {
        FnWalk {
            a,
            file,
            binds: Vec::new(),
        }
    }

    fn run(mut self, f: &FnDef) {
        self.walk_block(&f.body, false);
        // A trailing expression escapes its mentions to the caller (the
        // accessor-return idiom: `let v = q.pop(); … ; v`).
        if let Some(Stmt::Expr(e)) = f.body.stmts.last() {
            for b in &mut self.binds {
                if e.uses(&b.name) {
                    b.escaped = true;
                }
            }
        }
        for b in &self.binds {
            if !b.pushed && !b.escaped && !b.guarded {
                self.a.drains.insert(b.resource.clone());
            }
        }
    }

    fn bind(&mut self, names: &[String], resource: String, guarded: bool) {
        if let Some(name) = names.first() {
            self.binds.push(Bind {
                name: name.clone(),
                resource,
                guarded,
                pushed: false,
                escaped: false,
            });
        } else if !guarded {
            // Popped and never bound: the value is dropped — a drain.
            self.a.drains.insert(resource);
        }
    }

    /// The single pop this expression performs, if it is a clean pop.
    fn expr_pop(&self, e: &ExprInfo) -> Option<String> {
        let mut pops: Vec<String> = e
            .calls
            .iter()
            .filter_map(|c| self.a.pop_resource(self.file, c))
            .collect();
        pops.sort_unstable();
        pops.dedup();
        if pops.len() == 1 {
            pops.pop()
        } else {
            None
        }
    }

    fn walk_block(&mut self, block: &Block, guarded: bool) {
        // `g` tightens for the rest of the block after an early-return
        // capacity guard (`if x.is_full() { return; } …`).
        let mut g = guarded;
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let {
                    names,
                    init,
                    else_block,
                    ..
                } => {
                    if let Some(e) = init {
                        self.process_expr(e, g);
                        if let Some(res) = self.expr_pop(e) {
                            self.bind(names, res, g);
                        }
                    }
                    if let Some(b) = else_block {
                        self.walk_block(b, g);
                    }
                }
                Stmt::Expr(e) => {
                    self.process_expr(e, g);
                    // A bare discarded pop statement drops the value: an
                    // unguarded one is a guaranteed drain.
                    if !g {
                        for call in &e.calls {
                            if call.discarded {
                                if let Some(res) = self.a.pop_resource(self.file, call) {
                                    self.a.drains.insert(res);
                                }
                            }
                        }
                    }
                }
                Stmt::If {
                    pat,
                    cond,
                    then_blk,
                    else_blk,
                    ..
                } => {
                    self.process_expr(cond, g);
                    let inner = g || self.a.mentions_capacity(self.file, cond);
                    if !pat.is_empty() {
                        if let Some(res) = self.expr_pop(cond) {
                            self.bind(pat, res, g);
                        }
                    }
                    self.walk_block(then_blk, inner);
                    if let Some(b) = else_blk {
                        self.walk_block(b, inner);
                    }
                    if inner && !g && block_diverges(then_blk) {
                        g = true;
                    }
                }
                Stmt::Match {
                    scrutinee, arms, ..
                } => {
                    self.process_expr(scrutinee, g);
                    let popped = self.expr_pop(scrutinee);
                    for arm in arms {
                        if let Some(res) = &popped {
                            self.bind(&arm.pat, res.clone(), g);
                        }
                        self.walk_block(&arm.body, g);
                    }
                }
                Stmt::While {
                    pat, cond, body, ..
                } => {
                    self.process_expr(cond, g);
                    let inner = g || self.a.mentions_capacity(self.file, cond);
                    if !pat.is_empty() {
                        if let Some(res) = self.expr_pop(cond) {
                            self.bind(pat, res, g);
                        }
                    }
                    self.walk_block(body, inner);
                }
                Stmt::Loop { body, .. } => self.walk_block(body, g),
                Stmt::For { iter, body, .. } => {
                    self.process_expr(iter, g);
                    self.walk_block(body, g);
                }
                Stmt::Return { value, .. } => {
                    if let Some(e) = value {
                        self.process_expr(e, g);
                        for b in &mut self.binds {
                            if e.uses(&b.name) {
                                b.escaped = true;
                            }
                        }
                    }
                }
                Stmt::Break { .. } | Stmt::Continue { .. } => {}
                Stmt::Nested(b) => self.walk_block(b, g),
            }
        }
    }

    /// Records edges for this expression: bound pops flowing into pushes,
    /// and pops nested directly inside a push's argument span.
    fn process_expr(&mut self, e: &ExprInfo, _guarded: bool) {
        for call in &e.calls {
            let targets = self.a.push_targets(self.file, call);
            if targets.is_empty() {
                continue;
            }
            // Bound value pushed onward: resource-to-resource edge.
            let mut froms: Vec<String> = Vec::new();
            for b in &mut self.binds {
                if call.arg_idents.iter().any(|a| a == &b.name) {
                    b.pushed = true;
                    froms.push(b.resource.clone());
                }
            }
            // Pop nested inside the push's own argument span
            // (`b.push(a.pop())`).
            for inner in &e.calls {
                if inner.start > call.start && inner.end <= call.end {
                    if let Some(res) = self.a.pop_resource(self.file, inner) {
                        froms.push(res);
                    }
                }
            }
            for from in froms {
                for t in &targets {
                    self.a.edge(&from, t, self.file, call.line, call.col);
                }
            }
        }
    }
}

/// True when every path through the block diverges (return/break/continue).
fn block_diverges(b: &Block) -> bool {
    matches!(
        b.stmts.last(),
        Some(Stmt::Return { .. }) | Some(Stmt::Break { .. }) | Some(Stmt::Continue { .. })
    )
}

/// Iterative Tarjan SCC over a small adjacency list; returns components in
/// deterministic order.
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next = 0usize;
    let mut out = Vec::new();
    // Explicit DFS state: (node, next child position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ci)) = work.last_mut() {
            if *ci == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(p, _)) = work.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
    }
    out
}
