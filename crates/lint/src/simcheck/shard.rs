//! Shard-isolation analysis: a static race detector for the epoch engine.
//!
//! The parallel engine free-runs shard contexts (methods on the
//! `*Chunk`/`*Pack` types in `parallel.rs`) between barriers. Those
//! methods may only touch shard-local state (`self` and locals), read
//! shared parameter structs, and use the sanctioned snapshot protocol
//! (`take_landings`/`restore_landings` on their own ports). Every other
//! access class is a cross-shard race that the runtime differential suite
//! can only catch per-seed:
//!
//! * **fabric-mutation** — naming the crossbar fabrics (`req_xbar`,
//!   `resp_xbar`) or calling coordinator-only protocol methods
//!   (`fabric_mut`, `take_ports`, `restore_ports`, `set_credits`) from a
//!   shard context;
//! * **cross-shard mutable access** — calling a mutating method through a
//!   non-self function parameter (shared references handed into the shard
//!   step must stay read-only).

use crate::parser::{Block, Call, ExprInfo, FnDef, Stmt};
use crate::report::Diagnostic;
use crate::rules::SHARD_ISOLATION;

use super::AnalyzedFile;

/// Fabric identifiers that shard code must never name.
const FABRIC_IDENTS: &[&str] = &["req_xbar", "resp_xbar", "fabrics"];

/// Coordinator-only protocol methods.
const COORDINATOR_METHODS: &[&str] = &["fabric_mut", "take_ports", "restore_ports", "set_credits"];

/// Method-name prefixes that mutate their receiver.
const MUTATING_PREFIXES: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "take",
    "restore",
    "set_",
    "tick",
    "clear",
    "drain",
    "inject",
    "try_inject",
    "land",
];

/// True when `ty` names a shard-context type (the epoch engine's chunk and
/// pack structs).
fn is_shard_type(ty: &str) -> bool {
    ty.contains("Chunk") || ty.contains("Pack")
}

fn is_mutating(method: &str) -> bool {
    MUTATING_PREFIXES.iter().any(|p| method.starts_with(p))
}

/// Runs the analysis over every shard-context function in parallel-engine
/// files.
pub fn check(files: &[AnalyzedFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        let name = file.label.rsplit('/').next().unwrap_or(file.label.as_str());
        if !name.contains("parallel") {
            continue;
        }
        for f in &file.parsed.fns {
            if f.is_test {
                continue;
            }
            let Some(ty) = f.impl_type.as_deref() else {
                continue;
            };
            if !is_shard_type(ty) {
                continue;
            }
            check_fn(&file.label, ty, f, &mut out);
        }
    }
    out
}

fn check_fn(label: &str, ty: &str, f: &FnDef, out: &mut Vec<Diagnostic>) {
    walk_block(label, ty, f, &f.body, out);
}

fn walk_block(label: &str, ty: &str, f: &FnDef, block: &Block, out: &mut Vec<Diagnostic>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    check_expr(label, ty, f, e, out);
                }
                if let Some(b) = else_block {
                    walk_block(label, ty, f, b, out);
                }
            }
            Stmt::Expr(e) => check_expr(label, ty, f, e, out),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                check_expr(label, ty, f, cond, out);
                walk_block(label, ty, f, then_blk, out);
                if let Some(b) = else_blk {
                    walk_block(label, ty, f, b, out);
                }
            }
            Stmt::Match {
                scrutinee, arms, ..
            } => {
                check_expr(label, ty, f, scrutinee, out);
                for arm in arms {
                    walk_block(label, ty, f, &arm.body, out);
                }
            }
            Stmt::While { cond, body, .. } => {
                check_expr(label, ty, f, cond, out);
                walk_block(label, ty, f, body, out);
            }
            Stmt::Loop { body, .. } => walk_block(label, ty, f, body, out),
            Stmt::For { iter, body, .. } => {
                check_expr(label, ty, f, iter, out);
                walk_block(label, ty, f, body, out);
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    check_expr(label, ty, f, e, out);
                }
            }
            Stmt::Break { .. } | Stmt::Continue { .. } => {}
            Stmt::Nested(b) => walk_block(label, ty, f, b, out),
        }
    }
}

fn check_expr(label: &str, ty: &str, f: &FnDef, e: &ExprInfo, out: &mut Vec<Diagnostic>) {
    for (name, line) in &e.idents {
        if FABRIC_IDENTS.contains(&name.as_str()) {
            out.push(Diagnostic::error(
                label,
                *line,
                SHARD_ISOLATION,
                format!(
                    "shard context {ty}::{} names crossbar fabric state `{name}` \
                     (fabric-mutation class)",
                    f.name
                ),
                "shards run against frozen boundary state; route fabric effects through \
                 the coordinator's replay (take_ports/restore_ports) or the epoch landing \
                 snapshot protocol",
            ));
        }
    }
    for call in &e.calls {
        check_call(label, ty, f, call, out);
    }
}

fn check_call(label: &str, ty: &str, f: &FnDef, call: &Call, out: &mut Vec<Diagnostic>) {
    if COORDINATOR_METHODS.contains(&call.method.as_str()) {
        out.push(
            Diagnostic::error(
                label,
                call.line,
                SHARD_ISOLATION,
                format!(
                    "shard context {ty}::{} calls coordinator-only protocol method `{}` \
                     (fabric-mutation class)",
                    f.name, call.method
                ),
                "only the coordinator may move port state across the shard boundary; \
                 inside a shard, buffer the effect and let the epoch replay commit it",
            )
            .with_col(call.col),
        );
        return;
    }
    // A mutating call whose receiver is rooted at a non-self parameter is a
    // write through a shared reference: cross-shard mutable access.
    if let Some(root) = call.recv.first() {
        if root != "self" && f.params.iter().any(|p| p == root) && is_mutating(&call.method) {
            out.push(
                Diagnostic::error(
                    label,
                    call.line,
                    SHARD_ISOLATION,
                    format!(
                        "shard context {ty}::{} mutates `{root}` through a shared \
                         function parameter via `{}` (cross-shard mutable access)",
                        f.name, call.method
                    ),
                    "parameters handed into a shard step must stay read-only \
                     (snapshot-read class); move the mutation into the coordinator or \
                     pass the state by value into the shard",
                )
                .with_col(call.col),
            );
        }
    }
}
