//! Fetch-slot leak analysis: path-sensitive pairing of `FetchArena` slot
//! allocation with a free/transfer on every CFG exit path.
//!
//! The zero-copy plumbing stores every in-flight `MemFetch` in a slab
//! arena; L1/L2 code passes `SlotId` handles through MSHRs and queues. A
//! slot that is inserted but not freed (`take`), transferred (stored into
//! an MSHR/waiter/queue) or escaped on *some* path is a leak the runtime
//! only catches at end-of-run conservation checking — and only on seeds
//! that drive that path. This analysis walks the CFG instead:
//!
//! * `<…>.arena.insert(f)` bound to a variable: every path from the
//!   allocation to the function exit (including early `return`s and `?`
//!   edges) must pass a statement that mentions the binding. Mentioning
//!   counts as consumption — the overwhelming false-positive risk is in
//!   the other direction, and PORT_PAIRING set the precedent of favoring
//!   an explicit `simlint::allow` over silent imprecision.
//! * `<…>.arena.insert(f)` with the result discarded (a bare statement,
//!   or a `let _ =` binding): always a leak — the `SlotId` is
//!   unrecoverable the moment it is dropped.

use crate::cfg;
use crate::parser::FnDef;
use crate::report::Diagnostic;
use crate::rules::FETCH_SLOT_LEAK;

use super::AnalyzedFile;

/// True when the call is a slot allocation on a fetch arena.
fn is_arena_insert(recv: &[String], method: &str) -> bool {
    method == "insert" && recv.iter().any(|r| r.contains("arena"))
}

/// Runs the analysis over every non-test function in the unit.
pub fn check(files: &[AnalyzedFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        for f in &file.parsed.fns {
            if f.is_test {
                continue;
            }
            check_fn(&file.label, f, &mut out);
        }
    }
    out
}

fn check_fn(label: &str, f: &FnDef, out: &mut Vec<Diagnostic>) {
    let graph = cfg::build(f);
    for (id, node) in graph.nodes.iter().enumerate() {
        for expr in &node.exprs {
            for call in &expr.calls {
                if !is_arena_insert(&call.recv, &call.method) {
                    continue;
                }
                if call.discarded {
                    out.push(leak(label, f, call.line, call.col,
                        "FetchArena slot allocated and immediately discarded: the SlotId is unrecoverable"));
                    continue;
                }
                // A binding on this node tracks the slot; no binding means
                // the SlotId flows into the enclosing expression (struct
                // literal, call argument) and escapes by construction.
                let Some(var) = node.defs.first() else {
                    continue;
                };
                if var == "_" {
                    out.push(leak(label, f, call.line, call.col,
                        "FetchArena slot bound to `_` is dropped on the spot: the SlotId is unrecoverable"));
                    continue;
                }
                let var = var.clone();
                // Leak iff the exit is reachable without any mention of the
                // binding. A node that rebinds the name also ends the
                // handle's liveness.
                let leaked = graph.exit_reachable_avoiding(id, |n| {
                    n.exprs.iter().any(|e| e.uses(&var)) || n.defs.contains(&var)
                });
                if leaked {
                    out.push(leak(
                        label,
                        f,
                        call.line,
                        call.col,
                        &format!(
                            "FetchArena slot `{var}` can reach a function exit without a \
                             free or transfer on some path"
                        ),
                    ));
                }
            }
        }
    }
}

fn leak(label: &str, f: &FnDef, line: u32, col: u32, message: &str) -> Diagnostic {
    Diagnostic::error(
        label,
        line,
        FETCH_SLOT_LEAK,
        format!("{message} (in fn {})", f.name),
        "every CFG path out of the function must take(), transfer (MSHR/waiter/queue) \
         or return the slot; if a path is provably unreachable, allowlist it with the \
         reason",
    )
    .with_col(col)
}
