//! simcheck — the flow-sensitive analysis tier.
//!
//! Three whole-program analyses over the parser/CFG layer, each shipping
//! as a regular `gpumem-lint` rule with the usual `simlint::allow` escape
//! hatch:
//!
//! * [`shard`] — shard isolation: code running inside the epoch engine's
//!   shard contexts (`*Chunk`/`*Pack` methods in `parallel.rs`) must not
//!   touch crossbar fabric state; cross-shard effects go through the
//!   `take_landings`/`restore_landings` snapshot protocol or the
//!   coordinator's `take_ports`/`restore_ports` replay.
//! * [`slots`] — fetch-slot leaks: every `FetchArena` slot allocation must
//!   be consumed (freed, transferred into an MSHR, or escaped) on every
//!   CFG path to the function exit.
//! * [`deadlock`] — queue/credit deadlock freedom: the push/pop topology
//!   over the named `SimQueue`s forms a resource-dependency graph; every
//!   cycle must contain a guaranteed (capacity-unguarded) drain.
//!
//! The analyses run over parsed files as one unit so the deadlock graph
//! can span crates; per-file rules stay in [`crate::rules`].

pub mod deadlock;
pub mod shard;
pub mod slots;

use crate::parser::ParsedFile;
use crate::report::Diagnostic;

/// One source file prepared for the flow-sensitive tier.
pub struct AnalyzedFile {
    /// Diagnostic label (workspace-relative path when available).
    pub label: String,
    /// The parsed statement trees.
    pub parsed: ParsedFile,
}

/// Runs all three analyses over the unit.
pub fn run(files: &[AnalyzedFile]) -> Vec<Diagnostic> {
    let mut out = shard::check(files);
    out.extend(slots::check(files));
    out.extend(deadlock::check(files));
    out
}
