//! The simlint rule catalogue and the token-level rule engine.
//!
//! Rules operate on the comment-free token stream from [`crate::lexer`].
//! Determinism rules are scoped to *non-test simulation code*: files under a
//! `tests/` directory and items inside `#[cfg(test)]` blocks are exempt,
//! because test harnesses legitimately read the environment and hash-order
//! nondeterminism there cannot leak into a `SimReport`.

use crate::lexer::{Tok, Token};
use crate::report::Diagnostic;

/// Metadata describing one rule, surfaced by `gpumem-lint rules` and used to
/// validate `simlint::allow` directives.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule id, as written in `simlint::allow(<id>, …)`.
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Whether `// simlint::allow(…)` may suppress it.
    pub suppressible: bool,
}

/// Unordered hash containers in simulation code.
pub const NO_HASH_COLLECTIONS: &str = "no-hash-collections";
/// Host wall-clock reads in simulation code.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
/// Process-environment reads in simulation code.
pub const NO_ENV: &str = "no-env";
/// Thread-identity-dependent code in simulation code.
pub const NO_THREAD_ID: &str = "no-thread-id";
/// Any `unsafe` token anywhere in the workspace.
pub const NO_UNSAFE: &str = "no-unsafe";
/// A `crates/*` library missing `#![forbid(unsafe_code)]`.
pub const MISSING_FORBID_UNSAFE: &str = "missing-forbid-unsafe";
/// `take_ports` without a matching `restore_ports` on every path out.
pub const PORT_PAIRING: &str = "port-pairing";
/// A `crates/config` baseline constant drifting from the Table I manifest.
pub const TABLE_I_DRIFT: &str = "table-i-drift";
/// `unwrap`/`expect`/`panic!` in model-crate simulation code.
pub const NO_PANIC_IN_MODEL: &str = "no-panic-in-model";
/// A malformed or reasonless `simlint::allow` directive.
pub const ALLOW_SYNTAX: &str = "allow-syntax";
/// A `simlint::allow` directive that suppressed nothing.
pub const UNUSED_ALLOW: &str = "unused-allow";
/// Raw filesystem I/O in sweep code outside its journal module.
pub const FS_OUTSIDE_JOURNAL: &str = "fs-outside-journal";
/// Shard-context code touching fabric or cross-shard mutable state
/// (simcheck tier).
pub const SHARD_ISOLATION: &str = "shard-isolation";
/// A `FetchArena` slot allocation not consumed on every CFG exit path
/// (simcheck tier).
pub const FETCH_SLOT_LEAK: &str = "fetch-slot-leak";
/// A queue/credit resource cycle with no guaranteed drain (simcheck tier).
pub const QUEUE_DEADLOCK: &str = "queue-deadlock";

/// The full rule catalogue.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: NO_HASH_COLLECTIONS,
        summary: "deny HashMap/HashSet/RandomState in non-test simulation code \
                  (iteration order is nondeterministic)",
        suppressible: true,
    },
    RuleInfo {
        id: NO_WALL_CLOCK,
        summary: "deny Instant/SystemTime outside the one allowlisted \
                  host-reporting site (gpumem_types::host_wall_clock)",
        suppressible: true,
    },
    RuleInfo {
        id: NO_ENV,
        summary: "deny std::env reads in non-test simulation code",
        suppressible: true,
    },
    RuleInfo {
        id: NO_THREAD_ID,
        summary: "deny thread::current (thread-identity-dependent behaviour) \
                  in non-test simulation code",
        suppressible: true,
    },
    RuleInfo {
        id: NO_UNSAFE,
        summary: "deny the `unsafe` keyword everywhere; not allowlistable",
        suppressible: false,
    },
    RuleInfo {
        id: MISSING_FORBID_UNSAFE,
        summary: "every crates/* library must carry #![forbid(unsafe_code)]",
        suppressible: false,
    },
    RuleInfo {
        id: PORT_PAIRING,
        summary: "every take_ports in a function body must pair with a \
                  restore_ports on all paths out",
        suppressible: true,
    },
    RuleInfo {
        id: TABLE_I_DRIFT,
        summary: "crates/config baseline values must match the machine-readable \
                  Table I manifest",
        suppressible: false,
    },
    RuleInfo {
        id: NO_PANIC_IN_MODEL,
        summary: "deny .unwrap()/.expect()/panic! in non-test model-crate code \
                  (crates/{sim,noc,dram,cache,simt}); fail with typed SimErrors \
                  instead of crashing mid-run",
        suppressible: true,
    },
    RuleInfo {
        id: ALLOW_SYNTAX,
        summary: "simlint::allow directives must name a known suppressible rule \
                  and give a non-empty reason",
        suppressible: false,
    },
    RuleInfo {
        id: UNUSED_ALLOW,
        summary: "simlint::allow directives that suppress nothing are flagged \
                  (warning; error under --deny-all)",
        suppressible: false,
    },
    RuleInfo {
        id: FS_OUTSIDE_JOURNAL,
        summary: "sweep-crate code must route all filesystem I/O through its \
                  journal module (std::fs / File / OpenOptions are denied \
                  elsewhere, so the write-ahead commit protocol cannot be \
                  bypassed)",
        suppressible: true,
    },
    RuleInfo {
        id: SHARD_ISOLATION,
        summary: "epoch-engine shard contexts (*Chunk/*Pack methods in \
                  parallel.rs) must not name fabric state, call \
                  coordinator-only protocol methods, or mutate through \
                  shared parameters",
        suppressible: true,
    },
    RuleInfo {
        id: FETCH_SLOT_LEAK,
        summary: "every FetchArena slot allocation must be freed, transferred \
                  or escaped on every CFG path to the function exit",
        suppressible: true,
    },
    RuleInfo {
        id: QUEUE_DEADLOCK,
        summary: "every cycle in the queue/credit resource-dependency graph \
                  must contain a capacity-unguarded drain",
        suppressible: true,
    },
];

/// Looks up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

fn is_punct(code: &[Token], i: usize, c: char) -> bool {
    matches!(code.get(i), Some(Token { tok: Tok::Punct(p), .. }) if *p == c)
}

fn ident_at(code: &[Token], i: usize) -> Option<&str> {
    match code.get(i) {
        Some(Token {
            tok: Tok::Ident(s), ..
        }) => Some(s.as_str()),
        _ => None,
    }
}

/// True when tokens at `i` spell `a::b`.
fn is_path2(code: &[Token], i: usize, a: &str, b: &str) -> bool {
    ident_at(code, i) == Some(a)
        && is_punct(code, i + 1, ':')
        && is_punct(code, i + 2, ':')
        && ident_at(code, i + 3) == Some(b)
}

/// Inclusive line ranges covered by `#[cfg(test)]` items (and any other
/// attribute mentioning `cfg` + `test`, e.g. `#[cfg(any(test, …))]`, but not
/// `#[cfg(not(test))]`).
pub fn cfg_test_spans(code: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(is_punct(code, i, '#') && is_punct(code, i + 1, '[')) {
            i += 1;
            continue;
        }
        // Find the matching `]` of the attribute.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut attr_end = None;
        while j < code.len() {
            match code[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        attr_end = Some(j);
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let Some(attr_end) = attr_end else { break };
        let attr = &code[i..=attr_end];
        let has = |name: &str| {
            attr.iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
        };
        if has("cfg") && has("test") && !has("not") {
            if let Some(span) = item_span(code, attr_end + 1, code[i].line) {
                spans.push(span);
            }
        }
        i = attr_end + 1;
    }
    spans
}

/// Extent of the item starting at token `start` (skipping further
/// attributes): up to the closing brace of its first `{…}` block, or to the
/// terminating `;` for brace-less items.
fn item_span(code: &[Token], mut start: usize, first_line: u32) -> Option<(u32, u32)> {
    // Skip stacked attributes.
    while is_punct(code, start, '#') && is_punct(code, start + 1, '[') {
        let mut depth = 0usize;
        let mut j = start + 1;
        loop {
            match code.get(j).map(|t| &t.tok) {
                Some(Tok::Punct('[')) => depth += 1,
                Some(Tok::Punct(']')) => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                None => return None,
                _ => {}
            }
            j += 1;
        }
        start = j + 1;
    }
    let mut k = start;
    while k < code.len() {
        match code[k].tok {
            Tok::Punct(';') => return Some((first_line, code[k].line)),
            Tok::Punct('{') => {
                let close = matching_brace(code, k)?;
                return Some((first_line, code[close].line));
            }
            _ => k += 1,
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in code.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// Crates whose non-test code must stay panic-free: a simulation abort must
/// surface as a typed `SimError`, never a crash, so the watchdog and the
/// parallel engine's degradation path stay reachable.
const MODEL_CRATE_PREFIXES: &[&str] = &[
    "crates/sim/",
    "crates/noc/",
    "crates/dram/",
    "crates/cache/",
    "crates/simt/",
    "crates/tracefmt/",
];

fn in_model_crate(file: &str) -> bool {
    MODEL_CRATE_PREFIXES.iter().any(|p| file.starts_with(p))
}

/// Runs every token-level rule over one file's comment-free stream.
///
/// `is_test` exempts the whole file from the determinism rules (set for
/// files under a `tests/` directory); `#[cfg(test)]` spans are computed
/// internally and exempt likewise.
pub fn run(file: &str, code: &[Token], is_test: bool) -> Vec<Diagnostic> {
    let spans = cfg_test_spans(code);
    let mut diags = Vec::new();
    let exempt = |line: u32| is_test || in_spans(&spans, line);
    let model = in_model_crate(file);
    // The sweep crate's crash-safety guarantee holds only if every disk
    // mutation goes through its journal module; any other sweep file doing
    // raw filesystem I/O silently bypasses the write-ahead protocol.
    let sweep_scope = file.contains("sweep") && !file.ends_with("journal.rs");

    for (i, t) in code.iter().enumerate() {
        let line = t.line;
        if let Tok::Ident(name) = &t.tok {
            match name.as_str() {
                "unwrap" | "expect"
                    if model
                        && !exempt(line)
                        && is_punct(code, i.wrapping_sub(1), '.')
                        && is_punct(code, i + 1, '(') =>
                {
                    diags.push(Diagnostic::error(
                        file,
                        line,
                        NO_PANIC_IN_MODEL,
                        format!("`.{name}()` can panic inside the simulation model"),
                        "return a typed SimError (or make the state impossible by \
                         construction); model code must fail loudly but structuredly",
                    ));
                }
                "panic" if model && !exempt(line) && is_punct(code, i + 1, '!') => {
                    diags.push(Diagnostic::error(
                        file,
                        line,
                        NO_PANIC_IN_MODEL,
                        "`panic!` aborts the run without a typed error",
                        "return a SimError variant so callers can diagnose the wedge; \
                         assert!/debug_assert! remain available for true invariants",
                    ));
                }
                "HashMap" | "HashSet" | "RandomState" if !exempt(line) => {
                    diags.push(Diagnostic::error(
                        file,
                        line,
                        NO_HASH_COLLECTIONS,
                        format!("`{name}` has nondeterministic iteration order"),
                        "use BTreeMap/BTreeSet or an index-keyed Vec; report order must \
                         not depend on hasher state",
                    ));
                }
                "Instant" | "SystemTime" if !exempt(line) => {
                    diags.push(Diagnostic::error(
                        file,
                        line,
                        NO_WALL_CLOCK,
                        format!("`{name}` reads the host wall clock"),
                        "route timing through gpumem_types::host_wall_clock(), the one \
                         allowlisted host-reporting site",
                    ));
                }
                "unsafe" => {
                    diags.push(Diagnostic::error(
                        file,
                        line,
                        NO_UNSAFE,
                        "`unsafe` code is banned workspace-wide",
                        "rewrite safely; every crate carries #![forbid(unsafe_code)] and \
                         this rule is not allowlistable",
                    ));
                }
                _ => {}
            }
        }
        if is_path2(code, i, "std", "env") && !exempt(line) {
            diags.push(Diagnostic::error(
                file,
                line,
                NO_ENV,
                "`std::env` makes behaviour depend on the process environment",
                "plumb configuration explicitly (GpuConfig / function arguments); \
                 host CLIs may allowlist with a reason",
            ));
        }
        if sweep_scope && !exempt(line) {
            // `std::fs` is caught at `std`; a bare `fs::…` (via `use
            // std::fs`) is caught at `fs` unless it is the tail of a
            // `std::fs` path already flagged one token earlier.
            let fs_path = is_path2(code, i, "std", "fs")
                || (ident_at(code, i) == Some("fs")
                    && is_punct(code, i + 1, ':')
                    && is_punct(code, i + 2, ':')
                    && !is_punct(code, i.wrapping_sub(1), ':'));
            let fs_type = matches!(ident_at(code, i), Some("File" | "OpenOptions"));
            if fs_path || fs_type {
                diags.push(Diagnostic::error(
                    file,
                    line,
                    FS_OUTSIDE_JOURNAL,
                    "raw filesystem I/O in sweep code outside the journal module",
                    "route writes through DiskStore (crates/sweep/src/journal.rs) \
                     so every mutation follows the write-ahead journal + atomic \
                     rename commit protocol",
                ));
            }
        }
        if is_path2(code, i, "thread", "current") && !exempt(line) {
            diags.push(Diagnostic::error(
                file,
                line,
                NO_THREAD_ID,
                "`thread::current` introduces thread-identity-dependent behaviour",
                "shard by deterministic index instead; results must be identical at \
                 every thread count",
            ));
        }
    }

    diags.extend(port_pairing(file, code));
    diags
}

/// The take/restore pairs the crossbar snapshot APIs expose: whole-port
/// dismantling (`take_ports`) and the epoch landing-schedule snapshot
/// (`take_landings`). Both hand fabric-owned state to the caller, so both
/// must be returned on every path out.
const SNAPSHOT_PAIRS: &[(&str, &str)] = &[
    ("take_ports", "restore_ports"),
    ("take_landings", "restore_landings"),
];

/// Token-level take/restore pairing inside each `fn` body, for every
/// snapshot API in [`SNAPSHOT_PAIRS`].
///
/// Within one body, in token order: each take call raises that pair's
/// outstanding count, each restore lowers it, and while any count is
/// positive a `return` or `?` is an early exit that leaks fabric state.
/// Every count must return to zero by the closing brace. Definition sites
/// (`fn take_ports`) are ignored.
fn port_pairing(file: &str, code: &[Token]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if ident_at(code, i) != Some("fn") {
            i += 1;
            continue;
        }
        // Locate the body's opening brace: skip the parameter parens, then
        // take the next `{` (a `;` first means a bodyless trait fn).
        let mut j = i + 1;
        let mut paren = 0usize;
        let open = loop {
            match code.get(j).map(|t| &t.tok) {
                Some(Tok::Punct('(')) => paren += 1,
                Some(Tok::Punct(')')) => paren -= 1,
                Some(Tok::Punct('{')) if paren == 0 => break Some(j),
                Some(Tok::Punct(';')) if paren == 0 => break None,
                None => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let Some(close) = matching_brace(code, open) else {
            i += 1;
            continue;
        };
        let mut outstanding = [0i64; SNAPSHOT_PAIRS.len()];
        let mut last_take_line = [code[i].line; SNAPSHOT_PAIRS.len()];
        for k in open..close {
            match &code[k].tok {
                Tok::Ident(name) => {
                    if ident_at(code, k.wrapping_sub(1)) != Some("fn") {
                        for (p, &(take, restore)) in SNAPSHOT_PAIRS.iter().enumerate() {
                            if name == take {
                                outstanding[p] += 1;
                                last_take_line[p] = code[k].line;
                            } else if name == restore {
                                outstanding[p] -= 1;
                            }
                        }
                    }
                    if name == "return" {
                        for (p, &(take, restore)) in SNAPSHOT_PAIRS.iter().enumerate() {
                            if outstanding[p] > 0 {
                                diags.push(Diagnostic::error(
                                    file,
                                    code[k].line,
                                    PORT_PAIRING,
                                    format!("`return` while {take} state is held"),
                                    format!(
                                        "{restore} before every exit path (taken at line \
                                         {}); the parallel engine requires the \
                                         fabric to get its state back",
                                        last_take_line[p]
                                    ),
                                ));
                            }
                        }
                    }
                }
                Tok::Punct('?') => {
                    for (p, &(take, restore)) in SNAPSHOT_PAIRS.iter().enumerate() {
                        if outstanding[p] > 0 {
                            diags.push(Diagnostic::error(
                                file,
                                code[k].line,
                                PORT_PAIRING,
                                format!("`?` may exit while {take} state is held"),
                                format!(
                                    "{restore} before propagating errors (taken at line {})",
                                    last_take_line[p]
                                ),
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
        for (p, &(take, restore)) in SNAPSHOT_PAIRS.iter().enumerate() {
            if outstanding[p] > 0 {
                diags.push(Diagnostic::error(
                    file,
                    last_take_line[p],
                    PORT_PAIRING,
                    format!("{take} without a matching {restore} in this function"),
                    format!("call {restore} on the same crossbar before the function returns"),
                ));
            } else if outstanding[p] < 0 {
                diags.push(Diagnostic::error(
                    file,
                    code[open].line,
                    PORT_PAIRING,
                    format!("{restore} without a preceding {take} in this function"),
                    format!("{take} and {restore} must pair within one function body"),
                ));
            }
        }
        // Continue scanning after the `fn` keyword so nested items are still
        // visited (their tokens are counted in the enclosing body too, which
        // keeps balanced nests balanced).
        i += 1;
    }
    diags
}

/// True when the comment-free stream contains `#![forbid(unsafe_code)]`.
pub fn has_forbid_unsafe_attr(code: &[Token]) -> bool {
    code.windows(8).any(|w| {
        matches!(&w[0].tok, Tok::Punct('#'))
            && matches!(&w[1].tok, Tok::Punct('!'))
            && matches!(&w[2].tok, Tok::Punct('['))
            && matches!(&w[3].tok, Tok::Ident(s) if s == "forbid")
            && matches!(&w[4].tok, Tok::Punct('('))
            && matches!(&w[5].tok, Tok::Ident(s) if s == "unsafe_code")
            && matches!(&w[6].tok, Tok::Punct(')'))
            && matches!(&w[7].tok, Tok::Punct(']'))
    })
}
