//! Table I manifest tests: the shipped manifest must match both the source
//! literals in `crates/config/src/gpu.rs` (what the static check reads) and
//! the *runtime* `GpuConfig::gtx480()` values (double-entry bookkeeping, so
//! the manifest itself cannot drift from the code it guards).

use std::path::Path;

use gpumem_config::GpuConfig;
use gpumem_lint::manifest::{check_source, parse_manifest, ManifestEntry};
use gpumem_lint::EMBEDDED_MANIFEST;

fn gpu_rs_source() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../config/src/gpu.rs");
    std::fs::read_to_string(path).expect("crates/config/src/gpu.rs exists")
}

fn manifest() -> Vec<ManifestEntry> {
    parse_manifest(EMBEDDED_MANIFEST).expect("shipped manifest parses")
}

#[test]
fn shipped_manifest_matches_config_source() {
    let diags = check_source(&manifest(), "gpu.rs", &gpu_rs_source());
    assert!(diags.is_empty(), "Table I drift:\n{diags:?}");
}

#[test]
fn manifest_covers_every_table_i_row() {
    let m = manifest();
    // 13 Table I rows across (a)/(b)/(c) plus 3 structural section-II
    // values; see EXPERIMENTS.md.
    assert_eq!(m.iter().filter(|e| e.table.starts_with("I(")).count(), 13);
    assert_eq!(m.len(), 16);
}

#[test]
fn perturbed_constant_is_detected() {
    // Perturb each manifest-guarded literal in turn; every single one must
    // trip the drift check (this is the acceptance criterion: the check
    // fails when a crates/config baseline constant is perturbed).
    let src = gpu_rs_source();
    let m = manifest();
    for e in &m {
        let field = e.field.rsplit('.').next().expect("dotted path");
        let needle = format!("{field}: {}", e.baseline);
        let replacement = format!("{field}: {}", e.baseline + 1);
        let perturbed = src.replacen(&needle, &replacement, 1);
        assert_ne!(
            perturbed, src,
            "fixture perturbation for {} applied",
            e.field
        );
        let diags = check_source(&m, "gpu.rs", &perturbed);
        // Some `field: value` texts repeat across config blocks (both MSHR
        // sizes are 32), so the flagged path may be the sibling field — what
        // matters is that every perturbation trips the drift rule.
        assert!(
            diags.iter().any(|d| d.rule == "table-i-drift"),
            "perturbing {} must be detected; got {diags:?}",
            e.field
        );
    }
}

#[test]
fn drift_diagnostic_names_field_and_both_values() {
    let src = gpu_rs_source().replacen("scheduler_queue: 16", "scheduler_queue: 64", 1);
    let diags = check_source(&manifest(), "gpu.rs", &src);
    let d = diags
        .iter()
        .find(|d| d.rule == "table-i-drift")
        .expect("drift detected");
    assert!(d.message.contains("dram.scheduler_queue"));
    assert!(
        d.message.contains("64") && d.message.contains("16"),
        "{}",
        d.message
    );
    assert!(d.line > 0);
}

#[test]
fn missing_field_is_detected() {
    let src = gpu_rs_source().replace("scheduler_queue", "sched_queue_renamed");
    let diags = check_source(&manifest(), "gpu.rs", &src);
    assert!(diags
        .iter()
        .any(|d| d.message.contains("dram.scheduler_queue") && d.message.contains("not found")));
}

#[test]
fn manifest_matches_runtime_gtx480() {
    let c = GpuConfig::gtx480();
    for e in &manifest() {
        let actual = match e.field.as_str() {
            "num_cores" => c.num_cores as u64,
            "num_partitions" => c.num_partitions as u64,
            "line_bytes" => c.line_bytes,
            "core.mem_pipeline_width" => c.core.mem_pipeline_width as u64,
            "l1.mshr_entries" => c.l1.mshr_entries as u64,
            "l1.miss_queue" => c.l1.miss_queue as u64,
            "noc.flit_bytes" => c.noc.flit_bytes,
            "l2.access_queue" => c.l2.access_queue as u64,
            "l2.miss_queue" => c.l2.miss_queue as u64,
            "l2.response_queue" => c.l2.response_queue as u64,
            "l2.mshr_entries" => c.l2.mshr_entries as u64,
            "l2.banks_per_partition" => c.l2.banks_per_partition as u64,
            "l2.data_port_bytes" => c.l2.data_port_bytes,
            "dram.scheduler_queue" => c.dram.scheduler_queue as u64,
            "dram.banks" => c.dram.banks as u64,
            "dram.bus_bytes" => c.dram.bus_bytes,
            other => panic!("manifest names unknown field {other}"),
        };
        assert_eq!(
            actual, e.baseline,
            "runtime gtx480().{} disagrees with the Table {} manifest",
            e.field, e.table
        );
    }
}
