//! Tokenization torture tests: the constructs that make naive text
//! matching lie about Rust code.

use gpumem_lint::lexer::{lex, split_comments, Tok};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .into_iter()
        .filter_map(|t| match t.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        })
        .collect()
}

fn kinds(src: &str) -> Vec<Tok> {
    lex(src).into_iter().map(|t| t.tok).collect()
}

#[test]
fn nested_block_comments() {
    // The inner `/* */` must not close the outer comment: `HashMap` stays
    // commented out, `after` is code.
    let src = "/* outer /* inner HashMap */ still comment */ after";
    assert_eq!(idents(src), ["after"]);
    let (code, comments) = split_comments(lex(src));
    assert_eq!(code.len(), 1);
    assert_eq!(comments.len(), 1);
    assert!(
        matches!(&comments[0].tok, Tok::Comment(text) if text.contains("inner HashMap")),
        "nested comment keeps its text"
    );
}

#[test]
fn raw_strings_with_hashes() {
    // The embedded `"#` is not enough to close an `r##` string.
    let src = r###"let x = r##"contains "# quote and unsafe"##; done"###;
    assert_eq!(idents(src), ["let", "x", "done"]);
    // A raw string with no hashes closes at the first quote.
    assert_eq!(idents(r#"let y = r"HashMap"; z"#), ["let", "y", "z"]);
}

#[test]
fn lifetime_vs_char_literal() {
    // `'a` in a generic position is a lifetime; `'a'` is a char.
    let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|t| matches!(t, Tok::Lifetime(n) if n == "a"))
        .collect();
    assert_eq!(lifetimes.len(), 2);
    assert_eq!(toks.iter().filter(|t| matches!(t, Tok::Char)).count(), 1);
    // 'static is a lifetime even with no generic bracket nearby.
    assert!(kinds("&'static str")
        .iter()
        .any(|t| matches!(t, Tok::Lifetime(n) if n == "static")));
    // Escaped char literals never lex as lifetimes.
    assert_eq!(
        kinds(r"'\n'")
            .iter()
            .filter(|t| matches!(t, Tok::Char))
            .count(),
        1
    );
    assert_eq!(
        kinds(r"'\''")
            .iter()
            .filter(|t| matches!(t, Tok::Char))
            .count(),
        1
    );
}

#[test]
fn byte_strings_and_byte_chars() {
    // `b"..."` and `br#"..."#` are strings, `b'x'` is a char; none leak
    // their content as identifiers.
    assert_eq!(idents(r#"let b1 = b"unsafe bytes";"#), ["let", "b1"]);
    assert_eq!(
        idents(r###"let b2 = br#"raw "unsafe" bytes"#;"###),
        ["let", "b2"]
    );
    let toks = kinds(r"let c = b'\0';");
    assert_eq!(toks.iter().filter(|t| matches!(t, Tok::Char)).count(), 1);
    // A bare `b` stays an identifier.
    assert_eq!(idents("let b = 1;"), ["let", "b"]);
}

#[test]
fn raw_identifiers() {
    assert_eq!(idents("let r#match = 1;"), ["let", "match"]);
}

#[test]
fn numeric_literals_keep_their_value() {
    let toks = kinds("16 0x20 1_024 32usize 2.5 1e9");
    let ints: Vec<u64> = toks
        .iter()
        .filter_map(|t| match t {
            Tok::Int(v) => Some(*v),
            _ => None,
        })
        .collect();
    assert_eq!(ints, [16, 32, 1024, 32]);
    assert_eq!(toks.iter().filter(|t| matches!(t, Tok::Float)).count(), 2);
}

#[test]
fn string_escapes_do_not_end_early() {
    // The escaped quote must not terminate the string and expose `unsafe`.
    assert_eq!(
        idents(r#"let s = "escaped \" unsafe"; tail"#),
        ["let", "s", "tail"]
    );
}

#[test]
fn line_numbers_survive_multiline_tokens() {
    let src = "a\n/* two\nlines */\nb\nr#\"raw\nstring\"#\nc";
    let toks = lex(src);
    let c = toks
        .iter()
        .find(|t| matches!(&t.tok, Tok::Ident(n) if n == "c"))
        .expect("c lexed");
    assert_eq!(c.line, 7);
}

#[test]
fn shebang_line_is_skipped() {
    // A leading shebang is legal in a Rust source file and must not lex as
    // `#` `!` `/` punctuation (which would desync the parser tier).
    let toks = lex("#!/usr/bin/env run-cargo-script\nfn main() {}\n");
    assert!(
        matches!(&toks[0].tok, Tok::Ident(n) if n == "fn"),
        "first token after a shebang is `fn`, got {:?}",
        toks[0].tok
    );
    assert_eq!(toks[0].line, 2);
}

#[test]
fn inner_attribute_is_not_a_shebang() {
    // `#![forbid(unsafe_code)]` at file start shares the `#!` prefix with a
    // shebang but is an attribute: every token must survive.
    let toks = lex("#![forbid(unsafe_code)]\nfn main() {}\n");
    assert!(matches!(&toks[0].tok, Tok::Punct('#')));
    assert!(matches!(&toks[1].tok, Tok::Punct('!')));
    assert!(idents("#![forbid(unsafe_code)]\nfn main() {}").contains(&"forbid".to_string()));
}

#[test]
fn string_payloads_are_kept() {
    // simcheck's resource discovery reads queue names out of
    // `SimQueue::new("…")`, so string literals keep their content.
    let toks = lex(r#"SimQueue::new("l2_access", 8)"#);
    assert!(toks
        .iter()
        .any(|t| matches!(&t.tok, Tok::Str(s) if s == "l2_access")));
    // Raw strings keep content verbatim, including embedded hashes.
    let toks = lex(r###"let x = r##"a "# b"##;"###);
    assert!(toks
        .iter()
        .any(|t| matches!(&t.tok, Tok::Str(s) if s == r##"a "# b"##)));
}

#[test]
fn raw_string_with_hashes_inside_macro_body() {
    // A `#`-fenced raw string inside a macro invocation must not eat the
    // macro's closing delimiters.
    let src = r###"write!(f, r#"{"rule": "x"}"#)?; tail"###;
    assert_eq!(idents(src), ["write", "f", "tail"]);
}

#[test]
fn columns_are_tracked() {
    let toks = lex("ab cd\n  ef");
    let cols: Vec<(u32, u32)> = toks.iter().map(|t| (t.line, t.col)).collect();
    assert_eq!(cols, [(1, 1), (1, 4), (2, 3)]);
    // Columns reset across a multi-line string.
    let toks = lex("\"a\nb\" x");
    let x = toks
        .iter()
        .find(|t| matches!(&t.tok, Tok::Ident(n) if n == "x"))
        .expect("x lexed");
    assert_eq!((x.line, x.col), (2, 4));
}
