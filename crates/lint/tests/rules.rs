//! Fixture-based rule tests: each file under `tests/fixtures/` seeds a known
//! violation class (or a legitimate allowlisted site) and the engine must
//! report exactly the expected findings.

use std::path::Path;

use gpumem_lint::{lint_source, Diagnostic, Severity};

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture exists");
    // Fixtures stand in for production sources, so is_test = false.
    lint_source(name, &src, false)
}

fn rule_lines(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn hash_map_fixture() {
    let d = lint_fixture("hash_map.rs");
    assert_eq!(rule_lines(&d, "no-hash-collections"), [2, 4, 5]);
    assert_eq!(d.len(), 3, "nothing else fires: {d:?}");
}

#[test]
fn wall_clock_fixture() {
    let d = lint_fixture("wall_clock.rs");
    assert_eq!(rule_lines(&d, "no-wall-clock"), [2, 5]);
    assert_eq!(d.len(), 2, "nothing else fires: {d:?}");
}

#[test]
fn env_thread_fixture() {
    let d = lint_fixture("env_thread.rs");
    assert_eq!(rule_lines(&d, "no-env"), [3]);
    assert_eq!(rule_lines(&d, "no-thread-id"), [4]);
    assert_eq!(d.len(), 2, "nothing else fires: {d:?}");
}

#[test]
fn unsafe_fixture() {
    let d = lint_fixture("unsafe_block.rs");
    assert_eq!(rule_lines(&d, "no-unsafe"), [2, 7]);
    assert_eq!(d.len(), 2, "nothing else fires: {d:?}");
}

#[test]
fn port_leak_fixture() {
    let d = lint_fixture("port_leak.rs");
    let leaks = rule_lines(&d, "port-pairing");
    // `leak` (take at line 7, never restored), `early_exit` (return at line
    // 14 while ports are out). `balanced` stays silent.
    assert_eq!(leaks, [7, 14], "findings: {d:?}");
    assert_eq!(d.len(), 2, "nothing else fires: {d:?}");
}

#[test]
fn landing_leak_fixture() {
    let d = lint_fixture("landing_leak.rs");
    let leaks = rule_lines(&d, "port-pairing");
    // `leak` (take_landings at line 9, never restored), `early_exit`
    // (`?` at line 15 while the schedule is out). `balanced` and
    // `balanced_fallible` stay silent.
    assert_eq!(leaks, [9, 15], "findings: {d:?}");
    assert_eq!(d.len(), 2, "nothing else fires: {d:?}");
}

#[test]
fn allowed_fixture_is_clean() {
    let d = lint_fixture("allowed_ok.rs");
    assert!(d.is_empty(), "allowlisted sites must not fire: {d:?}");
}

#[test]
fn allow_bad_fixture() {
    let d = lint_fixture("allow_bad.rs");
    assert_eq!(rule_lines(&d, "allow-syntax").len(), 2, "findings: {d:?}");
    // The reasonless directive suppresses nothing, so both HashMap sites
    // still fire.
    assert_eq!(
        rule_lines(&d, "no-hash-collections").len(),
        2,
        "findings: {d:?}"
    );
    let unused = rule_lines(&d, "unused-allow");
    assert_eq!(unused.len(), 1, "findings: {d:?}");
    assert!(d
        .iter()
        .filter(|x| x.rule == "unused-allow")
        .all(|x| x.severity == Severity::Warning));
}

#[test]
fn cfg_test_fixture_is_clean() {
    let d = lint_fixture("cfg_test_ok.rs");
    assert!(d.is_empty(), "#[cfg(test)] items are exempt: {d:?}");
}

#[test]
fn test_files_are_exempt_from_determinism_rules() {
    let src = "use std::collections::HashMap;\nfn helper() { let _ = std::env::var(\"X\"); }\n";
    assert!(lint_source("tests/some_test.rs", src, true).is_empty());
    // …but unsafe is denied even in tests.
    let with_unsafe = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    let d = lint_source("tests/some_test.rs", with_unsafe, true);
    assert_eq!(rule_lines(&d, "no-unsafe"), [1]);
}

#[test]
fn question_mark_while_ports_taken_is_flagged() {
    let src = "fn f(x: &mut Crossbar) -> Result<(), E> {\n\
               let (a, b) = x.take_ports();\n\
               let v = fallible()?;\n\
               x.restore_ports(a, b);\n\
               Ok(())\n\
               }\n";
    let d = lint_source("f.rs", src, false);
    assert_eq!(rule_lines(&d, "port-pairing"), [3], "findings: {d:?}");
}

#[test]
fn panic_in_model_crates_is_flagged() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               let a = x.unwrap();\n\
               let b = x.expect(\"msg\");\n\
               if a + b > 3 { panic!(\"boom\"); }\n\
               a\n\
               }\n";
    let d = lint_source("crates/sim/src/gpu.rs", src, false);
    assert_eq!(
        rule_lines(&d, "no-panic-in-model"),
        [2, 3, 4],
        "findings: {d:?}"
    );
    assert_eq!(d.len(), 3, "nothing else fires: {d:?}");
}

#[test]
fn panic_rule_scope_is_model_crates_only() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(lint_source("crates/core/src/run.rs", src, false).is_empty());
    assert!(lint_source("crates/lint/src/main.rs", src, false).is_empty());
    // Test files inside model crates are exempt like everywhere else.
    assert!(lint_source("crates/sim/tests/chaos.rs", src, true).is_empty());
}

#[test]
fn asserts_and_lookalike_idents_stay_legal_in_model_code() {
    let src = "fn f(v: &[u32]) -> u32 {\n\
               assert!(!v.is_empty());\n\
               debug_assert_eq!(v.len() % 2, 0);\n\
               let s = v.iter().map(|x| x.wrapping_add(1)).sum::<u32>();\n\
               s.checked_add(unwrap_or_zero(v)).unwrap_or(0)\n\
               }\n";
    let d = lint_source("crates/noc/src/crossbar.rs", src, false);
    assert!(d.is_empty(), "findings: {d:?}");
}

#[test]
fn cfg_test_blocks_in_model_crates_are_exempt_from_panic_rule() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
    let d = lint_source("crates/dram/src/lib.rs", src, false);
    assert!(d.is_empty(), "findings: {d:?}");
}

#[test]
fn allow_directive_suppresses_panic_rule_with_reason() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               // simlint::allow(no-panic-in-model, reason = \"constructor contract\")\n\
               x.expect(\"validated\")\n\
               }\n";
    let d = lint_source("crates/sim/src/gpu.rs", src, false);
    assert!(d.is_empty(), "findings: {d:?}");
}

#[test]
fn definition_sites_do_not_count_as_calls() {
    let src = "impl Crossbar {\n\
               pub fn take_ports(&mut self) -> (Vec<I>, Vec<E>) { (vec![], vec![]) }\n\
               pub fn restore_ports(&mut self, i: Vec<I>, e: Vec<E>) { drop((i, e)); }\n\
               }\n";
    let d = lint_source("xbar.rs", src, false);
    assert!(d.is_empty(), "definitions are not calls: {d:?}");
}
