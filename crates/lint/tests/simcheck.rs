//! Fixture self-tests for the flow-sensitive simcheck tier: each seeded
//! fixture must produce exactly the expected findings (correct rule, file
//! and line), and the clean control functions must stay silent.

use std::path::Path;

use gpumem_lint::{lint_source, report, Diagnostic};

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture exists");
    // Fixtures stand in for production sources, so is_test = false.
    lint_source(name, &src, false)
}

fn rule_lines(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn cross_shard_fixture() {
    let d = lint_fixture("parallel_cross_shard.rs");
    // Fabric ident (14), coordinator-only method (15), mutation through a
    // shared parameter (16); the coordinator free function stays silent.
    assert_eq!(rule_lines(&d, "shard-isolation"), [14, 15, 16]);
    assert!(d.iter().all(|v| v.file == "parallel_cross_shard.rs"));
    assert_eq!(d.len(), 3, "nothing else fires: {d:?}");
}

#[test]
fn shard_rule_is_scoped_to_parallel_files() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/parallel_cross_shard.rs");
    let src = std::fs::read_to_string(&path).expect("fixture exists");
    // The same code outside a parallel-engine file is out of scope.
    let d = lint_source("other_engine.rs", &src, false);
    assert_eq!(rule_lines(&d, "shard-isolation"), [] as [u32; 0]);
}

#[test]
fn arena_slot_leak_fixture() {
    let d = lint_fixture("arena_slot_leak.rs");
    // Fall-through leak (13), discarded SlotId (20), `_`-bound SlotId (24);
    // `clean` pairs its slot on every path.
    assert_eq!(rule_lines(&d, "fetch-slot-leak"), [13, 20, 24]);
    assert_eq!(d.len(), 3, "nothing else fires: {d:?}");
}

#[test]
fn credit_cycle_fixture() {
    let d = lint_fixture("credit_cycle.rs");
    let cycles: Vec<&Diagnostic> = d.iter().filter(|v| v.rule == "queue-deadlock").collect();
    // Exactly one cycle: ping <-> pong with both pops capacity-guarded.
    // spill -> floor has the unguarded `sweep` drain and stays legal.
    assert_eq!(cycles.len(), 1, "one cycle: {d:?}");
    assert!(cycles[0].message.contains("ping -> pong"), "{}", cycles[0]);
    assert!(!cycles[0].message.contains("spill"), "{}", cycles[0]);
    assert_eq!(d.len(), 1, "nothing else fires: {d:?}");
}

#[test]
fn simcheck_rules_are_suppressible() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/arena_slot_leak.rs");
    let src = std::fs::read_to_string(&path).expect("fixture exists");
    let src = src.replace(
        "        self.arena.insert(fetch);",
        "        // simlint::allow(fetch-slot-leak, reason = \"seeded fixture escape test\")\n\
         \x20       self.arena.insert(fetch);",
    );
    let d = lint_source("arena_slot_leak.rs", &src, false);
    // The discard finding is suppressed; the other two remain, and the
    // directive is not flagged as stale.
    let leaks = rule_lines(&d, "fetch-slot-leak");
    assert_eq!(leaks.len(), 2, "{d:?}");
    assert_eq!(rule_lines(&d, "unused-allow"), [] as [u32; 0]);
}

#[test]
fn json_report_has_stable_schema() {
    let d = lint_fixture("arena_slot_leak.rs");
    let json = report::render_json(&d, 1);
    assert!(json.starts_with("{\n  \"version\": 1,"));
    assert!(json.contains("\"rule\": \"fetch-slot-leak\""));
    assert!(json.contains("\"file\": \"arena_slot_leak.rs\""));
    assert!(json.contains("\"line\": 13"));
    assert!(json.contains("\"span\": {\"line\": 13, \"col\": 31}"));
    assert!(json.contains("\"severity\": \"error\""));
    assert!(json.contains("\"summary\": {\"errors\": 3, \"warnings\": 0, \"files_scanned\": 1}"));
}
