//! Seeded fetch-slot leaks: an allocation that reaches the function exit
//! without a free/transfer on the fall-through path, a discarded
//! allocation, and a `_`-bound allocation. `clean` pairs its slot on
//! every path and stays legal.

pub struct Demo {
    arena: FetchArena,
    mshr: Mshr,
}

impl Demo {
    pub fn leaky(&mut self, fetch: MemFetch, miss: bool) {
        let slot = self.arena.insert(fetch);
        if miss {
            self.mshr.allocate(slot);
        }
    }

    pub fn discards(&mut self, fetch: MemFetch) {
        self.arena.insert(fetch);
    }

    pub fn wildcard(&mut self, fetch: MemFetch) {
        let _ = self.arena.insert(fetch);
    }

    pub fn clean(&mut self, fetch: MemFetch) -> SlotId {
        let slot = self.arena.insert(fetch);
        self.mshr.allocate(slot);
        slot
    }
}
