// Fixture: hash containers inside #[cfg(test)] are exempt — test-only code
// cannot leak hasher order into a SimReport. The file must lint clean.

pub fn production() -> u64 {
    42
}

#[cfg(test)]
mod tests {
    use std::collections::{HashMap, HashSet};

    #[test]
    fn model_check() {
        let mut seen = HashSet::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        seen.insert(1u64);
        model.insert(1, 2);
        assert_eq!(model.len(), seen.len());
    }
}
