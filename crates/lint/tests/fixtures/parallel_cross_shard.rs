//! Seeded shard-isolation violations: a shard context (a `*Chunk` method
//! in a parallel-engine file) naming fabric state, calling a
//! coordinator-only protocol method, and mutating through a shared
//! parameter. `coordinator_replay` is a free function and stays legal.

pub struct DemoChunk {
    ticks: u64,
}

impl DemoChunk {
    pub fn phase(&mut self, xbar: &mut Crossbar, params: &CoreParams) {
        self.ticks += 1;
        let budget = params.window;
        let port = self.req_xbar.port(0);
        let snapshot = self.fabric_mut();
        xbar.try_inject(budget);
        drop((port, snapshot));
    }
}

pub fn coordinator_replay(xbar: &mut Crossbar) {
    let ports = xbar.take_ports();
    xbar.restore_ports(ports);
}
