// Fixture: unsafe code (2 findings: unsafe fn + unsafe block).
pub unsafe fn read_raw(p: *const u8) -> u8 {
    *p
}

pub fn wrapper(p: *const u8) -> u8 {
    unsafe { read_raw(p) }
}
