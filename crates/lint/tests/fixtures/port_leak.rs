// Fixture: crossbar port-discipline violations.
//
// `leak` takes ports and never restores them; `early_exit` restores on the
// happy path but returns while the ports are still out.

pub fn leak(xbar: &mut Crossbar) -> usize {
    let (ins, outs) = xbar.take_ports();
    ins.len() + outs.len()
}

pub fn early_exit(xbar: &mut Crossbar, abort: bool) -> usize {
    let (ins, outs) = xbar.take_ports();
    if abort {
        return 0;
    }
    let n = ins.len() + outs.len();
    xbar.restore_ports(ins, outs);
    n
}

pub fn balanced(xbar: &mut Crossbar) {
    let (ins, outs) = xbar.take_ports();
    xbar.restore_ports(ins, outs);
}
