// Fixture: epoch landing-schedule discipline violations.
//
// `leak` snapshots an egress port's landings and never restores them;
// `early_exit` restores on the happy path but propagates an error while
// the schedule is still out. `balanced` and `balanced_fallible` (which
// restores before the `?`) stay silent.

pub fn leak(out: &mut EgressPort, until: Cycle) -> usize {
    let sched = out.take_landings(until);
    sched.len()
}

pub fn early_exit(out: &mut EgressPort, until: Cycle) -> Result<(), E> {
    let mut sched = out.take_landings(until);
    sched.land_into(until, out)?;
    out.restore_landings(sched);
    Ok(())
}

pub fn balanced(out: &mut EgressPort, until: Cycle) {
    let sched = out.take_landings(until);
    out.restore_landings(sched);
}

pub fn balanced_fallible(out: &mut EgressPort, until: Cycle) -> Result<(), E> {
    let sched = out.take_landings(until);
    out.restore_landings(sched);
    fallible()?;
    Ok(())
}
