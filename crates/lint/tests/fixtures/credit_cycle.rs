//! Seeded queue/credit deadlock: `ping` and `pong` transfer into each
//! other, each pop guarded by the other side's capacity, and nothing in
//! the cycle drains unconditionally. The `spill`/`floor` pair has the
//! same shape plus an unguarded consumer, so it stays legal.

pub struct Relay {
    ping: SimQueue<Msg>,
    pong: SimQueue<Msg>,
    spill: SimQueue<Msg>,
    floor: SimQueue<Msg>,
}

impl Relay {
    pub fn new() -> Self {
        Relay {
            ping: SimQueue::new("ping", 8),
            pong: SimQueue::new("pong", 8),
            spill: SimQueue::new("spill", 8),
            floor: SimQueue::new("floor", 8),
        }
    }

    pub fn forward(&mut self) {
        if self.pong.is_full() {
            return;
        }
        if let Some(msg) = self.ping.pop() {
            self.pong.push(msg);
        }
    }

    pub fn backward(&mut self) {
        if !self.ping.is_full() {
            if let Some(msg) = self.pong.pop() {
                self.ping.push(msg);
            }
        }
    }

    pub fn spill_over(&mut self) {
        if !self.floor.is_full() {
            if let Some(msg) = self.spill.pop() {
                self.floor.push(msg);
            }
        }
    }

    pub fn sweep(&mut self) {
        if let Some(msg) = self.floor.pop() {
            self.retire(msg);
        }
    }
}
