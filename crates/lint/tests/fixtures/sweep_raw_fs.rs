//! Seeded violation fixture: sweep-crate code bypassing the journal
//! module with raw filesystem writes and reading the wall clock directly.
//! Expected diagnostics: `fs-outside-journal` (std::fs::write, File) and
//! `no-wall-clock` (SystemTime).

use std::time::SystemTime;

pub fn save_results_bypassing_the_journal(path: &str, body: &str) {
    let started = SystemTime::now();
    std::fs::write(path, body).expect("raw write, no journal record");
    let _f = std::fs::File::open(path);
    let _elapsed = started.elapsed();
}
