// Fixture: unordered hash containers in simulation code (3 findings).
use std::collections::HashMap;

pub fn count(xs: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
