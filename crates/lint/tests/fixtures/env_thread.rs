// Fixture: environment reads and thread-identity dependence (2 findings).
pub fn shard_hint() -> usize {
    let shards = std::env::var("SHARDS").ok();
    let _me = std::thread::current().id();
    shards.and_then(|s| s.parse().ok()).unwrap_or(1)
}
