// Fixture: every violation below is legitimately allowlisted with a reason,
// so the file must lint clean (no errors, no unused-allow warnings).

pub fn args() -> Vec<String> {
    // simlint::allow(no-env, reason = "host CLI argument parsing")
    std::env::args().collect()
}

pub fn wall() -> f64 {
    // simlint::allow(no-wall-clock, reason = "host-side throughput reporting")
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
