// Fixture: wall-clock reads in simulation code (2 findings: use + now()).
use std::time::Instant;

pub fn timed_step() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
