// Fixture: broken escape hatches.
//
// In order: a directive without a reason (allow-syntax error — the HashMap
// violations below it therefore still fire), a directive naming an unknown
// rule id, and a well-formed directive that suppresses nothing
// (unused-allow warning).

// simlint::allow(no-hash-collections)
use std::collections::HashMap;

pub fn lookup() -> Option<HashMap<u32, u32>> {
    // simlint::allow(no-such-rule, reason = "typo")
    None
}

// simlint::allow(no-env, reason = "nothing on the next line reads the env")
pub fn idle() {}
