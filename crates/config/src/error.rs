//! Configuration validation errors.

use std::error::Error;
use std::fmt;

/// An invalid configuration, reported by [`crate::GpuConfig::validate`].
///
/// Carries the offending parameter name and a human-readable constraint
/// description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    param: &'static str,
    constraint: String,
}

impl ConfigError {
    /// Creates an error for `param` violating `constraint`.
    pub fn new(param: &'static str, constraint: impl Into<String>) -> Self {
        ConfigError {
            param,
            constraint: constraint.into(),
        }
    }

    /// The offending parameter's name.
    pub fn param(&self) -> &'static str {
        self.param
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config: {} {}", self.param, self.constraint)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_parameter() {
        let e = ConfigError::new("l2.access_queue", "must be positive");
        assert_eq!(e.param(), "l2.access_queue");
        assert!(e.to_string().contains("l2.access_queue"));
        assert!(e.to_string().contains("must be positive"));
    }
}
