//! The full-system configuration and its GTX480 baseline.

use serde::{Deserialize, Serialize};

use crate::ConfigError;

/// SIMT-core (SM) front-end parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Threads per warp (fixed at 32 on Fermi).
    pub warp_size: u32,
    /// Hardware warp slots per core.
    pub max_warps: usize,
    /// Maximum concurrently resident CTAs per core.
    pub max_ctas: usize,
    /// Warp instructions issued per cycle (Fermi dual-issue = 2).
    pub issue_width: usize,
    /// Depth of the LSU memory pipeline: how many coalesced accesses may be
    /// buffered between the issue stage and the L1 port. **Table I (c):
    /// "Memory pipeline width", baseline 10, scaled 40.**
    pub mem_pipeline_width: usize,
    /// Issue-to-writeback latency charged to the issuing warp for an ALU
    /// instruction (the in-order dependent-chain approximation; see
    /// DESIGN.md).
    pub alu_latency: u64,
    /// Latency charged for a shared-memory instruction.
    pub shared_latency: u64,
}

/// Per-core private L1 data-cache parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct L1Config {
    /// Number of sets (16 KB / 4-way / 128 B lines = 32 sets on Fermi).
    pub sets: usize,
    /// Associativity.
    pub assoc: usize,
    /// Hit latency in cycles (pipelined).
    pub hit_latency: u64,
    /// MSHR entries. **Table I (c): "MSHR (L1D)", baseline 32, scaled 128.**
    pub mshr_entries: usize,
    /// Maximum warp-accesses merged into one outstanding MSHR entry.
    pub mshr_merge: usize,
    /// Miss-queue entries feeding the interconnect. **Table I (c): "L1 miss
    /// queue", baseline 8, scaled 32.**
    pub miss_queue: usize,
}

/// Interconnect (crossbar) parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Flit size in bytes. **Table I (b): "Flit size (crossbar)", baseline
    /// 4 B, scaled 16 B.** A 136 B read-response packet is 34 flits at the
    /// baseline — the response crossbar's serialization is a first-order
    /// bandwidth bottleneck.
    pub flit_bytes: u64,
    /// Flits each output port moves per *core* cycle. The GPGPU-Sim
    /// GTX480 configuration clocks the interconnect well above the core
    /// clock (and its crossbar switches per interconnect cycle), so the
    /// baseline moves 4 flits per core cycle; calibrated so the baseline
    /// L2→L1 bandwidth sits just above the DRAM bandwidth, as on the real
    /// GTX480.
    pub flits_per_cycle: u64,
    /// Fixed pipeline traversal latency of the crossbar, each direction.
    pub hop_latency: u64,
    /// Packets buffered at each crossbar input port.
    pub input_buffer_pkts: usize,
    /// Response packets buffered at each core-side ejection port.
    pub ejection_queue: usize,
}

/// Shared L2 cache parameters (per memory partition).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct L2Config {
    /// Sets per partition (128 KB / 8-way / 128 B = 128 sets; 6 partitions
    /// give the GTX480's 768 KB).
    pub sets_per_partition: usize,
    /// Associativity.
    pub assoc: usize,
    /// Banks per partition. **Table I (b): "L2 banks", baseline 2, scaled
    /// 8.**
    pub banks_per_partition: usize,
    /// Pipelined bank access latency (tag + data array).
    pub bank_latency: u64,
    /// Width of the data port returning lines to the interconnect, in
    /// bytes per cycle. **Table I (b): "L2 data port", baseline 32 B,
    /// scaled 128 B.**
    pub data_port_bytes: u64,
    /// Access-queue entries (requests arriving from the interconnect).
    /// **Table I (b): "L2 access queue", baseline 8, scaled 32.**
    pub access_queue: usize,
    /// Miss-queue entries towards DRAM. **Table I (b): "L2 miss queue",
    /// baseline 8, scaled 32.**
    pub miss_queue: usize,
    /// Response-queue entries for fills returning from DRAM. **Table I (b):
    /// "L2 response queue", baseline 8, scaled 32.**
    pub response_queue: usize,
    /// MSHR entries. **Table I (b): "MSHR", baseline 32, scaled 128.**
    pub mshr_entries: usize,
    /// Maximum requests merged per MSHR entry.
    pub mshr_merge: usize,
}

/// Off-chip DRAM channel parameters (per memory partition).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Memory-controller scheduler-queue entries. **Table I (a): "Scheduler
    /// queue", baseline 16, scaled 64.**
    pub scheduler_queue: usize,
    /// Banks per chip. **Table I (a): "DRAM Banks", baseline 16, scaled
    /// 64.**
    pub banks: usize,
    /// Data-bus width in bytes. **Table I (a): "Bus width", baseline
    /// 32 bits (4 B), scaled 64 bits (8 B)** — the paper's noted
    /// saturation exception to the 4× rule.
    pub bus_bytes: u64,
    /// Effective data transfers per pin per *core* cycle: GDDR5 is
    /// quad-pumped and clocked above the core (924 vs 700 MHz), giving
    /// ≈ 8 transfers per core cycle at the baseline.
    pub data_rate: u64,
    /// DRAM row (page) size in bytes.
    pub row_bytes: u64,
    /// Row-activate to column-command delay.
    pub t_rcd: u64,
    /// Precharge latency.
    pub t_rp: u64,
    /// Column-access (CAS) latency.
    pub t_cl: u64,
    /// Minimum row-active time before precharge.
    pub t_ras: u64,
    /// Column-to-column command spacing.
    pub t_ccd: u64,
    /// Fixed controller front-end latency (command decode, clock-domain
    /// crossing) applied to every request.
    pub controller_latency: u64,
    /// Return-queue entries from the channel back to the L2 fill path.
    pub return_queue: usize,
}

/// Complete configuration of the simulated GPU.
///
/// Construct with [`GpuConfig::gtx480`] (the paper's baseline) and derive
/// scaled configurations with [`crate::DesignPoint::apply`]. Always
/// [`validate`](GpuConfig::validate) configurations built by hand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of SIMT cores (GTX480: 15 SMs).
    pub num_cores: usize,
    /// Number of memory partitions, each an L2 slice + DRAM channel
    /// (GTX480: 6).
    pub num_partitions: usize,
    /// Cache-line size in bytes throughout the hierarchy.
    pub line_bytes: u64,
    /// Core front-end parameters.
    pub core: CoreConfig,
    /// L1 data cache parameters.
    pub l1: L1Config,
    /// Interconnect parameters.
    pub noc: NocConfig,
    /// L2 cache parameters.
    pub l2: L2Config,
    /// DRAM channel parameters.
    pub dram: DramConfig,
}

impl GpuConfig {
    /// The paper's baseline: an NVIDIA GTX480 (Fermi) as modelled in
    /// GPGPU-Sim, with every Table I parameter at its baseline value.
    ///
    /// Unloaded latencies are calibrated so that an L1 miss hitting in L2
    /// completes in ≈ 120 cycles and an L2 miss adds ≈ 100 cycles — the
    /// ideal access latencies the paper states in Section II.
    pub fn gtx480() -> Self {
        GpuConfig {
            num_cores: 15,
            num_partitions: 6,
            line_bytes: 128,
            core: CoreConfig {
                warp_size: 32,
                max_warps: 48,
                max_ctas: 8,
                issue_width: 2,
                mem_pipeline_width: 10,
                alu_latency: 4,
                shared_latency: 24,
            },
            l1: L1Config {
                sets: 32,
                assoc: 4,
                hit_latency: 4,
                mshr_entries: 32,
                mshr_merge: 8,
                miss_queue: 8,
            },
            noc: NocConfig {
                flit_bytes: 4,
                flits_per_cycle: 3,
                hop_latency: 6,
                input_buffer_pkts: 8,
                ejection_queue: 8,
            },
            l2: L2Config {
                sets_per_partition: 128,
                assoc: 8,
                banks_per_partition: 2,
                bank_latency: 95,
                data_port_bytes: 32,
                access_queue: 8,
                miss_queue: 8,
                response_queue: 8,
                mshr_entries: 32,
                mshr_merge: 8,
            },
            dram: DramConfig {
                scheduler_queue: 16,
                banks: 16,
                bus_bytes: 4,
                data_rate: 8,
                row_bytes: 2048,
                t_rcd: 20,
                t_rp: 20,
                t_cl: 20,
                t_ras: 32,
                t_ccd: 2,
                controller_latency: 60,
                return_queue: 8,
            },
        }
    }

    /// A deliberately small configuration for fast unit and property tests:
    /// 2 cores, 2 partitions, shallow queues. Not calibrated; structural
    /// behaviour only.
    pub fn tiny() -> Self {
        let mut c = Self::gtx480();
        c.num_cores = 2;
        c.num_partitions = 2;
        c.core.max_warps = 8;
        c.core.max_ctas = 2;
        c.l1.sets = 8;
        c.l2.sets_per_partition = 16;
        c
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first violated constraint:
    /// positive counts, power-of-two geometry for address mapping, flit and
    /// port sizes dividing the line size, and MSHR merge capacity ≥ 1.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn positive(v: usize, name: &'static str) -> Result<(), ConfigError> {
            if v == 0 {
                Err(ConfigError::new(name, "must be positive"))
            } else {
                Ok(())
            }
        }
        fn pow2(v: u64, name: &'static str) -> Result<(), ConfigError> {
            if !v.is_power_of_two() {
                Err(ConfigError::new(
                    name,
                    format!("must be a power of two (got {v})"),
                ))
            } else {
                Ok(())
            }
        }

        positive(self.num_cores, "num_cores")?;
        positive(self.num_partitions, "num_partitions")?;
        pow2(self.line_bytes, "line_bytes")?;

        positive(self.core.max_warps, "core.max_warps")?;
        positive(self.core.max_ctas, "core.max_ctas")?;
        positive(self.core.issue_width, "core.issue_width")?;
        positive(self.core.mem_pipeline_width, "core.mem_pipeline_width")?;
        if self.core.warp_size == 0 {
            return Err(ConfigError::new("core.warp_size", "must be positive"));
        }

        positive(self.l1.sets, "l1.sets")?;
        pow2(self.l1.sets as u64, "l1.sets")?;
        positive(self.l1.assoc, "l1.assoc")?;
        positive(self.l1.mshr_entries, "l1.mshr_entries")?;
        positive(self.l1.mshr_merge, "l1.mshr_merge")?;
        positive(self.l1.miss_queue, "l1.miss_queue")?;

        pow2(self.noc.flit_bytes, "noc.flit_bytes")?;
        if self.noc.flits_per_cycle == 0 {
            return Err(ConfigError::new("noc.flits_per_cycle", "must be positive"));
        }
        positive(self.noc.input_buffer_pkts, "noc.input_buffer_pkts")?;
        positive(self.noc.ejection_queue, "noc.ejection_queue")?;

        positive(self.l2.sets_per_partition, "l2.sets_per_partition")?;
        pow2(self.l2.sets_per_partition as u64, "l2.sets_per_partition")?;
        positive(self.l2.assoc, "l2.assoc")?;
        positive(self.l2.banks_per_partition, "l2.banks_per_partition")?;
        pow2(self.l2.banks_per_partition as u64, "l2.banks_per_partition")?;
        pow2(self.l2.data_port_bytes, "l2.data_port_bytes")?;
        if self.l2.data_port_bytes > self.line_bytes {
            return Err(ConfigError::new(
                "l2.data_port_bytes",
                "must not exceed line_bytes",
            ));
        }
        positive(self.l2.access_queue, "l2.access_queue")?;
        positive(self.l2.miss_queue, "l2.miss_queue")?;
        positive(self.l2.response_queue, "l2.response_queue")?;
        positive(self.l2.mshr_entries, "l2.mshr_entries")?;
        positive(self.l2.mshr_merge, "l2.mshr_merge")?;

        positive(self.dram.scheduler_queue, "dram.scheduler_queue")?;
        positive(self.dram.banks, "dram.banks")?;
        pow2(self.dram.banks as u64, "dram.banks")?;
        pow2(self.dram.bus_bytes, "dram.bus_bytes")?;
        if self.dram.data_rate == 0 {
            return Err(ConfigError::new("dram.data_rate", "must be positive"));
        }
        pow2(self.dram.row_bytes, "dram.row_bytes")?;
        if self.dram.row_bytes < self.line_bytes {
            return Err(ConfigError::new(
                "dram.row_bytes",
                "must be at least line_bytes",
            ));
        }
        positive(self.dram.return_queue, "dram.return_queue")?;

        if self.noc.flit_bytes > self.line_bytes {
            return Err(ConfigError::new(
                "noc.flit_bytes",
                "must not exceed line_bytes",
            ));
        }
        Ok(())
    }

    /// Number of flits a packet of `bytes` occupies on the interconnect.
    pub fn flits_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.noc.flit_bytes)
    }

    /// Cycles the L2 data port needs to move one cache line.
    pub fn l2_port_cycles(&self) -> u64 {
        self.line_bytes.div_ceil(self.l2.data_port_bytes)
    }

    /// Cycles the DRAM data bus is busy transferring one cache line
    /// (`bus_bytes × data_rate` bytes move per core cycle).
    pub fn dram_burst_cycles(&self) -> u64 {
        self.line_bytes
            .div_ceil(self.dram.bus_bytes * self.dram.data_rate)
    }

    /// Total L1 data-cache capacity per core in bytes.
    pub fn l1_bytes(&self) -> u64 {
        self.l1.sets as u64 * self.l1.assoc as u64 * self.line_bytes
    }

    /// Total L2 capacity across all partitions in bytes.
    pub fn l2_total_bytes(&self) -> u64 {
        self.num_partitions as u64
            * self.l2.sets_per_partition as u64
            * self.l2.assoc as u64
            * self.line_bytes
    }
}

impl Default for GpuConfig {
    /// The GTX480 baseline.
    fn default() -> Self {
        Self::gtx480()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_gtx480_geometry() {
        let c = GpuConfig::gtx480();
        c.validate().unwrap();
        assert_eq!(c.num_cores, 15);
        assert_eq!(c.num_partitions, 6);
        assert_eq!(c.l1_bytes(), 16 * 1024);
        assert_eq!(c.l2_total_bytes(), 768 * 1024);
    }

    #[test]
    fn baseline_matches_table_i_values() {
        let c = GpuConfig::gtx480();
        // Table I (a) DRAM
        assert_eq!(c.dram.scheduler_queue, 16);
        assert_eq!(c.dram.banks, 16);
        assert_eq!(c.dram.bus_bytes * 8, 32); // 32 bits
                                              // Table I (b) L2
        assert_eq!(c.l2.miss_queue, 8);
        assert_eq!(c.l2.response_queue, 8);
        assert_eq!(c.l2.mshr_entries, 32);
        assert_eq!(c.l2.access_queue, 8);
        assert_eq!(c.l2.data_port_bytes, 32);
        assert_eq!(c.noc.flit_bytes, 4);
        assert_eq!(c.l2.banks_per_partition, 2);
        // Table I (c) L1
        assert_eq!(c.l1.miss_queue, 8);
        assert_eq!(c.l1.mshr_entries, 32);
        assert_eq!(c.core.mem_pipeline_width, 10);
    }

    #[test]
    fn derived_cycle_counts() {
        let c = GpuConfig::gtx480();
        assert_eq!(c.flits_for(136), 34); // read response at 4 B flits
        assert_eq!(c.flits_for(8), 2); // read request
        assert_eq!(c.l2_port_cycles(), 4); // 128 B / 32 B
        assert_eq!(c.dram_burst_cycles(), 4); // 128 B / (4 B × 8)
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let mut c = GpuConfig::gtx480();
        c.l1.sets = 33;
        assert_eq!(c.validate().unwrap_err().param(), "l1.sets");

        let mut c = GpuConfig::gtx480();
        c.num_cores = 0;
        assert_eq!(c.validate().unwrap_err().param(), "num_cores");

        let mut c = GpuConfig::gtx480();
        c.l2.data_port_bytes = 256;
        assert_eq!(c.validate().unwrap_err().param(), "l2.data_port_bytes");

        let mut c = GpuConfig::gtx480();
        c.noc.flit_bytes = 3;
        assert_eq!(c.validate().unwrap_err().param(), "noc.flit_bytes");

        let mut c = GpuConfig::gtx480();
        c.dram.row_bytes = 64;
        assert_eq!(c.validate().unwrap_err().param(), "dram.row_bytes");
    }

    #[test]
    fn tiny_is_valid() {
        GpuConfig::tiny().validate().unwrap();
    }

    #[test]
    fn default_is_baseline() {
        assert_eq!(GpuConfig::default(), GpuConfig::gtx480());
    }
}
