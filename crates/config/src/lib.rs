//! Configuration for the `gpumem` GPU memory-hierarchy simulator.
//!
//! The baseline models an NVIDIA GTX480 (Fermi) as configured in GPGPU-Sim,
//! the platform used by *Characterizing Memory Bottlenecks in GPGPU
//! Workloads* (IISWC 2016). Every parameter of the paper's Table I is a
//! field of [`GpuConfig`], and the design-space exploration of Section IV is
//! expressed through [`DesignPoint`].
//!
//! # Example
//!
//! ```
//! use gpumem_config::{DesignPoint, GpuConfig};
//!
//! let baseline = GpuConfig::gtx480();
//! baseline.validate().unwrap();
//! assert_eq!(baseline.l2.access_queue, 8);
//!
//! let scaled = DesignPoint::L2_ONLY.apply(&baseline);
//! assert_eq!(scaled.l2.access_queue, 32);
//! assert_eq!(scaled.noc.flit_bytes, 16); // crossbar flit scales with L2
//! assert_eq!(scaled.dram.scheduler_queue, baseline.dram.scheduler_queue);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod design;
mod error;
mod gpu;

pub use design::{single_parameter_ablations, Ablation, DesignPoint, ParamType, TableRow, TABLE_I};
pub use error::ConfigError;
pub use gpu::{CoreConfig, DramConfig, GpuConfig, L1Config, L2Config, NocConfig};
