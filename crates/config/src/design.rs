//! The paper's Table I design space and its application to a baseline
//! configuration.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::GpuConfig;

/// Whether a Table I parameter *increases* peak throughput (`Plus`, shown as
/// '+' in the paper) or *enables* the level to achieve its existing peak
/// throughput (`Equal`, shown as '=').
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamType {
    /// '+': raises the peak throughput of the level.
    Plus,
    /// '=': removes an obstacle to reaching the existing peak throughput.
    Equal,
}

impl fmt::Display for ParamType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamType::Plus => write!(f, "+"),
            ParamType::Equal => write!(f, "="),
        }
    }
}

/// One row of the paper's Table I ("Consolidated design space to mitigate
/// congestion").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableRow {
    /// Which subsection the row belongs to: "DRAM", "L2 Cache" or
    /// "L1 Cache".
    pub section: &'static str,
    /// Parameter name as printed in the paper.
    pub name: &'static str,
    /// '+' or '=' categorisation.
    pub param_type: ParamType,
    /// Baseline value as printed in the paper.
    pub baseline: &'static str,
    /// Scaled (~4×) value as printed in the paper.
    pub scaled: &'static str,
}

/// The paper's Table I, verbatim. A unit test pins every row against the
/// values applied by [`DesignPoint::apply`].
pub const TABLE_I: &[TableRow] = &[
    // (a) DRAM
    TableRow {
        section: "DRAM",
        name: "Scheduler queue",
        param_type: ParamType::Equal,
        baseline: "16 entries",
        scaled: "64 entries",
    },
    TableRow {
        section: "DRAM",
        name: "DRAM Banks",
        param_type: ParamType::Equal,
        baseline: "16 banks/chip",
        scaled: "64 banks/chip",
    },
    TableRow {
        section: "DRAM",
        name: "Bus width",
        param_type: ParamType::Plus,
        baseline: "32-bits/chip",
        scaled: "64-bits/chip",
    },
    // (b) L2 Cache
    TableRow {
        section: "L2 Cache",
        name: "L2 miss queue",
        param_type: ParamType::Equal,
        baseline: "8 entries",
        scaled: "32 entries",
    },
    TableRow {
        section: "L2 Cache",
        name: "L2 response queue",
        param_type: ParamType::Equal,
        baseline: "8 entries",
        scaled: "32 entries",
    },
    TableRow {
        section: "L2 Cache",
        name: "MSHR",
        param_type: ParamType::Equal,
        baseline: "32 entries",
        scaled: "128 entries",
    },
    TableRow {
        section: "L2 Cache",
        name: "L2 access queue",
        param_type: ParamType::Equal,
        baseline: "8 entries",
        scaled: "32 entries",
    },
    TableRow {
        section: "L2 Cache",
        name: "L2 data port",
        param_type: ParamType::Plus,
        baseline: "32 bytes",
        scaled: "128 bytes",
    },
    TableRow {
        section: "L2 Cache",
        name: "Flit size (crossbar)",
        param_type: ParamType::Plus,
        baseline: "4 bytes",
        scaled: "16 bytes",
    },
    TableRow {
        section: "L2 Cache",
        name: "L2 banks",
        param_type: ParamType::Plus,
        baseline: "2 banks/partition",
        scaled: "8 banks/partition",
    },
    // (c) L1 Cache
    TableRow {
        section: "L1 Cache",
        name: "L1 miss queue",
        param_type: ParamType::Equal,
        baseline: "8 entries",
        scaled: "32 entries",
    },
    TableRow {
        section: "L1 Cache",
        name: "MSHR (L1D)",
        param_type: ParamType::Equal,
        baseline: "32 entries",
        scaled: "128 entries",
    },
    TableRow {
        section: "L1 Cache",
        name: "Memory pipeline width",
        param_type: ParamType::Equal,
        baseline: "10",
        scaled: "40",
    },
];

/// A point in the Section IV design space: which levels of the memory
/// hierarchy have their Table I parameters scaled to ~4×.
///
/// # Example
///
/// ```
/// use gpumem_config::{DesignPoint, GpuConfig};
///
/// let cfg = DesignPoint::L1_L2.apply(&GpuConfig::gtx480());
/// assert_eq!(cfg.l1.mshr_entries, 128);
/// assert_eq!(cfg.l2.mshr_entries, 128);
/// assert_eq!(cfg.dram.banks, 16); // DRAM untouched
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Scale the Table I (c) L1 parameters.
    pub l1: bool,
    /// Scale the Table I (b) L2 parameters (including the crossbar flit
    /// size, which the paper files under the L2 section).
    pub l2: bool,
    /// Scale the Table I (a) DRAM parameters.
    pub dram: bool,
}

impl DesignPoint {
    /// The unmodified baseline.
    pub const BASELINE: DesignPoint = DesignPoint {
        l1: false,
        l2: false,
        dram: false,
    };
    /// Scale L1 alone (paper: +4% average, can degrade in isolation).
    pub const L1_ONLY: DesignPoint = DesignPoint {
        l1: true,
        l2: false,
        dram: false,
    };
    /// Scale L2 alone (paper: +59% average).
    pub const L2_ONLY: DesignPoint = DesignPoint {
        l1: false,
        l2: true,
        dram: false,
    };
    /// Scale DRAM alone (paper: +11% average).
    pub const DRAM_ONLY: DesignPoint = DesignPoint {
        l1: false,
        l2: false,
        dram: true,
    };
    /// Scale L1 and L2 together (paper: +69% average, > 4% + 59%).
    pub const L1_L2: DesignPoint = DesignPoint {
        l1: true,
        l2: true,
        dram: false,
    };
    /// Scale L2 and DRAM together (paper: +76% average, > 59% + 11%).
    pub const L2_DRAM: DesignPoint = DesignPoint {
        l1: false,
        l2: true,
        dram: true,
    };
    /// Scale every level.
    pub const ALL: DesignPoint = DesignPoint {
        l1: true,
        l2: true,
        dram: true,
    };

    /// The design points evaluated in Section IV, in presentation order.
    pub const SECTION_IV: [DesignPoint; 5] = [
        Self::L1_ONLY,
        Self::L2_ONLY,
        Self::DRAM_ONLY,
        Self::L1_L2,
        Self::L2_DRAM,
    ];

    /// Produces the scaled configuration: each selected level's Table I
    /// parameters are raised to their "Scaled value (~4×)" column; all other
    /// parameters keep their baseline values.
    pub fn apply(&self, baseline: &GpuConfig) -> GpuConfig {
        let mut cfg = baseline.clone();
        if self.dram {
            cfg.dram.scheduler_queue = baseline.dram.scheduler_queue * 4; // 16 → 64
            cfg.dram.banks = baseline.dram.banks * 4; // 16 → 64
                                                      // Bus width is the paper's saturation exception: 2× only.
            cfg.dram.bus_bytes = baseline.dram.bus_bytes * 2; // 32 → 64 bits
        }
        if self.l2 {
            cfg.l2.miss_queue = baseline.l2.miss_queue * 4; // 8 → 32
            cfg.l2.response_queue = baseline.l2.response_queue * 4; // 8 → 32
            cfg.l2.mshr_entries = baseline.l2.mshr_entries * 4; // 32 → 128
            cfg.l2.access_queue = baseline.l2.access_queue * 4; // 8 → 32
            cfg.l2.data_port_bytes = baseline.l2.data_port_bytes * 4; // 32 → 128
            cfg.noc.flit_bytes = baseline.noc.flit_bytes * 4; // 4 → 16
            cfg.l2.banks_per_partition = baseline.l2.banks_per_partition * 4; // 2 → 8
        }
        if self.l1 {
            cfg.l1.miss_queue = baseline.l1.miss_queue * 4; // 8 → 32
            cfg.l1.mshr_entries = baseline.l1.mshr_entries * 4; // 32 → 128
            cfg.core.mem_pipeline_width = baseline.core.mem_pipeline_width * 4; // 10 → 40
        }
        cfg
    }

    /// Short label used in experiment output ("baseline", "L1", "L1+L2"…).
    pub fn label(&self) -> &'static str {
        match (self.l1, self.l2, self.dram) {
            (false, false, false) => "baseline",
            (true, false, false) => "L1",
            (false, true, false) => "L2",
            (false, false, true) => "DRAM",
            (true, true, false) => "L1+L2",
            (false, true, true) => "L2+DRAM",
            (true, false, true) => "L1+DRAM",
            (true, true, true) => "L1+L2+DRAM",
        }
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One single-parameter ablation: a Table I row scaled to its ~4× value
/// with everything else at baseline.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// The Table I row name.
    pub name: &'static str,
    /// The row's section ("DRAM", "L2 Cache", "L1 Cache").
    pub section: &'static str,
    /// The resulting configuration.
    pub config: GpuConfig,
    /// Rough incremental hardware cost in bits of storage (queues, MSHRs)
    /// or wires (ports, buses, flits), for the cost-effectiveness ranking
    /// the paper lists as future work. Zero-cost rows don't exist; wire
    /// costs are approximated as bit-lanes added across the chip.
    pub cost_bits: u64,
}

/// Scales each Table I parameter *individually* (everything else at
/// baseline) — the per-row decomposition behind the paper's per-level
/// aggregates, and the substrate of its future-work cost study.
///
/// Entry order matches [`TABLE_I`].
pub fn single_parameter_ablations(base: &GpuConfig) -> Vec<Ablation> {
    // One queue entry holds a request descriptor (~64 bits of address +
    // metadata) or a full line for data-carrying structures.
    const REQ_BITS: u64 = 64;
    let line_bits = base.line_bytes * 8;
    let parts = base.num_partitions as u64;
    let cores = base.num_cores as u64;
    let mut out = Vec::new();
    let mut push =
        |name: &'static str, section: &'static str, cost_bits: u64, f: &dyn Fn(&mut GpuConfig)| {
            let mut config = base.clone();
            f(&mut config);
            debug_assert!(config.validate().is_ok(), "{name} ablation invalid");
            out.push(Ablation {
                name,
                section,
                config,
                cost_bits,
            });
        };

    // (a) DRAM
    push("Scheduler queue", "DRAM", 48 * REQ_BITS * parts, &|c| {
        c.dram.scheduler_queue *= 4;
    });
    push("DRAM Banks", "DRAM", 48 * line_bits * parts / 8, &|c| {
        // Row buffers for the additional banks (cost borne off-chip; we
        // count the controller-side state conservatively).
        c.dram.banks *= 4;
    });
    push("Bus width", "DRAM", 32 * parts, &|c| {
        c.dram.bus_bytes *= 2;
    });
    // (b) L2 Cache
    push("L2 miss queue", "L2 Cache", 24 * REQ_BITS * parts, &|c| {
        c.l2.miss_queue *= 4;
    });
    push(
        "L2 response queue",
        "L2 Cache",
        24 * line_bits * parts,
        &|c| {
            c.l2.response_queue *= 4;
        },
    );
    push("MSHR", "L2 Cache", 96 * REQ_BITS * parts, &|c| {
        c.l2.mshr_entries *= 4;
    });
    push("L2 access queue", "L2 Cache", 24 * REQ_BITS * parts, &|c| {
        c.l2.access_queue *= 4;
    });
    push("L2 data port", "L2 Cache", 96 * 8 * parts, &|c| {
        c.l2.data_port_bytes *= 4;
    });
    push(
        "Flit size (crossbar)",
        "L2 Cache",
        12 * 8 * (cores + parts),
        &|c| {
            c.noc.flit_bytes *= 4;
        },
    );
    push("L2 banks", "L2 Cache", 6 * line_bits * parts, &|c| {
        c.l2.banks_per_partition *= 4;
    });
    // (c) L1 Cache
    push("L1 miss queue", "L1 Cache", 24 * REQ_BITS * cores, &|c| {
        c.l1.miss_queue *= 4;
    });
    push("MSHR (L1D)", "L1 Cache", 96 * REQ_BITS * cores, &|c| {
        c.l1.mshr_entries *= 4;
    });
    push(
        "Memory pipeline width",
        "L1 Cache",
        30 * REQ_BITS * cores,
        &|c| {
            c.core.mem_pipeline_width *= 4;
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_has_thirteen_rows() {
        assert_eq!(TABLE_I.len(), 13);
        assert_eq!(TABLE_I.iter().filter(|r| r.section == "DRAM").count(), 3);
        assert_eq!(
            TABLE_I.iter().filter(|r| r.section == "L2 Cache").count(),
            7
        );
        assert_eq!(
            TABLE_I.iter().filter(|r| r.section == "L1 Cache").count(),
            3
        );
    }

    #[test]
    fn apply_matches_table_i_scaled_column() {
        let base = GpuConfig::gtx480();
        let all = DesignPoint::ALL.apply(&base);
        all.validate().unwrap();
        // DRAM
        assert_eq!(all.dram.scheduler_queue, 64);
        assert_eq!(all.dram.banks, 64);
        assert_eq!(all.dram.bus_bytes * 8, 64);
        // L2
        assert_eq!(all.l2.miss_queue, 32);
        assert_eq!(all.l2.response_queue, 32);
        assert_eq!(all.l2.mshr_entries, 128);
        assert_eq!(all.l2.access_queue, 32);
        assert_eq!(all.l2.data_port_bytes, 128);
        assert_eq!(all.noc.flit_bytes, 16);
        assert_eq!(all.l2.banks_per_partition, 8);
        // L1
        assert_eq!(all.l1.miss_queue, 32);
        assert_eq!(all.l1.mshr_entries, 128);
        assert_eq!(all.core.mem_pipeline_width, 40);
    }

    #[test]
    fn baseline_point_is_identity() {
        let base = GpuConfig::gtx480();
        assert_eq!(DesignPoint::BASELINE.apply(&base), base);
    }

    #[test]
    fn isolated_points_touch_only_their_level() {
        let base = GpuConfig::gtx480();
        let l1 = DesignPoint::L1_ONLY.apply(&base);
        assert_eq!(l1.l2, base.l2);
        assert_eq!(l1.dram, base.dram);
        assert_eq!(l1.noc, base.noc);
        assert_ne!(l1.l1, base.l1);

        let dram = DesignPoint::DRAM_ONLY.apply(&base);
        assert_eq!(dram.l1, base.l1);
        assert_eq!(dram.l2, base.l2);
        assert_ne!(dram.dram, base.dram);
    }

    #[test]
    fn combined_points_compose() {
        let base = GpuConfig::gtx480();
        let l1l2 = DesignPoint::L1_L2.apply(&base);
        let l1 = DesignPoint::L1_ONLY.apply(&base);
        let l2 = DesignPoint::L2_ONLY.apply(&base);
        assert_eq!(l1l2.l1, l1.l1);
        assert_eq!(l1l2.l2, l2.l2);
        assert_eq!(l1l2.noc, l2.noc);
        assert_eq!(l1l2.dram, base.dram);
    }

    #[test]
    fn all_scaled_configs_validate() {
        let base = GpuConfig::gtx480();
        for dp in DesignPoint::SECTION_IV {
            dp.apply(&base).validate().unwrap();
        }
        DesignPoint::ALL.apply(&base).validate().unwrap();
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = [
            DesignPoint::BASELINE,
            DesignPoint::L1_ONLY,
            DesignPoint::L2_ONLY,
            DesignPoint::DRAM_ONLY,
            DesignPoint::L1_L2,
            DesignPoint::L2_DRAM,
            DesignPoint::ALL,
        ]
        .iter()
        .map(|d| d.label())
        .collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 7);
        assert_eq!(DesignPoint::L2_DRAM.to_string(), "L2+DRAM");
    }

    #[test]
    fn param_type_display() {
        assert_eq!(ParamType::Plus.to_string(), "+");
        assert_eq!(ParamType::Equal.to_string(), "=");
    }

    #[test]
    fn ablations_cover_every_table_row_in_order() {
        let base = GpuConfig::gtx480();
        let abl = single_parameter_ablations(&base);
        assert_eq!(abl.len(), TABLE_I.len());
        for (a, row) in abl.iter().zip(TABLE_I) {
            assert_eq!(a.name, row.name);
            assert_eq!(a.section, row.section);
            assert!(a.cost_bits > 0, "{} has zero cost", a.name);
            a.config.validate().unwrap();
            assert_ne!(a.config, base, "{} ablation changed nothing", a.name);
        }
    }

    #[test]
    fn ablations_change_exactly_their_parameter() {
        let base = GpuConfig::gtx480();
        let abl = single_parameter_ablations(&base);
        // Spot checks: the bus-width ablation only touches dram.bus_bytes.
        let bus = abl.iter().find(|a| a.name == "Bus width").unwrap();
        assert_eq!(bus.config.dram.bus_bytes, base.dram.bus_bytes * 2);
        let mut reverted = bus.config.clone();
        reverted.dram.bus_bytes = base.dram.bus_bytes;
        assert_eq!(reverted, base);

        let flit = abl
            .iter()
            .find(|a| a.name == "Flit size (crossbar)")
            .unwrap();
        assert_eq!(flit.config.noc.flit_bytes, base.noc.flit_bytes * 4);
        let mut reverted = flit.config.clone();
        reverted.noc.flit_bytes = base.noc.flit_bytes;
        assert_eq!(reverted, base);
    }

    #[test]
    fn union_of_level_ablations_equals_level_design_point() {
        let base = GpuConfig::gtx480();
        let mut merged = base.clone();
        for a in single_parameter_ablations(&base) {
            if a.section == "L1 Cache" {
                // Apply each L1 row's delta onto `merged`.
                merged.l1.miss_queue = merged.l1.miss_queue.max(a.config.l1.miss_queue);
                merged.l1.mshr_entries = merged.l1.mshr_entries.max(a.config.l1.mshr_entries);
                merged.core.mem_pipeline_width = merged
                    .core
                    .mem_pipeline_width
                    .max(a.config.core.mem_pipeline_width);
            }
        }
        assert_eq!(merged, DesignPoint::L1_ONLY.apply(&base));
    }
}
