//! Unit-level tests of the memory partition driven through real crossbars.

use gpumem_config::GpuConfig;
use gpumem_noc::{Crossbar, Packet};
use gpumem_sim::MemoryPartition;
use gpumem_types::{AccessKind, CoreId, Cycle, FetchId, LineAddr, MemFetch, PartitionId};

struct Rig {
    part: MemoryPartition,
    req: Crossbar,
    resp: Crossbar,
    now: Cycle,
    cfg: GpuConfig,
    outbox: std::collections::VecDeque<MemFetch>,
}

impl Rig {
    fn new(mut mutate: impl FnMut(&mut GpuConfig)) -> Rig {
        let mut cfg = GpuConfig::gtx480();
        cfg.num_partitions = 1;
        cfg.num_cores = 2;
        mutate(&mut cfg);
        Rig {
            part: MemoryPartition::new(PartitionId::new(0), &cfg),
            req: Crossbar::new(cfg.num_cores, 1, &cfg.noc),
            resp: Crossbar::new(1, cfg.num_cores, &cfg.noc),
            now: Cycle::ZERO,
            cfg,
            outbox: Default::default(),
        }
    }

    fn send(&mut self, fetch: MemFetch) {
        self.outbox.push_back(fetch);
    }

    fn pump_outbox(&mut self) {
        while self.outbox.front().is_some() && self.req.can_inject(0) {
            let fetch = self.outbox.pop_front().expect("peeked");
            let bytes = fetch.request_bytes(self.cfg.line_bytes);
            let pkt = Packet::new(fetch, 0, bytes, self.cfg.noc.flit_bytes);
            self.req.try_inject(0, pkt).expect("can_inject checked");
        }
    }

    /// Advances until `n` responses arrive or `budget` cycles pass;
    /// returns the responses.
    fn run_until(&mut self, n: usize, budget: u64) -> Vec<MemFetch> {
        let mut got = Vec::new();
        for _ in 0..budget {
            self.pump_outbox();
            self.part
                .cycle(self.now, self.req.egress_mut(0), self.resp.ingress_mut(0))
                .unwrap();
            self.req.tick(self.now).unwrap();
            self.resp.tick(self.now).unwrap();
            self.part.observe();
            for c in 0..self.cfg.num_cores {
                while let Some(pkt) = self.resp.pop_ejected(c) {
                    got.push(pkt.fetch);
                }
            }
            self.now = self.now.next();
            if got.len() >= n {
                break;
            }
        }
        got
    }

    fn drain(&mut self, budget: u64) -> Vec<MemFetch> {
        let mut got = Vec::new();
        for _ in 0..budget {
            self.pump_outbox();
            self.part
                .cycle(self.now, self.req.egress_mut(0), self.resp.ingress_mut(0))
                .unwrap();
            self.req.tick(self.now).unwrap();
            self.resp.tick(self.now).unwrap();
            for c in 0..self.cfg.num_cores {
                while let Some(pkt) = self.resp.pop_ejected(c) {
                    got.push(pkt.fetch);
                }
            }
            self.now = self.now.next();
            if self.outbox.is_empty()
                && self.part.is_idle()
                && self.req.is_idle()
                && self.resp.is_idle()
            {
                break;
            }
        }
        got
    }
}

fn load(id: u64, line: u64, core: u32) -> MemFetch {
    let mut f = MemFetch::new(
        FetchId::new(id),
        AccessKind::Load,
        LineAddr::new(line),
        CoreId::new(core),
    );
    f.partition = Some(PartitionId::new(0));
    f
}

fn store(id: u64, line: u64) -> MemFetch {
    let mut f = MemFetch::new(
        FetchId::new(id),
        AccessKind::Store,
        LineAddr::new(line),
        CoreId::new(0),
    );
    f.partition = Some(PartitionId::new(0));
    f
}

#[test]
fn load_misses_then_hits() {
    let mut rig = Rig::new(|_| {});
    rig.send(load(1, 0, 0));
    let first = rig.run_until(1, 10_000);
    assert_eq!(first.len(), 1);
    assert_eq!(rig.part.stats().misses, 1);
    assert_eq!(rig.part.stats().fills, 1);

    // Same line again: L2 hit this time.
    rig.send(load(2, 0, 1));
    let second = rig.run_until(1, 10_000);
    assert_eq!(second.len(), 1);
    assert_eq!(second[0].core, CoreId::new(1));
    assert_eq!(rig.part.stats().load_hits, 1);
}

#[test]
fn concurrent_misses_to_one_line_merge() {
    let mut rig = Rig::new(|_| {});
    rig.send(load(1, 0, 0));
    rig.send(load(2, 0, 1));
    let got = rig.run_until(2, 20_000);
    assert_eq!(got.len(), 2);
    assert_eq!(rig.part.stats().misses, 1, "second access must merge");
    assert_eq!(rig.part.stats().merged_misses, 1);
    assert_eq!(rig.part.dram().stats().reads, 1, "one DRAM fetch only");
}

#[test]
fn store_miss_write_allocates_and_dirty_eviction_writes_back() {
    // One-set L2 (1 bank × 1 set via sets_per_partition=1... smallest
    // legal: banks=1, sets=1, assoc=1) so a second line evicts the first.
    let mut rig = Rig::new(|cfg| {
        cfg.l2.banks_per_partition = 1;
        cfg.l2.sets_per_partition = 1;
        cfg.l2.assoc = 1;
    });
    // Store to line 0: write-allocate (DRAM read, no response).
    rig.send(store(1, 0));
    rig.drain(20_000);
    assert_eq!(rig.part.dram().stats().reads, 1);
    assert_eq!(rig.part.stats().writebacks, 0);

    // Load to a different line mapping to the same set: evicts dirty line
    // 0 → writeback to DRAM.
    rig.send(load(2, 1, 0));
    let got = rig.drain(20_000);
    assert_eq!(got.len(), 1);
    assert_eq!(rig.part.stats().writebacks, 1);
    assert_eq!(rig.part.dram().stats().writes, 1);
}

#[test]
fn store_hit_marks_dirty_without_response() {
    let mut rig = Rig::new(|_| {});
    rig.send(load(1, 0, 0)); // install the line
    rig.run_until(1, 20_000);
    rig.send(store(2, 0)); // hit
    let got = rig.drain(20_000);
    assert!(got.is_empty(), "stores produce no responses");
    assert_eq!(rig.part.stats().store_hits, 1);
}

#[test]
fn bank_conflicts_are_counted() {
    // Two hits to lines in the same bank back to back: the second stalls
    // on the bank's initiation interval.
    let mut rig = Rig::new(|_| {});
    let banks = rig.cfg.l2.banks_per_partition as u64;
    // Same bank: local line stride of `banks` (num_partitions == 1).
    rig.send(load(1, 0, 0));
    rig.send(load(2, banks * 64, 0));
    rig.drain(20_000);
    // Re-request both (now L2 hits) in the same cycle window.
    rig.send(load(3, 0, 0));
    rig.send(load(4, banks * 64, 1));
    rig.drain(20_000);
    assert!(
        rig.part.stats().stall_bank_busy > 0,
        "expected bank-conflict stalls"
    );
}

#[test]
fn partition_reports_queue_stats() {
    let mut rig = Rig::new(|_| {});
    for i in 0..20 {
        rig.send(load(i, i * 97, (i % 2) as u32));
    }
    rig.drain(100_000);
    assert!(rig.part.access_queue_stats().pushes >= 20);
    assert_eq!(
        rig.part.access_queue_stats().pushes,
        rig.part.access_queue_stats().pops
    );
    assert!(rig.part.miss_queue_stats().pushes > 0);
    assert!(rig.part.is_idle());
}

#[test]
fn scaled_l2_has_more_banks_and_still_functions() {
    let mut rig = Rig::new(|cfg| {
        let scaled = gpumem_config::DesignPoint::L2_ONLY.apply(cfg);
        *cfg = scaled;
        cfg.num_partitions = 1;
        cfg.num_cores = 2;
    });
    for i in 0..16 {
        rig.send(load(i, i * 113, (i % 2) as u32));
    }
    let got = rig.drain(100_000);
    assert_eq!(got.len(), 16);
}
