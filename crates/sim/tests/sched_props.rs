//! Property tests for the [`TimingWheel`]: the engine's bit-identity
//! argument leans on the wheel's ordering contract (min-cycle pop, stable
//! FIFO within a cycle, monotone horizon), so the contract is checked
//! here against a brute-force sorted-Vec reference across arbitrary
//! schedule/pop interleavings, including epoch wrap-around and the
//! overflow-promotion path of deliberately tiny wheels.

use gpumem_sim::TimingWheel;
use proptest::prelude::*;

/// Brute-force reference: a flat Vec popped by `(cycle, seq)` minimum,
/// with the same monotone-horizon clamp the wheel documents.
struct RefQueue {
    queue: Vec<(u64, u64, u32)>,
    horizon: u64,
    next_seq: u64,
}

impl RefQueue {
    fn new() -> Self {
        RefQueue {
            queue: Vec::new(),
            horizon: 0,
            next_seq: 0,
        }
    }

    fn schedule(&mut self, cycle: u64, item: u32) {
        let cycle = cycle.max(self.horizon);
        self.queue.push((cycle, self.next_seq, item));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let idx = self
            .queue
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(c, s, _))| (c, s))
            .map(|(i, _)| i)?;
        let (cycle, _, item) = self.queue.remove(idx);
        self.horizon = cycle;
        Some((cycle, item))
    }
}

/// Drives a wheel and the reference through the same op sequence and
/// checks every pop agrees. `ops` elements: `(is_pop, delta)`; schedules
/// place events `delta` cycles past the last popped cycle, so sequences
/// exercise near-horizon slots, same-cycle FIFO runs, and far overflow.
fn run_ops(slots: usize, ops: &[(bool, u64)]) {
    let mut wheel = TimingWheel::with_slots(slots);
    let mut reference = RefQueue::new();
    let mut base = 0u64;
    for (i, &(is_pop, delta)) in ops.iter().enumerate() {
        if is_pop {
            let got = wheel.pop();
            let want = reference.pop();
            prop_assert_eq!(got, want, "pop #{i} diverged");
            if let Some((cycle, _)) = got {
                base = cycle;
            }
        } else {
            let item = i as u32;
            wheel.schedule(base + delta, item);
            reference.schedule(base + delta, item);
            prop_assert_eq!(wheel.len(), reference.queue.len());
        }
    }
    // Drain: both must agree to the end, in particular on FIFO order of
    // whatever same-cycle groups remain.
    loop {
        let got = wheel.pop();
        let want = reference.pop();
        prop_assert_eq!(got, want, "drain diverged");
        if got.is_none() {
            break;
        }
    }
    prop_assert!(wheel.is_empty());
}

proptest! {
    /// Differential check against the sorted-Vec reference with a
    /// full-size wheel and mixed near/far deltas.
    #[test]
    fn wheel_matches_sorted_reference(
        ops in prop::collection::vec(
            (0u32..4, 0u64..6000).prop_map(|(k, d)| (k == 0, d)),
            1..200,
        ),
    ) {
        run_ops(4096, &ops);
    }

    /// Same differential with a 64-slot wheel and deltas chosen to cross
    /// the direct window repeatedly: every event wraps the slot array at
    /// least once or lands in overflow and is promoted across epochs.
    #[test]
    fn wrap_around_epochs_match_reference(
        ops in prop::collection::vec(
            (0u32..4, 50u64..400).prop_map(|(k, d)| (k == 0, d)),
            1..150,
        ),
    ) {
        run_ops(64, &ops);
    }

    /// Popping after an arbitrary schedule burst always yields
    /// non-decreasing cycles, and the first pop is the global minimum.
    #[test]
    fn pops_come_out_in_min_cycle_order(
        cycles in prop::collection::vec(0u64..10_000, 1..120),
    ) {
        let mut wheel = TimingWheel::with_slots(64);
        for (i, &c) in cycles.iter().enumerate() {
            wheel.schedule(c, i as u32);
        }
        let mut min_cycle = *cycles.iter().min().unwrap();
        while let Some((cycle, _)) = wheel.pop() {
            prop_assert!(
                cycle >= min_cycle,
                "pop at {cycle} after {min_cycle}: wheel ran backwards"
            );
            min_cycle = cycle;
        }
        prop_assert!(wheel.is_empty());
    }

    /// Events scheduled for the same cycle come back in insertion order
    /// even when interleaved with events at other cycles.
    #[test]
    fn fifo_is_stable_within_a_cycle(
        placements in prop::collection::vec(0u64..8, 2..100),
    ) {
        let mut wheel = TimingWheel::with_slots(64);
        for (i, &c) in placements.iter().enumerate() {
            wheel.schedule(c, i as u32);
        }
        let mut last: Option<(u64, u32)> = None;
        while let Some((cycle, item)) = wheel.pop() {
            if let Some((prev_cycle, prev_item)) = last {
                prop_assert!(cycle >= prev_cycle);
                if cycle == prev_cycle {
                    prop_assert!(
                        item > prev_item,
                        "same-cycle FIFO violated: {item} after {prev_item}"
                    );
                }
            }
            last = Some((cycle, item));
        }
    }
}

/// `clear_to` empties the wheel (slots and overflow both) and the horizon
/// keeps its monotone clamp for later schedules.
#[test]
fn clear_to_empties_and_clamps() {
    let mut wheel = TimingWheel::with_slots(64);
    wheel.schedule(3, 'a');
    wheel.schedule(500, 'b'); // overflow for a 64-slot wheel
    assert_eq!(wheel.pop(), Some((3, 'a')));
    wheel.clear_to(100);
    assert!(wheel.is_empty());
    assert_eq!(wheel.pop(), None);
    // A schedule before the new horizon is clamped up to it.
    wheel.schedule(7, 'c');
    wheel.schedule(200, 'd');
    assert_eq!(wheel.pop(), Some((100, 'c')));
    assert_eq!(wheel.pop(), Some((200, 'd')));
    // Clearing never moves the horizon backwards.
    wheel.clear_to(50);
    wheel.schedule(60, 'e');
    assert_eq!(wheel.pop(), Some((200, 'e')));
}
