//! Stress and failure-injection tests: pathological configurations must
//! still make forward progress (deadlock freedom), just slowly.

use std::sync::Arc;

use gpumem_config::GpuConfig;
use gpumem_sim::{GpuSimulator, KernelProgram, MemoryMode, WarpInstr};
use gpumem_types::{CtaId, LineAddr};

/// A mixed kernel: divergent gathers, stores and barriers — the traffic
/// most likely to expose resource-dependency cycles.
struct Torture {
    ctas: u32,
}

impl KernelProgram for Torture {
    fn name(&self) -> &str {
        "torture"
    }
    fn grid_ctas(&self) -> u32 {
        self.ctas
    }
    fn warps_per_cta(&self) -> u32 {
        4
    }
    fn instr(&self, cta: CtaId, warp: u32, pc: u32) -> Option<WarpInstr> {
        let g = u64::from(cta.index() as u32 * 4 + warp);
        match pc % 6 {
            0 => Some(WarpInstr::Load {
                lines: (0..4)
                    .map(|j| LineAddr::new((g * 131 + j * 977) % 4096))
                    .collect(),
                consume_after: 1,
            }),
            1 => Some(WarpInstr::Alu { latency: 2 }),
            2 => Some(WarpInstr::Store {
                lines: vec![LineAddr::new(5000 + (g + u64::from(pc)) % 4096)],
            }),
            3 => Some(WarpInstr::Barrier),
            4 => Some(WarpInstr::Shared { latency: 12 }),
            5 if pc < 30 => Some(WarpInstr::Alu { latency: 1 }),
            _ => None,
        }
    }
}

fn torture() -> Arc<dyn KernelProgram> {
    Arc::new(Torture { ctas: 8 })
}

#[test]
fn minimal_queues_everywhere_still_complete() {
    // Every bounded resource at its legal minimum: maximum backpressure,
    // no deadlock allowed.
    let mut cfg = GpuConfig::gtx480();
    cfg.num_cores = 2;
    cfg.num_partitions = 1;
    cfg.l1.miss_queue = 1;
    cfg.l1.mshr_entries = 1;
    cfg.l1.mshr_merge = 1;
    cfg.core.mem_pipeline_width = 1;
    cfg.l2.access_queue = 1;
    cfg.l2.miss_queue = 1;
    cfg.l2.response_queue = 1;
    cfg.l2.mshr_entries = 1;
    cfg.l2.mshr_merge = 1;
    cfg.dram.scheduler_queue = 1;
    cfg.dram.return_queue = 1;
    cfg.noc.input_buffer_pkts = 1;
    cfg.noc.ejection_queue = 1;
    cfg.validate().unwrap();

    let mut sim = GpuSimulator::new(cfg, torture(), MemoryMode::Hierarchy);
    let report = sim.run(5_000_000).expect("must not deadlock");
    assert!(report.instructions > 0);
}

#[test]
fn tiny_l2_thrashes_but_completes() {
    let mut cfg = GpuConfig::gtx480();
    cfg.num_cores = 2;
    cfg.num_partitions = 1;
    cfg.l2.banks_per_partition = 1;
    cfg.l2.sets_per_partition = 2;
    cfg.l2.assoc = 1;
    let mut sim = GpuSimulator::new(cfg, torture(), MemoryMode::Hierarchy);
    let report = sim.run(5_000_000).expect("completes under thrashing");
    let l2 = report.l2.unwrap();
    assert!(l2.stats.writebacks > 0, "thrashing must evict dirty lines");
}

#[test]
fn single_warp_slot_per_cta_works() {
    struct OneWarp;
    impl KernelProgram for OneWarp {
        fn name(&self) -> &str {
            "one-warp"
        }
        fn grid_ctas(&self) -> u32 {
            3
        }
        fn warps_per_cta(&self) -> u32 {
            1
        }
        fn max_ctas_per_core(&self) -> usize {
            1
        }
        fn instr(&self, _c: CtaId, _w: u32, pc: u32) -> Option<WarpInstr> {
            (pc < 4).then(|| WarpInstr::load_line(LineAddr::new(u64::from(pc) * 37), 1))
        }
    }
    let mut cfg = GpuConfig::gtx480();
    cfg.num_cores = 1;
    cfg.num_partitions = 1;
    let mut sim = GpuSimulator::new(cfg, Arc::new(OneWarp), MemoryMode::Hierarchy);
    let report = sim.run(1_000_000).expect("completes");
    assert_eq!(report.core.ctas_retired, 3);
    assert_eq!(report.instructions, 12);
}

#[test]
fn extreme_divergence_thirty_two_lines_per_load() {
    struct Diverge;
    impl KernelProgram for Diverge {
        fn name(&self) -> &str {
            "diverge"
        }
        fn grid_ctas(&self) -> u32 {
            2
        }
        fn warps_per_cta(&self) -> u32 {
            2
        }
        fn instr(&self, cta: CtaId, warp: u32, pc: u32) -> Option<WarpInstr> {
            let g = u64::from(cta.index() as u32 * 2 + warp);
            match pc {
                0 | 1 => Some(WarpInstr::Load {
                    lines: (0..32)
                        .map(|j| LineAddr::new(g * 10_000 + j * 173))
                        .collect(),
                    consume_after: 1,
                }),
                2 => Some(WarpInstr::Alu { latency: 1 }),
                _ => None,
            }
        }
    }
    let mut cfg = GpuConfig::gtx480();
    cfg.num_cores = 2;
    cfg.num_partitions = 2;
    let mut sim = GpuSimulator::new(cfg, Arc::new(Diverge), MemoryMode::Hierarchy);
    let report = sim.run(2_000_000).expect("completes");
    // 4 warps × 2 loads × 32 accesses.
    assert_eq!(report.core.global_accesses, 256);
}

#[test]
fn fixed_latency_mode_with_zero_latency_is_stable() {
    let mut cfg = GpuConfig::gtx480();
    cfg.num_cores = 2;
    let mut sim = GpuSimulator::new(cfg, torture(), MemoryMode::FixedLatency(0));
    let report = sim.run(1_000_000).expect("completes");
    // Responses submitted at cycle t are delivered at the start of t+1
    // (the fixed-latency backend's one-step pipeline), so "zero latency"
    // observes at most one cycle.
    assert!(report.l1.miss_latency.max().unwrap_or(0) <= 1);
}

#[test]
fn every_section_iv_design_point_survives_torture() {
    let base = {
        let mut c = GpuConfig::gtx480();
        c.num_cores = 3;
        c.num_partitions = 2;
        c
    };
    for dp in gpumem_config::DesignPoint::SECTION_IV {
        let cfg = dp.apply(&base);
        let mut sim = GpuSimulator::new(cfg, torture(), MemoryMode::Hierarchy);
        sim.run(5_000_000)
            .unwrap_or_else(|e| panic!("{dp} deadlocked: {e}"));
    }
}
