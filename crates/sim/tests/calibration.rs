//! Calibration of unloaded memory latencies against the paper's stated
//! ideal access latencies: **L2 ≈ 120 cycles** and **DRAM ≈ +100 cycles
//! via L2** (Section II).

use std::sync::Arc;

use gpumem_config::GpuConfig;
use gpumem_sim::{GpuSimulator, MemoryMode};
use gpumem_simt::{KernelProgram, WarpInstr};
use gpumem_types::{CtaId, LineAddr};

/// One warp issuing `n` dependent loads, each to a given line, with a long
/// dependent-use distance of 1 so each latency is fully exposed.
struct Probe {
    lines: Vec<LineAddr>,
}

impl KernelProgram for Probe {
    fn name(&self) -> &str {
        "probe"
    }
    fn grid_ctas(&self) -> u32 {
        1
    }
    fn warps_per_cta(&self) -> u32 {
        1
    }
    fn instr(&self, _cta: CtaId, _warp: u32, pc: u32) -> Option<WarpInstr> {
        self.lines
            .get(pc as usize)
            .map(|&l| WarpInstr::load_line(l, 1))
    }
}

fn run_probe(lines: Vec<LineAddr>) -> gpumem_sim::SimReport {
    let cfg = GpuConfig::gtx480();
    let mut sim = GpuSimulator::new(cfg, Arc::new(Probe { lines }), MemoryMode::Hierarchy);
    sim.run(1_000_000).expect("probe completes")
}

#[test]
fn unloaded_dram_round_trip_is_about_220_cycles() {
    // One cold load: L1 miss → L2 miss → DRAM → back. The paper's ideal is
    // 120 (L2) + 100 (DRAM) = 220 cycles.
    let report = run_probe(vec![LineAddr::new(0)]);
    let lat = report.avg_l1_miss_latency();
    assert!(
        (190.0..=250.0).contains(&lat),
        "unloaded DRAM round trip {lat} outside 220±30"
    );
}

#[test]
fn unloaded_l2_hit_round_trip_is_about_120_cycles() {
    // Second dependent load to the *same* line: L1 keeps the line, so use
    // a second line that maps to the same partition but was prefetched by
    // an earlier load... simplest reliable probe: load line A (installs in
    // L1+L2), then load A again after evicting from L1? The L1 is 32 sets
    // × 4 ways; loading 5 lines that alias the same L1 set evicts A from
    // L1 while L2 (128 KB/partition) retains everything.
    let cfg = GpuConfig::gtx480();
    let sets = cfg.l1.sets as u64; // 32
    let parts = cfg.num_partitions as u64; // 6
                                           // Lines that alias in L1 (stride = sets) *and* hit the same partition
                                           // (stride multiple of num_partitions): stride = lcm(32, 6) = 96.
    let stride = sets * parts / gcd(sets, parts);
    let mut lines: Vec<LineAddr> = (0..6).map(|i| LineAddr::new(i * stride)).collect();
    lines.push(LineAddr::new(0)); // re-load the first line: L1 miss, L2 hit
    let report = run_probe(lines);

    let l2 = report.l2.as_ref().expect("hierarchy mode");
    assert_eq!(l2.stats.load_hits, 1, "final access must hit in L2");

    // The average mixes 6 DRAM trips (~220) and 1 L2 hit (~120); recover
    // the L2-hit latency: lat_hit = 7*avg - 6*dram_avg.
    let dram_only = run_probe((0..6).map(|i| LineAddr::new(i * stride)).collect());
    let avg_all = report.avg_l1_miss_latency();
    let avg_dram = dram_only.avg_l1_miss_latency();
    let l2_hit_latency = 7.0 * avg_all - 6.0 * avg_dram;
    assert!(
        (90.0..=150.0).contains(&l2_hit_latency),
        "unloaded L2 hit round trip {l2_hit_latency} outside 120±30 (avg_all={avg_all}, avg_dram={avg_dram})"
    );
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[test]
fn fixed_latency_mode_returns_exactly_the_configured_latency() {
    let cfg = GpuConfig::gtx480();
    for latency in [0u64, 50, 400] {
        let mut sim = GpuSimulator::new(
            cfg.clone(),
            Arc::new(Probe {
                lines: (0..4).map(|i| LineAddr::new(i * 1000)).collect(),
            }),
            MemoryMode::FixedLatency(latency),
        );
        let report = sim.run(1_000_000).expect("completes");
        let measured = report.avg_l1_miss_latency();
        assert!(
            (measured - latency as f64).abs() <= 1.0,
            "fixed {latency}: measured {measured}"
        );
    }
}

#[test]
fn deeper_memory_latency_means_longer_runtime() {
    let cfg = GpuConfig::gtx480();
    let mk = || {
        Arc::new(Probe {
            lines: (0..16).map(|i| LineAddr::new(i * 640)).collect(),
        })
    };
    let fast = GpuSimulator::new(cfg.clone(), mk(), MemoryMode::FixedLatency(10))
        .run(1_000_000)
        .unwrap();
    let slow = GpuSimulator::new(cfg, mk(), MemoryMode::FixedLatency(500))
        .run(1_000_000)
        .unwrap();
    assert!(slow.cycles > fast.cycles * 5);
    assert!(fast.ipc > slow.ipc);
}
