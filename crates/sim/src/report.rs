//! The structured result of a simulation run.

use gpumem_cache::L1Stats;
use gpumem_dram::DramStats;
use gpumem_noc::{Crossbar, CrossbarStats};
use gpumem_simt::{CoreStats, SimtCore};
use gpumem_trace::{LatencyBreakdown, OccupancySeries, Stage, TraceCollector};
use gpumem_types::{Cycle, LatencyStats, QueueStats};
use serde::{Deserialize, Serialize};

use crate::{L2Stats, MemoryPartition};

/// L1-side aggregates (summed over cores).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct L1Report {
    /// Controller counters.
    pub stats: L1Stats,
    /// Miss-queue occupancy.
    pub miss_queue: QueueStats,
    /// LSU memory-pipeline occupancy.
    pub lsu_queue: QueueStats,
    /// Observed L1 miss latencies (the paper's Fig. 1 x-axis quantity).
    pub miss_latency: LatencyStats,
}

/// L2-side aggregates (summed over partitions).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct L2Report {
    /// Slice counters.
    pub stats: L2Stats,
    /// Access-queue occupancy — Section III's "full 46% of usage
    /// lifetime" metric is [`QueueStats::full_fraction_of_usage`] of this.
    pub access_queue: QueueStats,
    /// Miss-queue (towards DRAM) occupancy.
    pub miss_queue: QueueStats,
    /// Response-queue (fills from DRAM) occupancy.
    pub response_queue: QueueStats,
    /// Response path towards the interconnect.
    pub to_icnt_queue: QueueStats,
}

/// DRAM-side aggregates (summed over channels).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DramReport {
    /// Channel counters.
    pub stats: DramStats,
    /// Scheduler-queue occupancy (read and write queues merged) —
    /// Section III's "full 39% of usage lifetime" metric.
    pub scheduler_queue: QueueStats,
    /// Return-queue occupancy.
    pub return_queue: QueueStats,
    /// Request service latency (channel arrival → data).
    pub service_latency: LatencyStats,
}

/// Interconnect aggregates.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NocReport {
    /// Request crossbar (cores → partitions).
    pub request: CrossbarStats,
    /// Response crossbar (partitions → cores).
    pub response: CrossbarStats,
    /// Request-network input-buffer occupancy.
    pub request_inputs: QueueStats,
    /// Response-network input-buffer occupancy.
    pub response_inputs: QueueStats,
}

/// Host-side (wall-clock) performance of one simulation run.
///
/// This is metadata about the simulator, not the simulated machine: two
/// runs of the same simulation legitimately differ here, so any
/// determinism or differential comparison must ignore (or `None` out) the
/// [`SimReport::host`] field before comparing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HostPerf {
    /// Wall-clock seconds the run took on the host.
    pub wall_seconds: f64,
    /// Simulated cycles per host second (`cycles / wall_seconds`).
    pub cycles_per_sec: f64,
    /// Cycles advanced one at a time through the full per-cycle loop.
    pub stepped_cycles: u64,
    /// Cycles crossed in bulk by event-horizon fast-forwarding.
    pub skipped_cycles: u64,
    /// `skipped_cycles / cycles` — how much of the simulated time was
    /// provably inert and skipped.
    pub skipped_fraction: f64,
    /// Worker threads the run used (1 for the serial engines).
    pub threads: u64,
    /// Synchronization rounds the epoch parallel engine ran (absent for
    /// the serial engines; one round covers one epoch or one legacy
    /// per-cycle step).
    pub epoch_rounds: Option<u64>,
    /// Cycles covered by multi-cycle epochs (free-run, two barriers per
    /// epoch) as opposed to legacy per-cycle rounds.
    pub epoch_cycles: Option<u64>,
    /// Largest safe epoch length the engine computed during the run.
    pub max_epoch: Option<u64>,
}

/// Everything measured in one simulation run.
///
/// Serializable so the repro harness can persist raw results next to
/// `EXPERIMENTS.md`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Benchmark (kernel) name.
    pub benchmark: String,
    /// Memory mode the run used ("hierarchy" or "fixed-latency(N)").
    pub mode: String,
    /// Cycles simulated until completion.
    pub cycles: u64,
    /// Warp instructions retired (all cores).
    pub instructions: u64,
    /// Warp-instruction IPC (all cores).
    pub ipc: f64,
    /// Core-side counters (summed).
    pub core: CoreStats,
    /// L1 aggregates.
    pub l1: L1Report,
    /// L2 aggregates (absent in fixed-latency mode).
    pub l2: Option<L2Report>,
    /// DRAM aggregates (absent in fixed-latency mode).
    pub dram: Option<DramReport>,
    /// Interconnect aggregates (absent in fixed-latency mode).
    pub noc: Option<NocReport>,
    /// Host-side throughput of the run (absent for mid-run snapshots;
    /// excluded from determinism comparisons).
    pub host: Option<HostPerf>,
    /// Set when the parallel engine lost a worker mid-run and finished the
    /// simulation on the sequential engine. The simulated results are still
    /// exact; this records that the run took the slow path and why.
    pub degraded: Option<gpumem_types::Degradation>,
    /// Per-stage fetch-lifecycle latency breakdown (present only when
    /// [`enable_trace`](crate::GpuSimulator::enable_trace) was called).
    pub latency_breakdown: Option<LatencyBreakdown>,
}

impl SimReport {
    /// Mean observed L1 miss latency.
    pub fn avg_l1_miss_latency(&self) -> f64 {
        self.l1.miss_latency.mean()
    }

    /// Fraction of its usage lifetime the (aggregated) L2 access queue was
    /// full — the paper's first Section III headline number (46%).
    pub fn l2_access_queue_full_fraction(&self) -> Option<f64> {
        self.l2
            .as_ref()
            .map(|l2| l2.access_queue.full_fraction_of_usage())
    }

    /// Fraction of its usage lifetime the (aggregated) DRAM scheduler
    /// queue was full — the paper's second Section III headline number
    /// (39%).
    pub fn dram_queue_full_fraction(&self) -> Option<f64> {
        self.dram
            .as_ref()
            .map(|d| d.scheduler_queue.full_fraction_of_usage())
    }

    /// Fraction of issue cycles lost to memory stalls.
    pub fn memory_stall_fraction(&self) -> f64 {
        if self.core.cycles == 0 {
            0.0
        } else {
            (self.core.stall_memory + self.core.stall_mem_pipeline) as f64 / self.core.cycles as f64
        }
    }
}

/// Assembles a [`SimReport`] from the live components (crate-internal).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_report(
    benchmark: &str,
    mode: &str,
    now: Cycle,
    cores: &[SimtCore],
    partitions: &[MemoryPartition],
    req_xbar: Option<&Crossbar>,
    resp_xbar: Option<&Crossbar>,
) -> SimReport {
    let mut core_stats = CoreStats::default();
    let mut l1 = L1Report::default();
    for c in cores {
        core_stats.merge(c.stats());
        l1.stats.merge(c.l1_stats());
        l1.miss_queue.merge(c.l1_miss_queue_stats());
        l1.lsu_queue.merge(c.lsu_queue_stats());
        l1.miss_latency.merge(c.miss_latency());
    }
    let instructions = core_stats.instructions;
    let cycles = now.raw();
    let ipc = if cycles == 0 {
        0.0
    } else {
        instructions as f64 / cycles as f64
    };

    let (l2, dram) = if partitions.is_empty() {
        (None, None)
    } else {
        let mut l2r = L2Report::default();
        let mut dr = DramReport::default();
        for p in partitions {
            l2r.stats.merge(p.stats());
            l2r.access_queue.merge(p.access_queue_stats());
            l2r.miss_queue.merge(p.miss_queue_stats());
            l2r.response_queue.merge(p.response_queue_stats());
            l2r.to_icnt_queue.merge(p.to_icnt_queue_stats());
            dr.stats.merge(p.dram().stats());
            dr.scheduler_queue.merge(p.dram().scheduler_queue_stats());
            dr.scheduler_queue.merge(p.dram().write_queue_stats());
            dr.return_queue.merge(p.dram().return_queue_stats());
            dr.service_latency.merge(p.dram().service_latency());
        }
        (Some(l2r), Some(dr))
    };

    let noc = match (req_xbar, resp_xbar) {
        (Some(req), Some(resp)) => Some(NocReport {
            request: req.stats(),
            response: resp.stats(),
            request_inputs: req.input_queue_stats(),
            response_inputs: resp.input_queue_stats(),
        }),
        _ => None,
    };

    SimReport {
        benchmark: benchmark.to_owned(),
        mode: mode.to_owned(),
        cycles,
        instructions,
        ipc,
        core: core_stats,
        l1,
        l2,
        dram,
        noc,
        host: None,
        degraded: None,
        latency_breakdown: build_breakdown(cores, partitions),
    }
}

/// Merges every core's trace collector (in core index order), folds in the
/// DRAM write-path histograms and collects the occupancy series (cores
/// first, then partitions, each in index order). Index order is engine-
/// invariant — the parallel engine reassembles its shards back into global
/// order before reporting — so the breakdown is bit-identical across
/// engines. Returns `None` when tracing was never enabled.
fn build_breakdown(cores: &[SimtCore], partitions: &[MemoryPartition]) -> Option<LatencyBreakdown> {
    let mut merged: Option<TraceCollector> = None;
    for c in cores {
        if let Some(tr) = c.trace() {
            match &mut merged {
                Some(m) => m.merge(&tr.collector),
                None => merged = Some(tr.collector.clone()),
            }
        }
    }
    let mut collector = merged?;
    for p in partitions {
        if let Some(wt) = p.dram().trace() {
            collector.absorb_stage(Stage::WbQueue, &wt.queue);
            collector.absorb_stage(Stage::WbService, &wt.service);
        }
    }
    let mut occupancy: Vec<OccupancySeries> = Vec::new();
    for (i, c) in cores.iter().enumerate() {
        if let Some(tr) = c.trace() {
            occupancy.push(tr.lsu.to_series(format!("core{i}"), "lsu_queue"));
            occupancy.push(tr.l1_miss.to_series(format!("core{i}"), "l1_miss_queue"));
        }
    }
    for (i, p) in partitions.iter().enumerate() {
        if let Some(tr) = p.trace() {
            occupancy.push(tr.l2_access.to_series(format!("partition{i}"), "l2_access"));
            occupancy.push(
                tr.dram_sched
                    .to_series(format!("partition{i}"), "dram_read_sched"),
            );
        }
    }
    Some(collector.breakdown(occupancy))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_helpers_on_empty() {
        let r = SimReport {
            benchmark: "x".into(),
            mode: "hierarchy".into(),
            cycles: 0,
            instructions: 0,
            ipc: 0.0,
            core: CoreStats::default(),
            l1: L1Report::default(),
            l2: None,
            dram: None,
            noc: None,
            host: None,
            degraded: None,
            latency_breakdown: None,
        };
        assert_eq!(r.avg_l1_miss_latency(), 0.0);
        assert_eq!(r.l2_access_queue_full_fraction(), None);
        assert_eq!(r.dram_queue_full_fraction(), None);
        assert_eq!(r.memory_stall_fraction(), 0.0);
    }

    #[test]
    fn report_serializes() {
        let r = SimReport {
            benchmark: "x".into(),
            mode: "fixed-latency(100)".into(),
            cycles: 10,
            instructions: 5,
            ipc: 0.5,
            core: CoreStats::default(),
            l1: L1Report::default(),
            l2: Some(L2Report::default()),
            dram: Some(DramReport::default()),
            noc: None,
            host: Some(HostPerf {
                wall_seconds: 0.25,
                cycles_per_sec: 40.0,
                stepped_cycles: 6,
                skipped_cycles: 4,
                skipped_fraction: 0.4,
                threads: 1,
                epoch_rounds: Some(3),
                epoch_cycles: Some(4),
                max_epoch: Some(2),
            }),
            degraded: None,
            latency_breakdown: None,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.benchmark, "x");
        assert_eq!(back.cycles, 10);
        assert!(back.l2.is_some());
        assert_eq!(back.host.as_ref().map(|h| h.skipped_cycles), Some(4));
        assert!(back.latency_breakdown.is_none());
    }

    fn traced_fetch(id: u64, issued: u64, returned: u64) -> gpumem_types::MemFetch {
        use gpumem_types::{AccessKind, CoreId, FetchId, LineAddr, MemFetch};
        let mut f = MemFetch::new(
            FetchId::new(id),
            AccessKind::Load,
            LineAddr::new(id),
            CoreId::new(0),
        );
        f.timeline.issued = Some(Cycle::new(issued));
        f.timeline.returned = Some(Cycle::new(returned));
        f
    }

    #[test]
    fn report_with_breakdown_roundtrips() {
        use gpumem_trace::TraceConfig;
        let mut collector = TraceCollector::new(TraceConfig::default());
        collector.record_fetch(&traced_fetch(1, 0, 40));
        collector.record_fetch(&traced_fetch(2, 5, 105));
        let breakdown = collector.breakdown(Vec::new());
        assert!(breakdown.reconciles());
        let mut r = SimReport {
            benchmark: "x".into(),
            mode: "hierarchy".into(),
            cycles: 200,
            instructions: 10,
            ipc: 0.05,
            core: CoreStats::default(),
            l1: L1Report::default(),
            l2: None,
            dram: None,
            noc: None,
            host: None,
            degraded: None,
            latency_breakdown: Some(breakdown),
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: SimReport = serde_json::from_str(&json).unwrap();
        let bd = back.latency_breakdown.expect("breakdown survives");
        assert_eq!(bd.fetches_traced, 2);
        assert_eq!(bd.end_to_end_total_cycles, 40 + 100);
        assert_eq!(bd.stage_total_cycles, bd.end_to_end_total_cycles);
        // Stripping the field entirely (a pre-trace report) must still
        // deserialize, with the breakdown absent.
        r.latency_breakdown = None;
        let old_json = serde_json::to_string(&r)
            .unwrap()
            .replace(",\"latency_breakdown\":null", "");
        let old: SimReport = serde_json::from_str(&old_json).unwrap();
        assert!(old.latency_breakdown.is_none());
    }

    #[test]
    fn breakdown_merge_matches_single_collector() {
        use gpumem_trace::TraceConfig;
        // Two collectors fed disjoint fetches must merge into exactly the
        // collector that saw both — the property build_breakdown relies on
        // when folding per-core collectors in index order.
        let cfg = TraceConfig::default();
        let (mut a, mut b, mut whole) = (
            TraceCollector::new(cfg),
            TraceCollector::new(cfg),
            TraceCollector::new(cfg),
        );
        for (id, issued, returned) in [(1, 0, 64), (2, 8, 24), (3, 2, 1000)] {
            let f = traced_fetch(id, issued, returned);
            if id % 2 == 1 {
                a.record_fetch(&f)
            } else {
                b.record_fetch(&f)
            }
            whole.record_fetch(&f);
        }
        a.merge(&b);
        let (merged, direct) = (a.breakdown(Vec::new()), whole.breakdown(Vec::new()));
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&direct).unwrap()
        );
        // Merging an empty collector is the identity.
        let empty = TraceCollector::new(cfg);
        whole.merge(&empty);
        assert_eq!(
            serde_json::to_string(&whole.breakdown(Vec::new())).unwrap(),
            serde_json::to_string(&direct).unwrap()
        );
    }
}
