//! Full-system GPU simulator for the `gpumem` workspace.
//!
//! [`GpuSimulator`] assembles the substrate crates into the paper's
//! platform: N SIMT cores (`gpumem-simt`) talk through two flit-serialized
//! crossbars (`gpumem-noc`) to M memory partitions, each a banked slice of
//! the shared L2 ([`MemoryPartition`]) backed by a GDDR5-like channel
//! (`gpumem-dram`).
//!
//! Two memory backends are selectable via [`MemoryMode`]:
//!
//! * [`MemoryMode::Hierarchy`] — the full timing model (the baseline and
//!   every Table I design point).
//! * [`MemoryMode::FixedLatency`] — the Section II instrument: every L1
//!   miss response returns after exactly N cycles with unlimited
//!   bandwidth, which is how the paper draws Fig. 1.
//!
//! A finished run yields a [`SimReport`] carrying IPC, per-level queue
//! occupancy statistics (the Section III congestion metrics), latency
//! distributions and per-component counters.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use gpumem_config::GpuConfig;
//! use gpumem_sim::{GpuSimulator, MemoryMode};
//! use gpumem_simt::{KernelProgram, WarpInstr};
//! use gpumem_types::{CtaId, LineAddr};
//!
//! struct Stream;
//! impl KernelProgram for Stream {
//!     fn name(&self) -> &str { "stream" }
//!     fn grid_ctas(&self) -> u32 { 8 }
//!     fn warps_per_cta(&self) -> u32 { 2 }
//!     fn instr(&self, cta: CtaId, warp: u32, pc: u32) -> Option<WarpInstr> {
//!         match pc {
//!             0 => Some(WarpInstr::load_line(
//!                 LineAddr::new(u64::from(cta.index() as u32 * 2 + warp)), 1)),
//!             1 => Some(WarpInstr::Alu { latency: 4 }),
//!             _ => None,
//!         }
//!     }
//! }
//!
//! let mut cfg = GpuConfig::tiny();
//! cfg.num_cores = 2;
//! let mut sim = GpuSimulator::new(cfg, Arc::new(Stream), MemoryMode::Hierarchy);
//! let report = sim.run(100_000).expect("completes");
//! assert!(report.ipc > 0.0);
//! assert_eq!(report.instructions, 8 * 2 * 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod events;
mod fixed;
mod gpu;
mod parallel;
mod partition;
mod report;
mod sched;
mod watchdog;

pub use chaos::ChaosConfig;
pub use events::EngineProfile;
pub use fixed::FixedLatencyMemory;
pub use gpu::{GpuSimulator, MemoryMode, SkipPolicy};
pub use parallel::EpochPolicy;
pub use partition::{L2Stats, MemoryPartition, PartitionTrace};
pub use report::{DramReport, HostPerf, L1Report, L2Report, NocReport, SimReport};
pub use sched::TimingWheel;
pub use watchdog::{ProgressFingerprint, Watchdog};

// The observability layer's public surface, re-exported so downstream code
// (the repro harness, the golden-trace tests) needs no direct dependency
// on `gpumem-trace`.
pub use gpumem_trace::{
    chrome_trace_events, stage_spans, ChromeEvent, LatencyBreakdown, OccupancyPoint,
    OccupancySeries, SlowFetch, Stage, StageClass, StageSpan, StageStat, TraceConfig,
};

// The error taxonomy lives in `gpumem-types` (model crates construct the
// variants directly); re-exported here so `gpumem_sim::SimError` keeps
// working for downstream code that only sees run results.
pub use gpumem_types::{ComponentOccupancy, Degradation, OldestFetch, SimError, WedgeDiagnosis};

// The kernel abstraction is part of this crate's public API (every
// constructor takes one), so re-export it for downstream convenience.
pub use gpumem_simt::{KernelProgram, WarpInstr};
