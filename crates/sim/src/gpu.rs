//! The full-system simulator: cores + interconnect + partitions, or cores +
//! fixed-latency memory.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use gpumem_config::GpuConfig;
use gpumem_noc::{Crossbar, Packet};
use gpumem_simt::{KernelProgram, SimtCore};
use gpumem_types::{host_wall_clock, CtaId, Cycle, PartitionId};

use crate::report::{build_report, HostPerf};
use crate::{FixedLatencyMemory, MemoryPartition, SimReport};

/// Which memory system sits below the L1s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryMode {
    /// The full timing hierarchy: crossbars, banked L2 partitions, DRAM.
    Hierarchy,
    /// Every L1 miss returns after exactly this many cycles, with
    /// unlimited bandwidth (the paper's Fig. 1 instrument).
    FixedLatency(u64),
}

impl fmt::Display for MemoryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryMode::Hierarchy => write!(f, "hierarchy"),
            MemoryMode::FixedLatency(n) => write!(f, "fixed-latency({n})"),
        }
    }
}

/// A failed simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The watchdog expired before the kernel finished — either the budget
    /// was too small or the configuration deadlocked.
    Watchdog {
        /// Cycle at which the run was aborted.
        cycle: u64,
        /// Instructions retired so far (progress indicator).
        instructions: u64,
        /// Human-readable liveness diagnosis.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Watchdog {
                cycle,
                instructions,
                detail,
            } => write!(
                f,
                "watchdog expired at cycle {cycle} ({instructions} instructions retired): {detail}"
            ),
        }
    }
}

impl Error for SimError {}

pub(crate) enum Backend {
    Hierarchy {
        req_xbar: Crossbar,
        resp_xbar: Crossbar,
        partitions: Vec<MemoryPartition>,
    },
    Fixed(FixedLatencyMemory),
}

/// When the event-horizon scan runs during [`GpuSimulator::run`].
///
/// Computing the global horizon touches every warp and queue; on a
/// congestion-bound benchmark the scan almost never finds a skippable
/// window, so paying it every cycle is pure overhead. The policy makes the
/// scan *lazy*: the first attempt happens only after `lazy_start` stepped
/// cycles, each failed attempt doubles the wait (capped at
/// `2^max_shift`), and one successful jump resets the wait to zero —
/// idle-bound benchmarks with long runs of consecutive skippable windows
/// still skip them back to back.
///
/// The policy affects wall-clock time only, never simulation results:
/// stepping through a skippable cycle is the reference semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipPolicy {
    /// Stepped cycles before the first horizon scan is attempted.
    pub lazy_start: u32,
    /// Cap on the exponential backoff: failed attempts wait at most
    /// `2^max_shift` cycles between scans.
    pub max_shift: u32,
}

impl Default for SkipPolicy {
    fn default() -> Self {
        SkipPolicy {
            lazy_start: 64,
            max_shift: 10,
        }
    }
}

/// The assembled GPU.
///
/// Construct with a validated [`GpuConfig`], a [`KernelProgram`] and a
/// [`MemoryMode`], then call [`run`](GpuSimulator::run).
pub struct GpuSimulator {
    pub(crate) cfg: GpuConfig,
    pub(crate) program: Arc<dyn KernelProgram>,
    mode: MemoryMode,
    pub(crate) cores: Vec<SimtCore>,
    pub(crate) backend: Backend,
    pub(crate) now: Cycle,
    pub(crate) next_cta: u32,
    pub(crate) responses_delivered: u64,
    pub(crate) requests_injected: u64,
    pub(crate) stepped_cycles: u64,
    skipped_cycles: u64,
    skip_policy: SkipPolicy,
}

impl fmt::Debug for GpuSimulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GpuSimulator")
            .field("program", &self.program.name())
            .field("mode", &self.mode)
            .field("now", &self.now)
            .field("next_cta", &self.next_cta)
            .finish_non_exhaustive()
    }
}

impl GpuSimulator {
    /// Builds a simulator.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`GpuConfig::validate`], or if the program's
    /// CTAs need more warps than a core has slots.
    pub fn new(cfg: GpuConfig, program: Arc<dyn KernelProgram>, mode: MemoryMode) -> Self {
        cfg.validate().expect("invalid GpuConfig");
        assert!(
            program.warps_per_cta() as usize <= cfg.core.max_warps,
            "a CTA of {} warps cannot fit {} warp slots",
            program.warps_per_cta(),
            cfg.core.max_warps
        );
        let cores = (0..cfg.num_cores)
            .map(|i| {
                SimtCore::new(
                    gpumem_types::CoreId::new(i as u32),
                    &cfg,
                    Arc::clone(&program),
                )
            })
            .collect();
        let backend = match mode {
            MemoryMode::Hierarchy => Backend::Hierarchy {
                req_xbar: Crossbar::new(cfg.num_cores, cfg.num_partitions, &cfg.noc),
                resp_xbar: Crossbar::new(cfg.num_partitions, cfg.num_cores, &cfg.noc),
                partitions: (0..cfg.num_partitions)
                    .map(|p| MemoryPartition::new(PartitionId::new(p as u32), &cfg))
                    .collect(),
            },
            MemoryMode::FixedLatency(latency) => Backend::Fixed(FixedLatencyMemory::new(latency)),
        };
        GpuSimulator {
            cfg,
            program,
            mode,
            cores,
            backend,
            now: Cycle::ZERO,
            next_cta: 0,
            responses_delivered: 0,
            requests_injected: 0,
            stepped_cycles: 0,
            skipped_cycles: 0,
            skip_policy: SkipPolicy::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Overrides when [`run`](GpuSimulator::run) attempts event-horizon
    /// scans. Affects wall-clock time only, never simulation results.
    pub fn set_skip_policy(&mut self, policy: SkipPolicy) {
        self.skip_policy = policy;
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Runs until the kernel completes and the memory system drains,
    /// fast-forwarding across cycles in which no component can act (see
    /// [`next_event`](GpuSimulator::next_event)). The skipping is
    /// observationally invisible: every [`SimReport`] field except the
    /// host-side [`SimReport::host`] block is bit-identical to
    /// [`run_stepped`](GpuSimulator::run_stepped).
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] if completion is not reached within
    /// `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> Result<SimReport, SimError> {
        self.run_inner(max_cycles, true)
    }

    /// Runs strictly cycle by cycle, never skipping. This is the reference
    /// semantics that [`run`](GpuSimulator::run) must reproduce exactly;
    /// the differential test suite executes every benchmark both ways and
    /// compares the reports bit for bit.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] if completion is not reached within
    /// `max_cycles`.
    pub fn run_stepped(&mut self, max_cycles: u64) -> Result<SimReport, SimError> {
        self.run_inner(max_cycles, false)
    }

    fn run_inner(&mut self, max_cycles: u64, skip: bool) -> Result<SimReport, SimError> {
        let wall_start = host_wall_clock();
        // Horizon scans run under the lazy policy (see [`SkipPolicy`]):
        // wait `lazy_start` cycles before the first attempt, back off
        // exponentially while attempts fail, resume scanning every cycle
        // after one succeeds. Attempt timing affects only wall clock,
        // never results — stepping a skippable cycle is the reference
        // semantics anyway.
        let mut backoff: u32 = self.skip_policy.lazy_start;
        let mut failed_shift: u32 = 0;
        while !self.is_done() {
            if self.now.raw() >= max_cycles {
                return Err(SimError::Watchdog {
                    cycle: self.now.raw(),
                    instructions: self.total_instructions(),
                    detail: self.liveness_detail(),
                });
            }
            self.step();
            if skip && !self.is_done() {
                if backoff > 0 {
                    backoff -= 1;
                    continue;
                }
                // Jump to the event horizon, clamped so the watchdog above
                // still fires at exactly `max_cycles`. A `None` horizon
                // with work outstanding is a wedged machine: skip straight
                // to the watchdog (each skipped cycle is provably a
                // stall, so the counters remain exact).
                let horizon = self
                    .next_event()
                    .map_or(max_cycles, |h| h.raw())
                    .min(max_cycles);
                if horizon > self.now.raw() {
                    self.fast_forward_to(Cycle::new(horizon));
                    failed_shift = 0;
                    backoff = 0;
                } else {
                    failed_shift = (failed_shift + 1).min(self.skip_policy.max_shift);
                    backoff = 1 << failed_shift;
                }
            }
        }
        debug_assert_eq!(
            self.responses_delivered,
            self.expected_responses(),
            "every load request must receive exactly one response"
        );
        let wall = wall_start.elapsed_seconds();
        let mut report = self.report();
        report.host = Some(HostPerf {
            wall_seconds: wall,
            cycles_per_sec: if wall > 0.0 {
                self.now.raw() as f64 / wall
            } else {
                0.0
            },
            stepped_cycles: self.stepped_cycles,
            skipped_cycles: self.skipped_cycles,
            skipped_fraction: if self.now.raw() > 0 {
                self.skipped_cycles as f64 / self.now.raw() as f64
            } else {
                0.0
            },
            threads: 1,
        });
        Ok(report)
    }

    /// Runs cycle by cycle like [`run_stepped`](GpuSimulator::run_stepped)
    /// but shards each cycle across `threads` persistent worker threads:
    /// cores (with their L1s) and memory partitions (L2 slice + DRAM
    /// channel) step concurrently against the crossbar state left by the
    /// previous cycle, and the crossbar itself ticks serially at the
    /// barrier between the two phases.
    ///
    /// Deterministic by construction: every buffered injection is
    /// committed in fixed shard order at the barrier, so the resulting
    /// [`SimReport`] is bit-identical to `run_stepped` (modulo the
    /// host-side [`SimReport::host`] block) for every `threads` value.
    /// `threads <= 1` delegates to `run_stepped` directly.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] if completion is not reached within
    /// `max_cycles`.
    pub fn run_parallel(&mut self, max_cycles: u64, threads: usize) -> Result<SimReport, SimError> {
        if threads <= 1 {
            return self.run_stepped(max_cycles);
        }
        crate::parallel::run(self, max_cycles, threads)
    }

    /// The earliest cycle at or after [`now`](GpuSimulator::now) at which
    /// any component can make progress, or `None` when the whole machine
    /// is quiescent. Never returns a cycle in the past.
    ///
    /// When the returned cycle lies strictly in the future, every cycle
    /// before it is provably inert — no queue moves, no instruction
    /// issues, no response lands — and
    /// [`fast_forward_to`](GpuSimulator::fast_forward_to) may jump the
    /// clock there directly.
    pub fn next_event(&self) -> Option<Cycle> {
        let now = self.now;
        // Undispatched CTAs land on any core with room this very cycle.
        if self.next_cta < self.program.grid_ctas() && self.cores.iter().any(|c| c.can_accept_cta())
        {
            return Some(now);
        }
        let mut earliest: Option<Cycle> = None;
        let fold = |ev: Option<Cycle>, earliest: &mut Option<Cycle>| -> bool {
            match ev {
                Some(t) if t <= now => true,
                Some(t) => {
                    *earliest = Some(match *earliest {
                        Some(e) if e <= t => e,
                        _ => t,
                    });
                    false
                }
                None => false,
            }
        };
        for core in &self.cores {
            if fold(core.next_event(now), &mut earliest) {
                return Some(now);
            }
        }
        match &self.backend {
            Backend::Hierarchy {
                req_xbar,
                resp_xbar,
                partitions,
            } => {
                if fold(req_xbar.next_event(now), &mut earliest)
                    || fold(resp_xbar.next_event(now), &mut earliest)
                {
                    return Some(now);
                }
                for p in partitions {
                    if fold(p.next_event(now), &mut earliest) {
                        return Some(now);
                    }
                }
            }
            Backend::Fixed(mem) => {
                if fold(mem.next_event(now), &mut earliest) {
                    return Some(now);
                }
            }
        }
        earliest
    }

    /// Jumps the clock to `target`, replaying the per-cycle accounting of
    /// the skipped cycles in closed form (cycle counts, stall
    /// classification, queue-occupancy statistics).
    ///
    /// The caller must have proven via
    /// [`next_event`](GpuSimulator::next_event) that no component can act
    /// before `target`; [`run`](GpuSimulator::run) is the canonical
    /// caller.
    ///
    /// # Panics
    ///
    /// Panics if `target` is in the past.
    pub fn fast_forward_to(&mut self, target: Cycle) {
        assert!(target >= self.now, "cannot fast-forward into the past");
        let cycles = target.raw() - self.now.raw();
        if cycles == 0 {
            return;
        }
        let now = self.now;
        for core in &mut self.cores {
            core.fast_forward(now, cycles);
        }
        match &mut self.backend {
            Backend::Hierarchy {
                req_xbar,
                resp_xbar,
                partitions,
            } => {
                for p in partitions.iter_mut() {
                    p.fast_forward(now, cycles);
                }
                req_xbar.observe_many(cycles);
                resp_xbar.observe_many(cycles);
            }
            Backend::Fixed(_) => {}
        }
        self.skipped_cycles += cycles;
        self.now = target;
    }

    /// Cycles advanced one at a time by [`step`](GpuSimulator::step).
    pub fn stepped_cycles(&self) -> u64 {
        self.stepped_cycles
    }

    /// Cycles crossed in bulk by
    /// [`fast_forward_to`](GpuSimulator::fast_forward_to).
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Advances the whole system by one cycle.
    pub fn step(&mut self) {
        self.dispatch_ctas();
        let now = self.now;

        match &mut self.backend {
            Backend::Hierarchy {
                req_xbar,
                resp_xbar,
                partitions,
            } => {
                for (p_idx, p) in partitions.iter_mut().enumerate() {
                    p.cycle(
                        now,
                        req_xbar.egress_mut(p_idx),
                        resp_xbar.ingress_mut(p_idx),
                    );
                }
                req_xbar.tick(now);
                resp_xbar.tick(now);

                for (c, core) in self.cores.iter_mut().enumerate() {
                    // One L1 fill per cycle from the response network.
                    if let Some(pkt) = resp_xbar.pop_ejected(c) {
                        core.accept_response(pkt.fetch, now);
                        self.responses_delivered += 1;
                    }
                    core.cycle(now);
                    // Inject as many fill requests as the input buffer
                    // accepts.
                    while core.peek_memory_request().is_some() && req_xbar.can_inject(c) {
                        let mut fetch = core.pop_memory_request().expect("peeked");
                        let part = (fetch.line.index() % self.cfg.num_partitions as u64) as usize;
                        fetch.partition = Some(PartitionId::new(part as u32));
                        fetch.timeline.icnt_inject = Some(now);
                        let bytes = fetch.request_bytes(self.cfg.line_bytes);
                        let pkt = Packet::new(fetch, part, bytes, self.cfg.noc.flit_bytes);
                        req_xbar.try_inject(c, pkt).expect("can_inject checked");
                        self.requests_injected += 1;
                    }
                    core.observe();
                }
                for p in partitions.iter_mut() {
                    p.observe();
                }
                req_xbar.observe();
                resp_xbar.observe();
            }
            Backend::Fixed(mem) => {
                // Deliver all due responses (unlimited fill bandwidth).
                while let Some(fetch) = mem.pop_due(now) {
                    let idx = fetch.core.index();
                    self.cores[idx].accept_response(fetch, now);
                    self.responses_delivered += 1;
                }
                for core in self.cores.iter_mut() {
                    core.cycle(now);
                    while let Some(mut fetch) = core.pop_memory_request() {
                        fetch.timeline.icnt_inject = Some(now);
                        self.requests_injected += 1;
                        mem.submit(fetch, now);
                    }
                    core.observe();
                }
            }
        }

        self.stepped_cycles += 1;
        self.now = self.now.next();
    }

    pub(crate) fn dispatch_ctas(&mut self) {
        let grid = self.program.grid_ctas();
        if self.next_cta >= grid {
            return;
        }
        for core in &mut self.cores {
            while self.next_cta < grid && core.can_accept_cta() {
                core.assign_cta(CtaId::new(self.next_cta));
                self.next_cta += 1;
            }
            if self.next_cta >= grid {
                break;
            }
        }
    }

    /// True when every CTA has retired and all memory traffic has drained.
    pub fn is_done(&self) -> bool {
        if self.next_cta < self.program.grid_ctas() {
            return false;
        }
        if !self
            .cores
            .iter()
            .all(|c| c.all_ctas_retired() && !c.has_pending_memory())
        {
            return false;
        }
        match &self.backend {
            Backend::Hierarchy {
                req_xbar,
                resp_xbar,
                partitions,
            } => {
                req_xbar.is_idle() && resp_xbar.is_idle() && partitions.iter().all(|p| p.is_idle())
            }
            Backend::Fixed(mem) => mem.is_idle(),
        }
    }

    pub(crate) fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.stats().instructions).sum()
    }

    pub(crate) fn expected_responses(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| {
                let s = c.l1_stats();
                s.load_misses - s.merged_misses
            })
            .sum()
    }

    pub(crate) fn liveness_detail(&self) -> String {
        let pending_cores = self
            .cores
            .iter()
            .filter(|c| !c.all_ctas_retired() || c.has_pending_memory())
            .count();
        let backend = match &self.backend {
            Backend::Hierarchy { partitions, .. } => format!(
                "{} partitions busy",
                partitions.iter().filter(|p| !p.is_idle()).count()
            ),
            Backend::Fixed(mem) => {
                format!("{} responses pending", mem.pending_responses())
            }
        };
        format!(
            "{}/{} CTAs dispatched, {} cores pending, {}",
            self.next_cta,
            self.program.grid_ctas(),
            pending_cores,
            backend
        )
    }

    /// Builds the final report (also available mid-run for progress
    /// inspection).
    pub fn report(&self) -> SimReport {
        let (partitions, req_xbar, resp_xbar) = match &self.backend {
            Backend::Hierarchy {
                req_xbar,
                resp_xbar,
                partitions,
            } => (partitions.as_slice(), Some(req_xbar), Some(resp_xbar)),
            Backend::Fixed(_) => (&[][..], None, None),
        };
        build_report(
            self.program.name(),
            &self.mode.to_string(),
            self.now,
            &self.cores,
            partitions,
            req_xbar,
            resp_xbar,
        )
    }
}
