//! The full-system simulator: cores + interconnect + partitions, or cores +
//! fixed-latency memory.

use std::fmt;
use std::sync::Arc;

use gpumem_config::GpuConfig;
use gpumem_noc::{Crossbar, Packet};
use gpumem_simt::{KernelProgram, SimtCore};
use gpumem_trace::TraceConfig;
use gpumem_types::{
    host_wall_clock, ComponentOccupancy, CtaId, Cycle, Degradation, OldestFetch, PartitionId,
    SimError, WedgeDiagnosis,
};

use crate::chaos::{ChaosConfig, ChaosEngine};
use crate::parallel::EpochPolicy;
use crate::report::{build_report, HostPerf};
use crate::watchdog::Watchdog;
use crate::{FixedLatencyMemory, MemoryPartition, SimReport};

/// Which memory system sits below the L1s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryMode {
    /// The full timing hierarchy: crossbars, banked L2 partitions, DRAM.
    Hierarchy,
    /// Every L1 miss returns after exactly this many cycles, with
    /// unlimited bandwidth (the paper's Fig. 1 instrument).
    FixedLatency(u64),
}

impl fmt::Display for MemoryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryMode::Hierarchy => write!(f, "hierarchy"),
            MemoryMode::FixedLatency(n) => write!(f, "fixed-latency({n})"),
        }
    }
}

pub(crate) enum Backend {
    Hierarchy {
        req_xbar: Crossbar,
        resp_xbar: Crossbar,
        partitions: Vec<MemoryPartition>,
    },
    Fixed(FixedLatencyMemory),
}

/// When the event-horizon scan runs during [`GpuSimulator::run`].
///
/// Computing the global horizon touches every warp and queue; on a
/// congestion-bound benchmark the scan almost never finds a skippable
/// window, so paying it every cycle is pure overhead. The policy makes the
/// scan *lazy*: the first attempt happens only after `lazy_start` stepped
/// cycles, each failed attempt doubles the wait (capped at
/// `2^max_shift`), and one successful jump resets the wait to zero —
/// idle-bound benchmarks with long runs of consecutive skippable windows
/// still skip them back to back.
///
/// The policy affects wall-clock time only, never simulation results:
/// stepping through a skippable cycle is the reference semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipPolicy {
    /// Stepped cycles before the first horizon scan is attempted.
    pub lazy_start: u32,
    /// Cap on the exponential backoff: failed attempts wait at most
    /// `2^max_shift` cycles between scans.
    pub max_shift: u32,
}

impl Default for SkipPolicy {
    fn default() -> Self {
        SkipPolicy {
            lazy_start: 64,
            max_shift: 10,
        }
    }
}

/// The assembled GPU.
///
/// Construct with a validated [`GpuConfig`], a [`KernelProgram`] and a
/// [`MemoryMode`], then call [`run`](GpuSimulator::run).
pub struct GpuSimulator {
    pub(crate) cfg: GpuConfig,
    pub(crate) program: Arc<dyn KernelProgram>,
    mode: MemoryMode,
    pub(crate) cores: Vec<SimtCore>,
    pub(crate) backend: Backend,
    pub(crate) now: Cycle,
    pub(crate) next_cta: u32,
    pub(crate) responses_delivered: u64,
    pub(crate) requests_injected: u64,
    pub(crate) stepped_cycles: u64,
    pub(crate) skipped_cycles: u64,
    skip_policy: SkipPolicy,
    /// No-progress horizon in cycles; `None` disables the watchdog.
    pub(crate) watchdog_horizon: Option<u64>,
    /// Active fault-injection engine, if chaos is configured.
    pub(crate) chaos: Option<ChaosEngine>,
    /// Host wall-clock budget for a run; `None` disables the deadline.
    pub(crate) deadline_seconds: Option<f64>,
    /// Set when the parallel engine caught a worker fault and finished the
    /// run on the sequential engine.
    pub(crate) degraded: Option<Degradation>,
    /// Set once [`enable_trace`](GpuSimulator::enable_trace) is called.
    pub(crate) trace_cfg: Option<TraceConfig>,
}

impl fmt::Debug for GpuSimulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GpuSimulator")
            .field("program", &self.program.name())
            .field("mode", &self.mode)
            .field("now", &self.now)
            .field("next_cta", &self.next_cta)
            .finish_non_exhaustive()
    }
}

impl GpuSimulator {
    /// Builds a simulator.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`GpuConfig::validate`], or if the program's
    /// CTAs need more warps than a core has slots.
    pub fn new(cfg: GpuConfig, program: Arc<dyn KernelProgram>, mode: MemoryMode) -> Self {
        // simlint::allow(no-panic-in-model, reason = "constructor contract: new() documents the panic on an invalid config and runs before any simulation state exists")
        cfg.validate().expect("invalid GpuConfig");
        assert!(
            program.warps_per_cta() as usize <= cfg.core.max_warps,
            "a CTA of {} warps cannot fit {} warp slots",
            program.warps_per_cta(),
            cfg.core.max_warps
        );
        let cores = (0..cfg.num_cores)
            .map(|i| {
                SimtCore::new(
                    gpumem_types::CoreId::new(i as u32),
                    &cfg,
                    Arc::clone(&program),
                )
            })
            .collect();
        let backend = match mode {
            MemoryMode::Hierarchy => Backend::Hierarchy {
                req_xbar: Crossbar::new(cfg.num_cores, cfg.num_partitions, &cfg.noc),
                resp_xbar: Crossbar::new(cfg.num_partitions, cfg.num_cores, &cfg.noc),
                partitions: (0..cfg.num_partitions)
                    .map(|p| MemoryPartition::new(PartitionId::new(p as u32), &cfg))
                    .collect(),
            },
            MemoryMode::FixedLatency(latency) => Backend::Fixed(FixedLatencyMemory::new(latency)),
        };
        GpuSimulator {
            cfg,
            program,
            mode,
            cores,
            backend,
            now: Cycle::ZERO,
            next_cta: 0,
            responses_delivered: 0,
            requests_injected: 0,
            stepped_cycles: 0,
            skipped_cycles: 0,
            skip_policy: SkipPolicy::default(),
            watchdog_horizon: None,
            chaos: None,
            deadline_seconds: None,
            degraded: None,
            trace_cfg: None,
        }
    }

    /// Turns on fetch-lifecycle tracing across every core and partition:
    /// per-stage latency histograms, queue-occupancy sampling and
    /// slowest-fetch capture, surfaced as
    /// [`SimReport::latency_breakdown`]. Enable before running; a
    /// simulator that never calls this takes one never-taken branch per
    /// hook and produces a bit-identical report with the breakdown absent.
    ///
    /// Tracing is engine-invariant: `run`, `run_stepped` and
    /// `run_parallel` produce bit-identical breakdowns.
    pub fn enable_trace(&mut self, cfg: TraceConfig) {
        self.trace_cfg = Some(cfg);
        for core in &mut self.cores {
            core.enable_trace(&cfg);
        }
        if let Backend::Hierarchy { partitions, .. } = &mut self.backend {
            for p in partitions.iter_mut() {
                p.enable_trace(&cfg);
            }
        }
    }

    /// The active trace configuration, if tracing was enabled.
    pub fn trace_config(&self) -> Option<&TraceConfig> {
        self.trace_cfg.as_ref()
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Overrides when [`run`](GpuSimulator::run) attempts event-horizon
    /// scans. Affects wall-clock time only, never simulation results.
    pub fn set_skip_policy(&mut self, policy: SkipPolicy) {
        self.skip_policy = policy;
    }

    /// Arms (or disarms with `None`) the no-progress watchdog: a run
    /// aborts with [`SimError::Wedged`] and a structured
    /// [`WedgeDiagnosis`] once no progress counter changes for `horizon`
    /// consecutive cycles. A horizon of 0 is clamped to 1.
    ///
    /// Deterministic: serial, event-horizon and parallel engines observe
    /// the same fingerprint sequence and trip at the same cycle. While a
    /// watchdog is armed, event-horizon skipping is disabled (a wedged
    /// machine has no future event, and the watchdog must count real
    /// cycles).
    pub fn set_watchdog(&mut self, horizon: Option<u64>) {
        self.watchdog_horizon = horizon;
    }

    /// Installs a seeded fault-injection schedule (see [`ChaosConfig`]).
    /// A fully disabled config removes any active schedule. While chaos is
    /// active, event-horizon skipping is disabled so injection cycles are
    /// never jumped over.
    pub fn set_chaos(&mut self, config: ChaosConfig) {
        self.chaos = config.any_fault_enabled().then(|| ChaosEngine::new(config));
    }

    /// Bounds the host wall-clock time of a run; checked every 1024
    /// stepped cycles, exceeding it aborts with
    /// [`SimError::DeadlineExceeded`]. `None` disables the deadline.
    /// Affects only *whether* a run finishes, never its simulated results.
    pub fn set_deadline_seconds(&mut self, seconds: Option<f64>) {
        self.deadline_seconds = seconds;
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Runs until the kernel completes and the memory system drains, on
    /// the event-driven kernel: a timing wheel wakes only the components
    /// that have work, and sleeping components are caught up in closed
    /// form (see `crates/sim/src/events.rs`). The engine choice is
    /// observationally invisible: every [`SimReport`] field except the
    /// host-side [`SimReport::host`] block is bit-identical to
    /// [`run_stepped`](GpuSimulator::run_stepped).
    ///
    /// An armed watchdog or chaos schedule demands real per-cycle
    /// stepping (chaos injects at specific cycles; the watchdog counts
    /// real cycles), so those runs fall back to the stepped loop with
    /// horizon skipping, exactly as before.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] if completion is not reached within
    /// `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> Result<SimReport, SimError> {
        if self.watchdog_horizon.is_some() || self.chaos.is_some() {
            return self.run_inner(max_cycles, true);
        }
        crate::events::run_event(self, max_cycles, false).map(|(report, _)| report)
    }

    /// Runs on the event-driven kernel with per-component host-time
    /// attribution enabled, returning the profile alongside the report.
    /// Simulation results are bit-identical to [`run`](GpuSimulator::run);
    /// only host-side timing is collected. Requires no watchdog and no
    /// chaos schedule to be armed.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] if completion is not reached within
    /// `max_cycles`.
    pub fn run_profiled(
        &mut self,
        max_cycles: u64,
    ) -> Result<(SimReport, crate::EngineProfile), SimError> {
        let (report, profile) = crate::events::run_event(self, max_cycles, true)?;
        Ok((report, profile.unwrap_or_default()))
    }

    /// Runs on the legacy whole-machine event-horizon engine: per-cycle
    /// stepping with lazy [`SkipPolicy`]-driven horizon jumps. Retained
    /// for A/B comparison against the event-driven kernel and as the
    /// engine behind watchdog/chaos runs; results are bit-identical to
    /// both other serial engines.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] if completion is not reached within
    /// `max_cycles`.
    pub fn run_horizon(&mut self, max_cycles: u64) -> Result<SimReport, SimError> {
        self.run_inner(max_cycles, true)
    }

    /// Runs strictly cycle by cycle, never skipping. This is the reference
    /// semantics that [`run`](GpuSimulator::run) must reproduce exactly;
    /// the differential test suite executes every benchmark both ways and
    /// compares the reports bit for bit.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] if completion is not reached within
    /// `max_cycles`.
    pub fn run_stepped(&mut self, max_cycles: u64) -> Result<SimReport, SimError> {
        self.run_inner(max_cycles, false)
    }

    fn run_inner(&mut self, max_cycles: u64, skip: bool) -> Result<SimReport, SimError> {
        let wall_start = host_wall_clock();
        // The watchdog and chaos both demand real per-cycle stepping:
        // chaos injects at specific cycles, and a wedged machine reports
        // `next_event() == None`, which skipping would misread as "jump to
        // the budget".
        let mut watchdog = self.watchdog_horizon.map(Watchdog::new);
        let mut skip = skip && watchdog.is_none() && self.chaos.is_none();
        // Horizon scans run under the lazy policy (see [`SkipPolicy`]):
        // wait `lazy_start` cycles before the first attempt, back off
        // exponentially while attempts fail, resume scanning every cycle
        // after one succeeds. Attempt timing affects only wall clock,
        // never results — stepping a skippable cycle is the reference
        // semantics anyway.
        let mut backoff: u32 = self.skip_policy.lazy_start;
        let mut failed_shift: u32 = 0;
        while !self.is_done() {
            if self.now.raw() >= max_cycles {
                return Err(SimError::Watchdog {
                    cycle: self.now.raw(),
                    instructions: self.total_instructions(),
                    detail: self.liveness_detail(),
                });
            }
            if self.deadline_seconds.is_some() && self.stepped_cycles.is_multiple_of(1024) {
                if let Some(budget) = self.deadline_seconds {
                    if wall_start.elapsed_seconds() > budget {
                        return Err(SimError::DeadlineExceeded {
                            cycle: self.now.raw(),
                            budget_seconds: budget,
                        });
                    }
                }
            }
            if let Some(wd) = &mut watchdog {
                if wd.observe(self.now, self.progress_fingerprint()) {
                    let diagnosis = self.wedge_diagnosis(wd);
                    return Err(SimError::Wedged {
                        diagnosis: Box::new(diagnosis),
                    });
                }
            }
            self.step()?;
            if skip && !self.is_done() {
                if backoff > 0 {
                    backoff -= 1;
                    continue;
                }
                // Jump to the event horizon, clamped so the watchdog above
                // still fires at exactly `max_cycles`. A `None` horizon
                // with work outstanding is a wedged machine: skip straight
                // to the watchdog (each skipped cycle is provably a
                // stall, so the counters remain exact).
                let horizon = self
                    .next_event()
                    .map_or(max_cycles, |h| h.raw())
                    .min(max_cycles);
                if horizon > self.now.raw() {
                    self.fast_forward_to(Cycle::new(horizon));
                    failed_shift = 0;
                    backoff = 0;
                } else {
                    failed_shift = (failed_shift + 1).min(self.skip_policy.max_shift);
                    // Adaptive give-up: once the backoff is saturated and
                    // not a single cycle has ever been skipped, this run
                    // is congestion-bound end to end (the paper's §III
                    // regime) and further scans are pure overhead —
                    // disable them for the rest of the run.
                    if failed_shift == self.skip_policy.max_shift && self.skipped_cycles == 0 {
                        skip = false;
                    }
                    backoff = 1 << failed_shift;
                }
            }
        }
        self.check_conservation()?;
        let wall = wall_start.elapsed_seconds();
        let mut report = self.report();
        report.host = Some(HostPerf {
            wall_seconds: wall,
            cycles_per_sec: if wall > 0.0 {
                self.now.raw() as f64 / wall
            } else {
                0.0
            },
            stepped_cycles: self.stepped_cycles,
            skipped_cycles: self.skipped_cycles,
            skipped_fraction: if self.now.raw() > 0 {
                self.skipped_cycles as f64 / self.now.raw() as f64
            } else {
                0.0
            },
            threads: 1,
            epoch_rounds: None,
            epoch_cycles: None,
            max_epoch: None,
        });
        Ok(report)
    }

    /// Runs cycle by cycle like [`run_stepped`](GpuSimulator::run_stepped)
    /// but shards the machine across `threads` persistent worker threads:
    /// cores (with their L1s) and memory partitions (L2 slice + DRAM
    /// channel) step concurrently, with the crossbars the sole
    /// synchronization boundary. With the default
    /// [`EpochPolicy::Auto`] the engine free-runs shards through
    /// multi-cycle epochs bounded by the crossbar hop latency and
    /// synchronizes only at epoch boundaries (see
    /// [`run_parallel_with`](GpuSimulator::run_parallel_with)).
    ///
    /// Deterministic by construction: every buffered injection is
    /// committed in fixed shard order at the barrier, so the resulting
    /// [`SimReport`] is bit-identical to `run_stepped` (modulo the
    /// host-side [`SimReport::host`] block) for every `threads` value.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] if completion is not reached within
    /// `max_cycles`.
    pub fn run_parallel(&mut self, max_cycles: u64, threads: usize) -> Result<SimReport, SimError> {
        self.run_parallel_with(max_cycles, threads, EpochPolicy::Auto)
    }

    /// [`run_parallel`](GpuSimulator::run_parallel) with an explicit
    /// epoch policy: [`EpochPolicy::PerCycle`] barriers every cycle (the
    /// pre-epoch engine, kept as the bit-identity degeneracy),
    /// [`EpochPolicy::Fixed(n)`](EpochPolicy::Fixed) caps epochs at `n`
    /// cycles, and [`EpochPolicy::Auto`] lets the engine pick the
    /// largest provably-safe epoch each round. The policy only caps the
    /// epoch length — safety clamps (cross-shard latency, chaos
    /// schedules, watchdog horizon, CTA retirement, port headroom) are
    /// always applied — so the report is bit-identical to
    /// `run_stepped()` under every policy. `threads <= 1` runs the same
    /// epoch engine on the calling thread with no barriers at all.
    ///
    /// # Errors
    ///
    /// [`SimError::Watchdog`] if completion is not reached within
    /// `max_cycles`.
    pub fn run_parallel_with(
        &mut self,
        max_cycles: u64,
        threads: usize,
        policy: EpochPolicy,
    ) -> Result<SimReport, SimError> {
        crate::parallel::run(self, max_cycles, threads.max(1), policy)
    }

    /// The earliest cycle at or after [`now`](GpuSimulator::now) at which
    /// any component can make progress, or `None` when the whole machine
    /// is quiescent. Never returns a cycle in the past.
    ///
    /// When the returned cycle lies strictly in the future, every cycle
    /// before it is provably inert — no queue moves, no instruction
    /// issues, no response lands — and
    /// [`fast_forward_to`](GpuSimulator::fast_forward_to) may jump the
    /// clock there directly.
    pub fn next_event(&self) -> Option<Cycle> {
        let now = self.now;
        // Undispatched CTAs land on any core with room this very cycle.
        if self.next_cta < self.program.grid_ctas() && self.cores.iter().any(|c| c.can_accept_cta())
        {
            return Some(now);
        }
        let mut earliest: Option<Cycle> = None;
        let fold = |ev: Option<Cycle>, earliest: &mut Option<Cycle>| -> bool {
            match ev {
                Some(t) if t <= now => true,
                Some(t) => {
                    *earliest = Some(match *earliest {
                        Some(e) if e <= t => e,
                        _ => t,
                    });
                    false
                }
                None => false,
            }
        };
        for core in &self.cores {
            if fold(core.next_event(now), &mut earliest) {
                return Some(now);
            }
        }
        match &self.backend {
            Backend::Hierarchy {
                req_xbar,
                resp_xbar,
                partitions,
            } => {
                if fold(req_xbar.next_event(now), &mut earliest)
                    || fold(resp_xbar.next_event(now), &mut earliest)
                {
                    return Some(now);
                }
                // Cross-component couplings the per-component events can't
                // see: packets a crossbar already ejected are popped by the
                // *receiving* side's stage — a queued response wakes its
                // core, a queued request wakes its partition — and the pop
                // returns the credit a starved crossbar may be sleeping on
                // (its own next_event deliberately ignores ejection queues;
                // see [`gpumem_noc::Crossbar::next_event`]).
                for c in 0..self.cores.len() {
                    if resp_xbar.peek_ejected(c).is_some() {
                        return Some(now);
                    }
                }
                for p_idx in 0..partitions.len() {
                    if req_xbar.peek_ejected(p_idx).is_some() {
                        return Some(now);
                    }
                }
                for p in partitions {
                    if fold(p.next_event(now), &mut earliest) {
                        return Some(now);
                    }
                }
            }
            Backend::Fixed(mem) => {
                if fold(mem.next_event(now), &mut earliest) {
                    return Some(now);
                }
            }
        }
        earliest
    }

    /// Jumps the clock to `target`, replaying the per-cycle accounting of
    /// the skipped cycles in closed form (cycle counts, stall
    /// classification, queue-occupancy statistics).
    ///
    /// The caller must have proven via
    /// [`next_event`](GpuSimulator::next_event) that no component can act
    /// before `target`; [`run`](GpuSimulator::run) is the canonical
    /// caller.
    ///
    /// # Panics
    ///
    /// Panics if `target` is in the past.
    pub fn fast_forward_to(&mut self, target: Cycle) {
        assert!(target >= self.now, "cannot fast-forward into the past");
        let cycles = target.raw() - self.now.raw();
        if cycles == 0 {
            return;
        }
        let now = self.now;
        for core in &mut self.cores {
            core.fast_forward(now, cycles);
        }
        match &mut self.backend {
            Backend::Hierarchy {
                req_xbar,
                resp_xbar,
                partitions,
            } => {
                for p in partitions.iter_mut() {
                    p.fast_forward(now, cycles);
                }
                req_xbar.fast_forward(now, cycles);
                resp_xbar.fast_forward(now, cycles);
            }
            Backend::Fixed(_) => {}
        }
        self.skipped_cycles += cycles;
        self.now = target;
    }

    /// Cycles advanced one at a time by [`step`](GpuSimulator::step).
    pub fn stepped_cycles(&self) -> u64 {
        self.stepped_cycles
    }

    /// Cycles crossed in bulk by
    /// [`fast_forward_to`](GpuSimulator::fast_forward_to).
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Advances the whole system by one cycle.
    ///
    /// # Errors
    ///
    /// Returns a typed [`SimError`] if a component detects a broken
    /// internal invariant (queue overflow after a fullness check, crossbar
    /// credit underflow, MSHR leak, port-protocol violation) — never on
    /// ordinary congestion.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.dispatch_ctas();
        let now = self.now;

        match &mut self.backend {
            Backend::Hierarchy {
                req_xbar,
                resp_xbar,
                partitions,
            } => {
                // Fault injection happens at the very start of the cycle,
                // before any component acts — the same point the parallel
                // coordinator applies it, so schedules are engine-identical.
                if let Some(chaos) = &mut self.chaos {
                    let mut req_ins: Vec<&mut gpumem_noc::IngressPort> =
                        req_xbar.ingress_ports_mut().iter_mut().collect();
                    let mut resp_ins: Vec<&mut gpumem_noc::IngressPort> =
                        resp_xbar.ingress_ports_mut().iter_mut().collect();
                    let mut parts: Vec<&mut MemoryPartition> = partitions.iter_mut().collect();
                    chaos.apply(now, &mut req_ins, &mut resp_ins, &mut parts);
                }
                for (p_idx, p) in partitions.iter_mut().enumerate() {
                    p.cycle(
                        now,
                        req_xbar.egress_mut(p_idx),
                        resp_xbar.ingress_mut(p_idx),
                    )?;
                }
                req_xbar.tick(now)?;
                resp_xbar.tick(now)?;

                for (c, core) in self.cores.iter_mut().enumerate() {
                    // One L1 fill per cycle from the response network.
                    if let Some(pkt) = resp_xbar.pop_ejected(c) {
                        core.accept_response(pkt.fetch, now);
                        self.responses_delivered += 1;
                    }
                    core.cycle(now);
                    // Inject as many fill requests as the input buffer
                    // accepts.
                    while core.peek_memory_request().is_some() && req_xbar.can_inject(c) {
                        let Some(mut fetch) = core.pop_memory_request() else {
                            break;
                        };
                        let part = (fetch.line.index() % self.cfg.num_partitions as u64) as usize;
                        fetch.partition = Some(PartitionId::new(part as u32));
                        fetch.timeline.icnt_inject = Some(now);
                        let bytes = fetch.request_bytes(self.cfg.line_bytes);
                        let pkt = Packet::new(fetch, part, bytes, self.cfg.noc.flit_bytes);
                        if req_xbar.try_inject(c, pkt).is_err() {
                            return Err(SimError::PortProtocol {
                                component: "core",
                                cycle: now.raw(),
                                detail: format!(
                                    "request crossbar rejected core {c}'s injection after can_inject"
                                ),
                            });
                        }
                        self.requests_injected += 1;
                    }
                    core.observe();
                }
                for p in partitions.iter_mut() {
                    p.observe();
                }
                req_xbar.observe();
                resp_xbar.observe();
            }
            Backend::Fixed(mem) => {
                // Deliver all due responses (unlimited fill bandwidth).
                while let Some(fetch) = mem.pop_due(now) {
                    let idx = fetch.core.index();
                    self.cores[idx].accept_response(fetch, now);
                    self.responses_delivered += 1;
                }
                for core in self.cores.iter_mut() {
                    core.cycle(now);
                    while let Some(mut fetch) = core.pop_memory_request() {
                        fetch.timeline.icnt_inject = Some(now);
                        self.requests_injected += 1;
                        mem.submit(fetch, now);
                    }
                    core.observe();
                }
            }
        }

        self.stepped_cycles += 1;
        self.now = self.now.next();
        Ok(())
    }

    pub(crate) fn dispatch_ctas(&mut self) {
        let grid = self.program.grid_ctas();
        if self.next_cta >= grid {
            return;
        }
        for core in &mut self.cores {
            while self.next_cta < grid && core.can_accept_cta() {
                core.assign_cta(CtaId::new(self.next_cta));
                self.next_cta += 1;
            }
            if self.next_cta >= grid {
                break;
            }
        }
    }

    /// True when every CTA has retired and all memory traffic has drained.
    pub fn is_done(&self) -> bool {
        if self.next_cta < self.program.grid_ctas() {
            return false;
        }
        if !self
            .cores
            .iter()
            .all(|c| c.all_ctas_retired() && !c.has_pending_memory())
        {
            return false;
        }
        match &self.backend {
            Backend::Hierarchy {
                req_xbar,
                resp_xbar,
                partitions,
            } => {
                req_xbar.is_idle() && resp_xbar.is_idle() && partitions.iter().all(|p| p.is_idle())
            }
            Backend::Fixed(mem) => mem.is_idle(),
        }
    }

    pub(crate) fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.stats().instructions).sum()
    }

    pub(crate) fn expected_responses(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| {
                let s = c.l1_stats();
                s.load_misses - s.merged_misses
            })
            .sum()
    }

    /// The monotone progress counters the watchdog fingerprints.
    pub(crate) fn progress_fingerprint(&self) -> crate::watchdog::ProgressFingerprint {
        (
            self.total_instructions(),
            self.responses_delivered,
            self.requests_injected,
            self.next_cta,
        )
    }

    /// End-of-run conservation check: every unmerged L1 load miss must have
    /// produced exactly one delivered response. A mismatch means a fetch
    /// was dropped or duplicated somewhere in the hierarchy — an invariant
    /// violation, reported as a leak rather than silently folded into the
    /// statistics.
    pub(crate) fn check_conservation(&self) -> Result<(), SimError> {
        let expected = self.expected_responses();
        if self.responses_delivered != expected {
            return Err(SimError::MshrLeak {
                component: "gpu",
                cycle: self.now.raw(),
                detail: format!(
                    "run completed with {} responses delivered but {} unmerged load misses",
                    self.responses_delivered, expected
                ),
            });
        }
        Ok(())
    }

    /// Builds the structured wedge diagnosis the watchdog attaches to
    /// [`SimError::Wedged`]: who holds work, which ports/stages exert
    /// backpressure (in pipeline order, so the chain reads core →
    /// request network → partitions → response network), and the oldest
    /// in-flight fetch.
    pub(crate) fn wedge_diagnosis(&self, wd: &Watchdog) -> WedgeDiagnosis {
        let now = self.now;
        let pending_cores = self
            .cores
            .iter()
            .filter(|c| !c.all_ctas_retired() || c.has_pending_memory())
            .count() as u64;
        let mut components = vec![ComponentOccupancy {
            name: "cores".to_owned(),
            pending: pending_cores,
        }];
        let mut blocked_chain = Vec::new();
        // (issued, id, core) of the oldest stamped fetch seen so far;
        // writebacks carry no issue stamp and are skipped.
        let mut oldest: Option<(u64, u64, u32)> = None;
        let mut consider = |f: &gpumem_types::MemFetch| {
            if let Some(issued) = f.timeline.issued {
                let key = (issued.raw(), f.id.raw(), f.core.index() as u32);
                if oldest.is_none_or(|o| (o.0, o.1) > (key.0, key.1)) {
                    oldest = Some(key);
                }
            }
        };
        for core in &self.cores {
            if let Some(f) = core.peek_memory_request() {
                consider(f);
            }
        }
        match &self.backend {
            Backend::Hierarchy {
                req_xbar,
                resp_xbar,
                partitions,
            } => {
                components.push(ComponentOccupancy {
                    name: "req_xbar".to_owned(),
                    pending: req_xbar.packets_in_network() as u64,
                });
                // Aggregate each partition stage label across partitions so
                // the occupancy table stays readable at any partition count.
                let mut stages: Vec<(&'static str, u64)> = Vec::new();
                for p in partitions {
                    for (label, n) in p.pending_breakdown() {
                        match stages.iter_mut().find(|(l, _)| *l == label) {
                            Some((_, total)) => *total += n,
                            None => stages.push((label, n)),
                        }
                    }
                }
                components.extend(stages.into_iter().map(|(label, n)| ComponentOccupancy {
                    name: label.to_owned(),
                    pending: n,
                }));
                components.push(ComponentOccupancy {
                    name: "resp_xbar".to_owned(),
                    pending: resp_xbar.packets_in_network() as u64,
                });

                for i in req_xbar.full_ingress_ports() {
                    blocked_chain.push(format!("req_xbar.ingress[{i}](full)"));
                }
                for i in req_xbar.held_ingress_ports(now) {
                    blocked_chain.push(format!("req_xbar.ingress[{i}](held)"));
                }
                for i in req_xbar.full_ejection_ports() {
                    blocked_chain.push(format!("req_xbar.ejection[{i}](full)"));
                }
                for (i, p) in partitions.iter().enumerate() {
                    for stage in p.blocked_stages(now) {
                        blocked_chain.push(format!("partition[{i}].{stage}"));
                    }
                }
                for i in resp_xbar.full_ingress_ports() {
                    blocked_chain.push(format!("resp_xbar.ingress[{i}](full)"));
                }
                for i in resp_xbar.held_ingress_ports(now) {
                    blocked_chain.push(format!("resp_xbar.ingress[{i}](held)"));
                }
                for i in resp_xbar.full_ejection_ports() {
                    blocked_chain.push(format!("resp_xbar.ejection[{i}](full)"));
                }

                for f in req_xbar.fetches() {
                    consider(f);
                }
                for p in partitions {
                    for f in p.fetches() {
                        consider(f);
                    }
                }
                for f in resp_xbar.fetches() {
                    consider(f);
                }
            }
            Backend::Fixed(mem) => {
                components.push(ComponentOccupancy {
                    name: "fixed_memory".to_owned(),
                    pending: mem.pending_responses() as u64,
                });
                for f in mem.fetches() {
                    consider(f);
                }
            }
        }
        let oldest_fetch = oldest.map(|(issued_at, id, core)| OldestFetch {
            id,
            core,
            issued_at,
            waiting: now.raw().saturating_sub(issued_at),
        });
        WedgeDiagnosis {
            cycle: now.raw(),
            last_progress_cycle: wd.last_progress_cycle().raw(),
            horizon: wd.horizon(),
            instructions: self.total_instructions(),
            responses_delivered: self.responses_delivered,
            requests_injected: self.requests_injected,
            ctas_dispatched: self.next_cta,
            grid_ctas: self.program.grid_ctas(),
            components,
            oldest_fetch,
            blocked_chain,
        }
    }

    pub(crate) fn liveness_detail(&self) -> String {
        let pending_cores = self
            .cores
            .iter()
            .filter(|c| !c.all_ctas_retired() || c.has_pending_memory())
            .count();
        let backend = match &self.backend {
            Backend::Hierarchy {
                req_xbar,
                resp_xbar,
                partitions,
            } => {
                let part_pending: u64 = partitions.iter().map(|p| p.pending_requests()).sum();
                format!(
                    "req_xbar={} pkts, partitions={} reqs, resp_xbar={} pkts",
                    req_xbar.packets_in_network(),
                    part_pending,
                    resp_xbar.packets_in_network()
                )
            }
            Backend::Fixed(mem) => {
                format!("fixed_memory={} responses pending", mem.pending_responses())
            }
        };
        format!(
            "{}/{} CTAs dispatched, {} cores pending, {}",
            self.next_cta,
            self.program.grid_ctas(),
            pending_cores,
            backend
        )
    }

    /// Builds the final report (also available mid-run for progress
    /// inspection).
    pub fn report(&self) -> SimReport {
        let (partitions, req_xbar, resp_xbar) = match &self.backend {
            Backend::Hierarchy {
                req_xbar,
                resp_xbar,
                partitions,
            } => (partitions.as_slice(), Some(req_xbar), Some(resp_xbar)),
            Backend::Fixed(_) => (&[][..], None, None),
        };
        let mut report = build_report(
            self.program.name(),
            &self.mode.to_string(),
            self.now,
            &self.cores,
            partitions,
            req_xbar,
            resp_xbar,
        );
        report.degraded = self.degraded.clone();
        report
    }
}
