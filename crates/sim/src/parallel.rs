//! Deterministic epoch-synchronized parallel stepping.
//!
//! [`run`] reproduces [`GpuSimulator::run_stepped`] bit for bit while
//! spreading the machine across persistent worker threads. The sharding
//! follows the machine's natural ownership structure:
//!
//! * A **core shard** is a [`SimtCore`] (with its L1) plus the two
//!   crossbar ports only that core touches — its ingress port on the
//!   request network and its egress port on the response network.
//! * A **partition shard** is a [`MemoryPartition`] (L2 slice + DRAM
//!   channel) plus *its* two ports — its egress port on the request
//!   network and its ingress port on the response network.
//!
//! The only state shared between shards is the crossbar fabric, and every
//! cross-shard effect takes at least the crossbar hop latency to land.
//! The engine exploits that slack: instead of a barrier every cycle, the
//! coordinator computes a **safe epoch** `E` — never longer than the
//! minimum cross-shard latency, further clamped by every fence that could
//! make mid-epoch global coordination observable (chaos schedules, the
//! watchdog horizon, CTA retirement while dispatching, port headroom,
//! cycle budget, completion distance) — and shards **free-run** `E`
//! cycles against frozen boundary state:
//!
//! * Packets that would *arrive* during the epoch are pre-extracted into
//!   a per-port [`LandingSchedule`] and landed at their exact cycles.
//! * Packets a shard *injects* are buffered in a per-shard epoch mailbox
//!   (partitions inject into an always-empty scratch port so their
//!   port-protocol gating is unchanged), stamped with their cycle.
//! * Egress-credit returns are recorded with their cycles.
//!
//! At the barrier the coordinator **replays** the epoch against the real
//! fabric: for each cycle it returns recorded credits, commits mailbox
//! injections in global shard order, and ticks both fabrics — exactly
//! the serial per-cycle interleaving, so every packet, counter and queue
//! observation is bit-identical to `run_stepped` for every thread count
//! and epoch policy. `E < 2` falls back to the legacy four-barrier
//! per-cycle round ([`EpochPolicy::PerCycle`] forces it).
//!
//! Cycle structure (hierarchy mode, epoch round; two barrier crossings):
//!
//! ```text
//! main: faults? is_done? budget? deadline? watchdog? dispatch, chaos,
//!       compute safe epoch E, take landing schedules
//!         ── barrier 1 ──
//! workers: shards free-run cycles [T, T+E): cores land+pop responses,
//!          run, buffer misses; partitions pop requests, run L2+DRAM,
//!          buffer responses; per-shard queues observed per cycle
//!         ── barrier 2 ──
//! main: replay [T, T+E): per cycle return credits, commit mailboxes in
//!       global order, tick both fabrics; advance clock by E
//! ```
//!
//! Legacy rounds keep the original choreography (partitions → fabric →
//! cores across four barriers). Fixed-latency mode free-runs against
//! pre-drained response inboxes (the heap cannot answer a new miss in
//! fewer than `latency` cycles) and replays submissions in cycle-then-
//! core order so backend sequence numbers match the serial engine.
//!
//! With one thread the engine runs inline on the calling thread — no
//! spin barrier, no mutexes, no worker-death fixture — but the identical
//! epoch logic, so `threads=1` keeps the bit-identity guarantee while
//! shedding all synchronization overhead.
//!
//! # Robustness
//!
//! Workers never unwind across the barrier protocol. Each phase or epoch
//! runs under `catch_unwind`; a panic or a typed [`SimError`] marks the
//! chunk *dead* and records a [`ChunkFault`], and the worker keeps
//! honouring barriers (doing no further work) so nobody deadlocks. The
//! coordinator notices at the next round start:
//!
//! * An **injected** fault (the [`ChaosConfig::worker_panic_at`]
//!   fixture) strikes at the shard boundary of a *legacy* round — the
//!   epoch clamp never free-runs across the configured cycle — so the
//!   coordinator replays both phases for the dead chunk and the run
//!   degrades gracefully to the sequential engine, bit-identically.
//! * An **organic** panic may have torn mid-phase or mid-epoch state, so
//!   the run aborts with [`SimError::WorkerPanic`]. After a faulted
//!   epoch the coordinator restores landing schedules and does not
//!   advance the clock, so the abort reports the epoch's start cycle.
//! * A typed model error aborts with that error, exactly like the serial
//!   engine.
//!
//! Chunk mutexes are locked poison-tolerantly throughout: a worker panic
//! poisons its chunk, but the chunk data is still needed for diagnosis
//! and reassembly. The barriers are sense-reversing spin barriers that
//! yield after a short spin: on hosts with fewer hardware threads than
//! workers, pure spinning would starve the very thread everyone waits
//! for.

use std::collections::VecDeque;
use std::ops::DerefMut;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use gpumem_noc::{Crossbar, EgressPort, IngressPort, LandingSchedule, Packet};
use gpumem_simt::SimtCore;
use gpumem_types::{host_wall_clock, Cycle, Degradation, HostStopwatch, MemFetch, PartitionId};

use crate::chaos::ChaosEngine;
use crate::gpu::Backend;
use crate::report::HostPerf;
use crate::watchdog::{ProgressFingerprint, Watchdog};
use crate::{FixedLatencyMemory, GpuSimulator, MemoryPartition, SimError, SimReport};

/// Epoch-length policy for the parallel engine (see
/// [`GpuSimulator::run_parallel_with`]).
///
/// The policy only *caps* the epoch length: the safety fences (cross-
/// shard latency, chaos schedules, watchdog horizon, CTA retirement
/// while dispatching, port headroom, completion distance, cycle budget)
/// are always applied, so the produced [`SimReport`] is bit-identical to
/// [`GpuSimulator::run_stepped`] under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochPolicy {
    /// Synchronize every cycle: the legacy four-barrier choreography,
    /// kept as the degenerate reference point (`epoch = 1`).
    PerCycle,
    /// Free-run at most this many cycles per epoch.
    Fixed(u64),
    /// Free-run up to the minimum cross-shard latency each round (the
    /// crossbar hop latency in hierarchy mode, the memory latency in
    /// fixed-latency mode).
    Auto,
}

impl EpochPolicy {
    /// The policy's contribution to the epoch clamp.
    fn cap(self) -> u64 {
        match self {
            EpochPolicy::PerCycle => 1,
            EpochPolicy::Fixed(n) => n.max(1),
            EpochPolicy::Auto => u64::MAX,
        }
    }
}

/// How a parallel run ended.
enum Outcome {
    /// Kernel complete, memory drained.
    Done,
    /// `max_cycles` exhausted.
    Budget,
    /// The no-progress watchdog tripped.
    Wedged,
    /// An injected worker fault was absorbed; finish on the serial engine.
    Degraded { at_cycle: u64 },
    /// A typed error (model invariant, organic worker panic, deadline).
    Fault(SimError),
}

/// What went wrong inside one worker's chunk.
#[derive(Clone)]
enum ChunkFault {
    /// The seeded [`ChaosConfig::worker_panic_at`] fixture: the worker
    /// "died" at the shard boundary, before touching this cycle's state.
    Injected { cycle: u64 },
    /// A real panic escaped a phase; chunk state may be mid-cycle.
    Panic { cycle: u64, message: String },
    /// A typed model error surfaced inside a phase.
    Error(SimError),
}

/// Poison-tolerant lock: a worker that panicked mid-phase has already been
/// recorded as a [`ChunkFault`], and the chunk data is still needed for
/// fault reporting, diagnosis and reassembly.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A reusable sense-reversing barrier for `total` participants.
///
/// Spins briefly, then yields: correctness must not depend on having as
/// many hardware threads as participants.
struct SpinBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Reset before publishing the new generation: a racer from the
            // next round can only touch `arrived` after it observes the
            // bumped generation, by which time the reset is visible.
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins = spins.saturating_add(1);
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Contiguous `[begin, end)` ranges splitting `n` items across `chunks`
/// shard groups. Contiguity matters: concatenating the chunks in chunk-id
/// order must reproduce global port order for the fabric tick.
fn split_ranges(n: usize, chunks: usize) -> Vec<(usize, usize)> {
    (0..chunks)
        .map(|i| ((i * n) / chunks, ((i + 1) * n) / chunks))
        .collect()
}

/// Parameters the shard phases need, copied into every worker.
#[derive(Clone, Copy)]
struct CoreParams {
    num_partitions: u64,
    line_bytes: u64,
    flit_bytes: u64,
    /// Crossbar pipeline latency: the minimum cross-shard latency, and so
    /// the ceiling on every hierarchy epoch.
    hop_latency: u64,
    /// Ingress-port capacity, for the epoch headroom fence and the
    /// partitions' scratch ports.
    input_buffer_pkts: usize,
    /// Destination count of the response network (scratch-port bound).
    num_cores: usize,
}

/// One core shard: the core plus the two ports only it touches, and the
/// epoch bookkeeping for both.
struct CorePack {
    core: SimtCore,
    /// This core's ingress port on the request crossbar.
    req_in: IngressPort,
    /// This core's egress port on the response crossbar.
    resp_out: EgressPort,
    /// Responses scheduled to arrive during the current epoch, landed at
    /// their exact cycles by the free-run.
    landings: LandingSchedule,
    /// `resp_out` credit count at the epoch start (replay baseline).
    credits0: usize,
    /// Cycles at which the free-run popped `resp_out` (credit returns,
    /// at most one per cycle).
    pops: VecDeque<u64>,
    /// Requests buffered during the free-run, committed to `req_in` at
    /// their recorded cycles by the replay.
    mailbox: VecDeque<(u64, Packet)>,
}

impl CorePack {
    fn new(core: SimtCore, req_in: IngressPort, resp_out: EgressPort) -> Self {
        CorePack {
            core,
            req_in,
            resp_out,
            landings: LandingSchedule::default(),
            credits0: 0,
            pops: VecDeque::new(),
            mailbox: VecDeque::new(),
        }
    }
}

/// One partition shard: the partition plus the two ports only it touches,
/// and the epoch bookkeeping for both.
struct PartPack {
    part: MemoryPartition,
    /// This partition's egress port on the request crossbar.
    req_out: EgressPort,
    /// This partition's ingress port on the response crossbar.
    resp_in: IngressPort,
    /// Stand-in ingress the free-run injects responses into. The epoch
    /// headroom fence proves the real `resp_in` could never refuse an
    /// injection during the epoch, and the scratch is drained every
    /// cycle, so the partition's port-protocol gating is unchanged.
    scratch: IngressPort,
    /// Requests scheduled to arrive during the current epoch.
    landings: LandingSchedule,
    /// `req_out` credit count at the epoch start (replay baseline).
    credits0: usize,
    /// Cycles at which the free-run popped `req_out` (credit returns).
    pops: VecDeque<u64>,
    /// Responses buffered during the free-run, committed to `resp_in` at
    /// their recorded cycles by the replay.
    mailbox: VecDeque<(u64, Packet)>,
}

impl PartPack {
    fn new(
        part: MemoryPartition,
        req_out: EgressPort,
        resp_in: IngressPort,
        params: &CoreParams,
    ) -> Self {
        PartPack {
            part,
            req_out,
            resp_in,
            scratch: IngressPort::scratch(params.input_buffer_pkts, params.num_cores),
            landings: LandingSchedule::default(),
            credits0: 0,
            pops: VecDeque::new(),
            mailbox: VecDeque::new(),
        }
    }
}

/// Everything one worker owns, behind one mutex: workers lock only their
/// own chunk during a phase, the coordinator locks all chunks only while
/// every worker is parked at a barrier (so the locks never contend).
struct HierChunk {
    cores: Vec<CorePack>,
    parts: Vec<PartPack>,
    /// Responses delivered to this chunk's cores (merged on exit).
    delivered: u64,
    /// Requests injected by this chunk's cores (merged on exit).
    injected: u64,
    /// First fault this chunk suffered, if any (the coordinator aborts or
    /// degrades the run at the next round start).
    fault: Option<ChunkFault>,
    /// Last cycle of the current epoch at which this chunk changed a
    /// progress-fingerprint counter (for the watchdog's epoch close).
    last_activity: Option<u64>,
}

impl HierChunk {
    /// Phase A (legacy round): step the partition shards for `now`.
    fn phase_partitions(&mut self, now: Cycle) -> Result<(), SimError> {
        for pp in &mut self.parts {
            pp.part.cycle(now, &mut pp.req_out, &mut pp.resp_in)?;
            // The serial loop observes partitions after the cores run, but
            // core activity never touches partition-internal queues, so
            // observing here is bit-identical and saves a phase.
            pp.part.observe();
        }
        Ok(())
    }

    /// Phase B (legacy round): step the core shards for `now`, then close
    /// the cycle's statistics window for every port this chunk owns (the
    /// fabric is quiescent again by this point).
    fn phase_cores(&mut self, now: Cycle, params: &CoreParams) -> Result<(), SimError> {
        for cp in &mut self.cores {
            // One L1 fill per cycle from the response network.
            if let Some(pkt) = cp.resp_out.pop_ejected() {
                cp.core.accept_response(pkt.fetch, now);
                self.delivered += 1;
            }
            cp.core.cycle(now);
            // Inject as many fill requests as the input buffer accepts.
            while cp.core.peek_memory_request().is_some() && cp.req_in.can_inject() {
                let Some(mut fetch) = cp.core.pop_memory_request() else {
                    break;
                };
                let part = (fetch.line.index() % params.num_partitions) as usize;
                fetch.partition = Some(PartitionId::new(part as u32));
                fetch.timeline.icnt_inject = Some(now);
                let bytes = fetch.request_bytes(params.line_bytes);
                let pkt = Packet::new(fetch, part, bytes, params.flit_bytes);
                if cp.req_in.try_inject(pkt).is_err() {
                    return Err(SimError::PortProtocol {
                        component: "core",
                        cycle: now.raw(),
                        detail: "request crossbar rejected an injection after can_inject"
                            .to_owned(),
                    });
                }
                self.injected += 1;
            }
            cp.core.observe();
            cp.req_in.observe();
            cp.resp_out.observe();
        }
        for pp in &mut self.parts {
            pp.req_out.observe();
            pp.resp_in.observe();
        }
        Ok(())
    }

    /// Pulls this epoch's scheduled arrivals out of the egress pipelines
    /// and snapshots the credit baselines the replay restarts from.
    fn prepare_epoch(&mut self, until: Cycle) {
        for cp in &mut self.cores {
            cp.landings = cp.resp_out.take_landings(until);
            cp.credits0 = cp.resp_out.credits();
            debug_assert!(cp.pops.is_empty() && cp.mailbox.is_empty());
        }
        for pp in &mut self.parts {
            // simlint::allow(port-pairing, reason = "epoch snapshots deliberately outlive this method: the schedules are held across the worker free-run and restored by restore_epoch_landings on every round outcome")
            pp.landings = pp.req_out.take_landings(until);
            pp.credits0 = pp.req_out.credits();
            debug_assert!(pp.pops.is_empty() && pp.mailbox.is_empty());
        }
        self.last_activity = None;
    }

    /// Free-runs every shard in this chunk through cycles
    /// `[start, start + len)` against frozen boundary state.
    ///
    /// Shards only read their own ports, their landing schedule (exact
    /// arrival cycles) and, for partitions, an empty scratch ingress; all
    /// cross-shard effects are buffered with their cycles for the
    /// coordinator's replay. The per-cycle sub-order matches the serial
    /// engine: a core lands arrivals before popping (the fabric ticks
    /// before the core phase), a partition pops before landing (the
    /// intake runs before the fabric tick).
    fn run_epoch(&mut self, start: Cycle, len: u64, params: &CoreParams) -> Result<(), SimError> {
        let Self {
            cores,
            parts,
            delivered,
            injected,
            last_activity,
            fault: _,
        } = self;
        for cp in cores.iter_mut() {
            for k in 0..len {
                let now = start + k;
                let mut active = false;
                cp.landings.land_into(now, &mut cp.resp_out)?;
                if let Some(pkt) = cp.resp_out.pop_ejected() {
                    cp.pops.push_back(now.raw());
                    cp.core.accept_response(pkt.fetch, now);
                    *delivered += 1;
                    active = true;
                }
                let before = cp.core.stats().instructions;
                cp.core.cycle(now);
                if cp.core.stats().instructions != before {
                    active = true;
                }
                // The headroom fence guarantees the serial engine's
                // `can_inject` could not refuse during this epoch, so the
                // unconditional drain is bit-identical.
                while let Some(mut fetch) = cp.core.pop_memory_request() {
                    let part = (fetch.line.index() % params.num_partitions) as usize;
                    fetch.partition = Some(PartitionId::new(part as u32));
                    fetch.timeline.icnt_inject = Some(now);
                    let bytes = fetch.request_bytes(params.line_bytes);
                    cp.mailbox.push_back((
                        now.raw(),
                        Packet::new(fetch, part, bytes, params.flit_bytes),
                    ));
                    *injected += 1;
                    active = true;
                }
                cp.core.observe();
                cp.resp_out.observe();
                if active {
                    *last_activity = Some(last_activity.map_or(now.raw(), |a| a.max(now.raw())));
                }
            }
        }
        for pp in parts.iter_mut() {
            for k in 0..len {
                let now = start + k;
                let popped = pp.req_out.ejected_count();
                pp.part.cycle(now, &mut pp.req_out, &mut pp.scratch)?;
                if pp.req_out.ejected_count() != popped {
                    pp.pops.push_back(now.raw());
                }
                pp.landings.land_into(now, &mut pp.req_out)?;
                while let Some(pkt) = pp.scratch.drain() {
                    pp.mailbox.push_back((now.raw(), pkt));
                }
                pp.part.observe();
                pp.req_out.observe();
            }
        }
        Ok(())
    }

    /// Puts unconsumed scheduled arrivals back into the egress pipelines
    /// (front of the in-flight queues: everything forwarded during the
    /// replay arrives at least a full hop later).
    // simlint::allow(port-pairing, reason = "the paired take_landings lives in prepare_epoch; the coordinator calls this on every epoch outcome, success or fault")
    fn restore_epoch_landings(&mut self) {
        for cp in &mut self.cores {
            cp.resp_out
                .restore_landings(std::mem::take(&mut cp.landings));
        }
        for pp in &mut self.parts {
            pp.req_out
                .restore_landings(std::mem::take(&mut pp.landings));
        }
    }

    /// Drops epoch bookkeeping after a faulted epoch (the run aborts at
    /// the next round start; nothing may be committed).
    fn discard_epoch_buffers(&mut self) {
        for cp in &mut self.cores {
            cp.pops.clear();
            cp.mailbox.clear();
        }
        for pp in &mut self.parts {
            pp.pops.clear();
            pp.mailbox.clear();
            while pp.scratch.drain().is_some() {}
        }
    }

    /// True when every shard in this chunk is drained (the chunk's share
    /// of the serial `is_done` condition).
    fn is_idle(&self) -> bool {
        self.cores.iter().all(|cp| {
            cp.core.all_ctas_retired()
                && !cp.core.has_pending_memory()
                && cp.req_in.is_empty()
                && cp.resp_out.is_idle()
        }) && self
            .parts
            .iter()
            .all(|pp| pp.part.is_idle() && pp.req_out.is_idle() && pp.resp_in.is_empty())
    }
}

/// One core shard in fixed-latency mode: responses arrive through the
/// inbox (filled by the coordinator in backend pop order, stamped with
/// their due cycles), requests leave through the outbox (stamped with
/// their issue cycles, drained by the coordinator in cycle-then-core
/// order so backend sequence numbers match the serial engine).
struct FixedPack {
    core: SimtCore,
    inbox: VecDeque<(u64, MemFetch)>,
    outbox: VecDeque<(u64, MemFetch)>,
}

impl FixedPack {
    fn new(core: SimtCore) -> Self {
        FixedPack {
            core,
            inbox: VecDeque::new(),
            outbox: VecDeque::new(),
        }
    }
}

struct FixedChunk {
    cores: Vec<FixedPack>,
    fault: Option<ChunkFault>,
    /// Last cycle of the current epoch at which this chunk changed a
    /// progress-fingerprint counter.
    last_activity: Option<u64>,
}

impl FixedChunk {
    /// Legacy round: one cycle, inbox entries are all due `now`.
    fn phase(&mut self, now: Cycle) {
        for fp in &mut self.cores {
            while let Some((_, fetch)) = fp.inbox.pop_front() {
                fp.core.accept_response(fetch, now);
            }
            fp.core.cycle(now);
            while let Some(mut fetch) = fp.core.pop_memory_request() {
                fetch.timeline.icnt_inject = Some(now);
                fp.outbox.push_back((now.raw(), fetch));
            }
            fp.core.observe();
        }
    }

    /// Free-runs every core through `[start, start + len)`: inbox entries
    /// are delivered at their due cycles, misses buffered with their
    /// issue cycles. The memory heap cannot answer a request submitted at
    /// or after `start` in fewer than `latency >= len` cycles, so the
    /// pre-drained inbox is the complete response schedule.
    fn run_epoch(&mut self, start: Cycle, len: u64) {
        let Self {
            cores,
            last_activity,
            fault: _,
        } = self;
        for fp in cores.iter_mut() {
            for k in 0..len {
                let now = start + k;
                let mut active = false;
                while let Some((due, fetch)) = fp.inbox.pop_front() {
                    if due > now.raw() {
                        fp.inbox.push_front((due, fetch));
                        break;
                    }
                    fp.core.accept_response(fetch, now);
                    active = true;
                }
                let before = fp.core.stats().instructions;
                fp.core.cycle(now);
                if fp.core.stats().instructions != before {
                    active = true;
                }
                while let Some(mut fetch) = fp.core.pop_memory_request() {
                    fetch.timeline.icnt_inject = Some(now);
                    fp.outbox.push_back((now.raw(), fetch));
                    active = true;
                }
                fp.core.observe();
                if active {
                    *last_activity = Some(last_activity.map_or(now.raw(), |a| a.max(now.raw())));
                }
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.cores
            .iter()
            .all(|fp| fp.core.all_ctas_retired() && !fp.core.has_pending_memory())
    }
}

/// What the coordinator decided a round should be.
enum Round {
    /// End the run with this outcome.
    Stop(Outcome),
    /// One per-cycle round with the legacy choreography.
    Legacy,
    /// Free-run `len >= 2` cycles, then replay at the barrier.
    /// `dispatched` records whether this round's preamble assigned CTAs
    /// (it feeds the watchdog's progress attribution).
    Epoch { len: u64, dispatched: bool },
}

/// Epoch accounting surfaced through [`HostPerf`].
#[derive(Default)]
struct EpochStats {
    rounds: u64,
    cycles: u64,
    max_epoch: u64,
}

impl EpochStats {
    fn record(&mut self, len: u64) {
        self.rounds += 1;
        self.cycles += len;
        self.max_epoch = self.max_epoch.max(len);
    }
}

/// Machine-state fences on the epoch length, computed fresh each round.
struct EpochLimits {
    /// Free ingress capacity: the smallest `capacity - occupancy` slack
    /// across every injection path, so the serial engine's `can_inject`
    /// could not refuse anywhere inside the epoch.
    headroom: u64,
    /// Lower bound on the distance to the `is_done` cycle: free-running
    /// past completion would change queue-observation counts.
    completion: u64,
    /// Lower bound on the distance to the next CTA retirement; binding
    /// only while CTAs remain to dispatch (a mid-epoch retirement would
    /// let the serial engine dispatch mid-epoch).
    retirement: u64,
}

/// The largest provably-safe epoch at `now`, as the minimum over every
/// fence. A result below 2 means a legacy per-cycle round.
#[allow(clippy::too_many_arguments)]
fn clamp_epoch(
    base: u64,
    policy_cap: u64,
    now: Cycle,
    max_cycles: u64,
    dispatching: bool,
    chaos_next_fire: u64,
    panic_at: u64,
    watchdog_bound: u64,
    limits: &EpochLimits,
) -> u64 {
    let t = now.raw();
    let mut epoch = base.min(policy_cap);
    epoch = epoch.min(max_cycles.saturating_sub(t));
    epoch = epoch.min(chaos_next_fire.saturating_sub(t));
    epoch = epoch.min(panic_at.saturating_sub(t));
    epoch = epoch.min(watchdog_bound.saturating_sub(t));
    epoch = epoch.min(limits.headroom);
    epoch = epoch.min(limits.completion);
    if dispatching {
        epoch = epoch.min(limits.retirement);
    }
    epoch
}

/// Runs `sim` to completion, bit-identical to `run_stepped`. Entry point
/// for [`GpuSimulator::run_parallel_with`]; `threads == 1` selects the
/// barrier-free inline engine, larger values the threaded engine.
pub(crate) fn run(
    sim: &mut GpuSimulator,
    max_cycles: u64,
    threads: usize,
    policy: EpochPolicy,
) -> Result<SimReport, SimError> {
    let wall_start = host_wall_clock();
    let mut watchdog = sim.watchdog_horizon.map(Watchdog::new);
    let policy_cap = policy.cap();
    let mut stats = EpochStats::default();
    let outcome = match &mut sim.backend {
        Backend::Hierarchy {
            req_xbar,
            resp_xbar,
            partitions,
        } => {
            let params = CoreParams {
                num_partitions: sim.cfg.num_partitions as u64,
                line_bytes: sim.cfg.line_bytes,
                flit_bytes: sim.cfg.noc.flit_bytes,
                hop_latency: sim.cfg.noc.hop_latency,
                input_buffer_pkts: sim.cfg.noc.input_buffer_pkts,
                num_cores: sim.cfg.num_cores,
            };
            let state = HarnessState {
                program: &*sim.program,
                next_cta: &mut sim.next_cta,
                now: &mut sim.now,
                stepped_cycles: &mut sim.stepped_cycles,
                responses_delivered: &mut sim.responses_delivered,
                requests_injected: &mut sim.requests_injected,
                watchdog: watchdog.as_mut(),
                chaos: sim.chaos.as_mut(),
                deadline_seconds: sim.deadline_seconds,
                wall_start: &wall_start,
            };
            if threads <= 1 {
                run_hierarchy_inline(
                    &mut sim.cores,
                    partitions,
                    req_xbar,
                    resp_xbar,
                    params,
                    state,
                    max_cycles,
                    policy_cap,
                    &mut stats,
                )
            } else {
                run_hierarchy(
                    &mut sim.cores,
                    partitions,
                    req_xbar,
                    resp_xbar,
                    params,
                    state,
                    max_cycles,
                    threads,
                    policy_cap,
                    &mut stats,
                )
            }
        }
        // The fixed backend ignores chaos, exactly like the serial engine
        // (its step has no ports or partitions to inject into).
        Backend::Fixed(mem) => {
            let state = HarnessState {
                program: &*sim.program,
                next_cta: &mut sim.next_cta,
                now: &mut sim.now,
                stepped_cycles: &mut sim.stepped_cycles,
                responses_delivered: &mut sim.responses_delivered,
                requests_injected: &mut sim.requests_injected,
                watchdog: watchdog.as_mut(),
                chaos: None,
                deadline_seconds: sim.deadline_seconds,
                wall_start: &wall_start,
            };
            if threads <= 1 {
                run_fixed_inline(
                    &mut sim.cores,
                    mem,
                    state,
                    max_cycles,
                    policy_cap,
                    &mut stats,
                )
            } else {
                run_fixed(
                    &mut sim.cores,
                    mem,
                    state,
                    max_cycles,
                    threads,
                    policy_cap,
                    &mut stats,
                )
            }
        }
    };

    match outcome {
        Outcome::Budget => Err(SimError::Watchdog {
            cycle: sim.now.raw(),
            instructions: sim.total_instructions(),
            detail: sim.liveness_detail(),
        }),
        Outcome::Wedged => {
            let diagnosis = match &watchdog {
                Some(wd) => sim.wedge_diagnosis(wd),
                // Unreachable: Wedged is only produced with a watchdog
                // armed; keep the code total regardless.
                None => sim.wedge_diagnosis(&Watchdog::new(1)),
            };
            Err(SimError::Wedged {
                diagnosis: Box::new(diagnosis),
            })
        }
        Outcome::Degraded { at_cycle } => {
            // The faulted cycle was fully replayed by the coordinator, so
            // the machine state equals the serial engine's at `now` and the
            // sequential resume stays bit-identical.
            sim.degraded = Some(Degradation {
                at_cycle,
                reason: format!(
                    "worker fault at cycle {at_cycle}; cycle replayed by the \
                     coordinator, run resumed on the sequential engine"
                ),
            });
            sim.run_stepped(max_cycles)
        }
        Outcome::Fault(e) => Err(e),
        Outcome::Done => {
            sim.check_conservation()?;
            let wall = wall_start.elapsed_seconds();
            let mut report = sim.report();
            report.host = Some(HostPerf {
                wall_seconds: wall,
                cycles_per_sec: if wall > 0.0 {
                    sim.now.raw() as f64 / wall
                } else {
                    0.0
                },
                stepped_cycles: sim.stepped_cycles,
                skipped_cycles: sim.skipped_cycles(),
                skipped_fraction: if sim.now.raw() > 0 {
                    sim.skipped_cycles() as f64 / sim.now.raw() as f64
                } else {
                    0.0
                },
                threads: threads as u64,
                epoch_rounds: Some(stats.rounds),
                epoch_cycles: Some(stats.cycles),
                max_epoch: Some(stats.max_epoch),
            });
            Ok(report)
        }
    }
}

/// The simulator-global loop state both engines advance, borrowed
/// field-by-field so the backend can be borrowed alongside.
struct HarnessState<'a> {
    program: &'a dyn gpumem_simt::KernelProgram,
    next_cta: &'a mut u32,
    now: &'a mut Cycle,
    stepped_cycles: &'a mut u64,
    responses_delivered: &'a mut u64,
    requests_injected: &'a mut u64,
    watchdog: Option<&'a mut Watchdog>,
    chaos: Option<&'a mut ChaosEngine>,
    deadline_seconds: Option<f64>,
    wall_start: &'a HostStopwatch,
}

/// Dispatches ready CTAs over `cores` exactly like the serial
/// `GpuSimulator::dispatch_ctas`: cores in index order, greedily.
fn dispatch_ctas<'a>(
    cores: impl Iterator<Item = &'a mut SimtCore>,
    program: &dyn gpumem_simt::KernelProgram,
    next_cta: &mut u32,
) {
    let grid = program.grid_ctas();
    if *next_cta >= grid {
        return;
    }
    for core in cores {
        while *next_cta < grid && core.can_accept_cta() {
            core.assign_cta(gpumem_types::CtaId::new(*next_cta));
            *next_cta += 1;
        }
        if *next_cta >= grid {
            break;
        }
    }
}

/// Converts the first recorded chunk fault (scanning in chunk order) into
/// the outcome that ends the run.
fn fault_outcome(faults: impl Iterator<Item = (usize, ChunkFault)>) -> Option<Outcome> {
    faults.into_iter().next().map(|(idx, f)| match f {
        ChunkFault::Injected { cycle } => Outcome::Degraded { at_cycle: cycle },
        ChunkFault::Panic { cycle, message } => Outcome::Fault(SimError::WorkerPanic {
            cycle,
            chunk: idx,
            message,
        }),
        ChunkFault::Error(e) => Outcome::Fault(e),
    })
}

/// The watchdog fingerprint in hierarchy mode (per-chunk counters are
/// merged into the globals only on exit).
fn hier_fingerprint(
    chunks: &[impl DerefMut<Target = HierChunk>],
    state: &HarnessState<'_>,
) -> ProgressFingerprint {
    let instructions: u64 = chunks
        .iter()
        .flat_map(|g| g.cores.iter())
        .map(|cp| cp.core.stats().instructions)
        .sum();
    let delivered = *state.responses_delivered + chunks.iter().map(|g| g.delivered).sum::<u64>();
    let injected = *state.requests_injected + chunks.iter().map(|g| g.injected).sum::<u64>();
    (instructions, delivered, injected, *state.next_cta)
}

/// The cycle at which a per-cycle watchdog would first have seen this
/// epoch's last fingerprint change: activity at cycle `t` is observed at
/// `t + 1`, and a preamble dispatch at the epoch start is observed one
/// cycle later.
fn epoch_progress_at(
    activity: impl Iterator<Item = Option<u64>>,
    dispatched: bool,
    start: Cycle,
) -> Option<Cycle> {
    let mut best: Option<u64> = if dispatched {
        Some(start.raw() + 1)
    } else {
        None
    };
    for seen in activity.flatten() {
        let at = seen + 1;
        best = Some(best.map_or(at, |b| b.max(at)));
    }
    best.map(Cycle::new)
}

/// The cheap fence of a hierarchy epoch: free ingress capacity, O(ports)
/// with an early exit. Congestion-bound workloads pin this below 2 on
/// most cycles, so the preamble checks it before paying the per-warp
/// completion scan of [`hier_epoch_limits`].
fn hier_headroom(chunks: &[impl DerefMut<Target = HierChunk>], params: &CoreParams) -> u64 {
    let mut headroom = u64::MAX;
    for g in chunks.iter() {
        for cp in &g.cores {
            // The request path: everything already queued plus one new
            // miss per cycle must fit the ingress buffer even if the
            // fabric drains nothing.
            let free = params
                .input_buffer_pkts
                .saturating_sub(cp.req_in.len())
                .saturating_sub(cp.core.l1_miss_queue_len());
            headroom = headroom.min(free as u64);
            if headroom < 2 {
                return headroom;
            }
        }
        for pp in &g.parts {
            // The response path: at most one injection per cycle.
            let free = params.input_buffer_pkts.saturating_sub(pp.resp_in.len());
            headroom = headroom.min(free as u64);
            if headroom < 2 {
                return headroom;
            }
        }
    }
    headroom
}

/// Computes the expensive machine-state fences for a hierarchy epoch
/// (per-warp completion and retirement distances); `headroom` comes from
/// [`hier_headroom`], already known to permit an epoch.
fn hier_epoch_limits(chunks: &[impl DerefMut<Target = HierChunk>], headroom: u64) -> EpochLimits {
    let mut limits = EpochLimits {
        headroom,
        completion: 1,
        retirement: u64::MAX,
    };
    for g in chunks.iter() {
        for cp in &g.cores {
            let bounds = cp.core.epoch_bounds();
            // Completion needs every warp finished and every outstanding
            // miss answered (at most one response per core per cycle),
            // so both are lower bounds on the distance to `is_done`.
            limits.completion = limits
                .completion
                .max(bounds.warp_finish)
                .max(cp.core.l1_outstanding_misses() as u64);
            limits.retirement = limits.retirement.min(bounds.cta_retirement);
        }
    }
    limits
}

/// Round preamble shared by the threaded and inline hierarchy engines:
/// faults → is_done → budget → deadline → watchdog → dispatch → chaos
/// (mirroring the serial loop's order exactly), then the epoch decision.
#[allow(clippy::too_many_arguments)]
fn hier_preamble(
    chunks: &mut [impl DerefMut<Target = HierChunk>],
    state: &mut HarnessState<'_>,
    parked: &mut Option<SimError>,
    deadline_check: &mut u64,
    max_cycles: u64,
    policy_cap: u64,
    panic_at: u64,
    params: &CoreParams,
) -> Round {
    if let Some(e) = parked.take() {
        return Round::Stop(Outcome::Fault(e));
    }
    if let Some(outcome) = fault_outcome(
        chunks
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.fault.clone().map(|f| (i, f))),
    ) {
        return Round::Stop(outcome);
    }
    let done = *state.next_cta >= state.program.grid_ctas() && chunks.iter().all(|g| g.is_idle());
    if done {
        return Round::Stop(Outcome::Done);
    }
    if state.now.raw() >= max_cycles {
        return Round::Stop(Outcome::Budget);
    }
    if let Some(budget) = state.deadline_seconds {
        // Watermark form of the serial engine's every-1024-stepped-cycles
        // wall check: epochs advance `stepped_cycles` in jumps, so check
        // at the first round at or past each multiple.
        if *state.stepped_cycles >= *deadline_check {
            *deadline_check = (*state.stepped_cycles / 1024 + 1) * 1024;
            if state.wall_start.elapsed_seconds() > budget {
                return Round::Stop(Outcome::Fault(SimError::DeadlineExceeded {
                    cycle: state.now.raw(),
                    budget_seconds: budget,
                }));
            }
        }
    }
    let mut watchdog_bound = u64::MAX;
    if state.watchdog.is_some() {
        let fp = hier_fingerprint(chunks, state);
        let now = *state.now;
        if let Some(wd) = state.watchdog.as_deref_mut() {
            if wd.observe(now, fp) {
                return Round::Stop(Outcome::Wedged);
            }
            // The serial engine would trip at exactly this cycle if the
            // fingerprint froze; never free-run past it.
            watchdog_bound = wd.last_progress_cycle().raw().saturating_add(wd.horizon());
        }
    }
    let grid = state.program.grid_ctas();
    let cta_before = *state.next_cta;
    dispatch_ctas(
        chunks
            .iter_mut()
            .flat_map(|g| g.cores.iter_mut().map(|cp| &mut cp.core)),
        state.program,
        state.next_cta,
    );
    let dispatched = *state.next_cta != cta_before;
    let dispatching = *state.next_cta < grid;
    let mut chaos_next = u64::MAX;
    if let Some(chaos) = state.chaos.as_deref_mut() {
        // Same injection point and same global port/partition order as the
        // serial step(), so the schedule lands on identical targets at
        // identical cycles.
        let mut req_ins: Vec<&mut IngressPort> = Vec::new();
        let mut resp_ins: Vec<&mut IngressPort> = Vec::new();
        let mut parts: Vec<&mut MemoryPartition> = Vec::new();
        for g in chunks.iter_mut() {
            let chunk = &mut **g;
            for cp in &mut chunk.cores {
                req_ins.push(&mut cp.req_in);
            }
            for pp in &mut chunk.parts {
                resp_ins.push(&mut pp.resp_in);
                parts.push(&mut pp.part);
            }
        }
        chaos.apply(*state.now, &mut req_ins, &mut resp_ins, &mut parts);
        // After apply, every stream's next fire is strictly past `now`;
        // the epoch must end before the machine can be mutated again.
        chaos_next = chaos.next_chaos_fire();
    }
    // Two-stage clamp: the cheap fences (headroom, policy, budget, chaos,
    // watchdog) rule out an epoch on most congested cycles, and only when
    // they all permit one is the per-warp completion scan worth paying.
    // The final length is the same minimum either way — if the cheap pass
    // is already below 2 the full pass could only be smaller, and both
    // mean a legacy round.
    let headroom = hier_headroom(chunks, params);
    let cheap = EpochLimits {
        headroom,
        completion: u64::MAX,
        retirement: u64::MAX,
    };
    let clamp = |limits: &EpochLimits| {
        clamp_epoch(
            params.hop_latency,
            policy_cap,
            *state.now,
            max_cycles,
            dispatching,
            chaos_next,
            panic_at,
            watchdog_bound,
            limits,
        )
    };
    let mut len = clamp(&cheap);
    if len >= 2 {
        len = clamp(&hier_epoch_limits(chunks, headroom));
    }
    if len < 2 {
        Round::Legacy
    } else {
        Round::Epoch { len, dispatched }
    }
}

/// Ticks both fabrics for `now` over every port in global (chunk
/// concatenation) order.
fn tick_fabrics(
    chunks: &mut [impl DerefMut<Target = HierChunk>],
    req_xbar: &mut Crossbar,
    resp_xbar: &mut Crossbar,
    now: Cycle,
) -> Result<(), SimError> {
    let mut req_ins: Vec<&mut IngressPort> = Vec::new();
    let mut req_outs: Vec<&mut EgressPort> = Vec::new();
    let mut resp_ins: Vec<&mut IngressPort> = Vec::new();
    let mut resp_outs: Vec<&mut EgressPort> = Vec::new();
    for g in chunks.iter_mut() {
        let chunk = &mut **g;
        for cp in &mut chunk.cores {
            req_ins.push(&mut cp.req_in);
            resp_outs.push(&mut cp.resp_out);
        }
        for pp in &mut chunk.parts {
            req_outs.push(&mut pp.req_out);
            resp_ins.push(&mut pp.resp_in);
        }
    }
    req_xbar
        .fabric_mut()
        .tick(now, &mut req_ins, &mut req_outs)?;
    resp_xbar
        .fabric_mut()
        .tick(now, &mut resp_ins, &mut resp_outs)
}

/// Replays a free-run epoch against the real fabric, cycle by cycle in
/// the serial interleaving: per cycle, partitions (in global order)
/// return their recorded request-egress credits and commit their
/// buffered response injections, both fabrics tick, cores (in global
/// order) commit their buffered request injections and return their
/// recorded response-egress credits, and every ingress port closes its
/// statistics window. Landing schedules are always restored; a typed
/// fault is returned for the caller to park (the clock must not advance).
fn replay_epoch(
    chunks: &mut [impl DerefMut<Target = HierChunk>],
    req_xbar: &mut Crossbar,
    resp_xbar: &mut Crossbar,
    start: Cycle,
    len: u64,
) -> Option<SimError> {
    // The free-run's pops inflated the credit counts out of order; replay
    // them from the epoch-start baseline at their recorded cycles.
    for g in chunks.iter_mut() {
        for cp in &mut g.cores {
            let baseline = cp.credits0;
            cp.resp_out.set_credits(baseline);
        }
        for pp in &mut g.parts {
            let baseline = pp.credits0;
            pp.req_out.set_credits(baseline);
        }
    }
    let mut fault: Option<SimError> = None;
    'cycles: for k in 0..len {
        let now = start + k;
        for g in chunks.iter_mut() {
            for pp in &mut g.parts {
                if pp.pops.front() == Some(&now.raw()) {
                    pp.pops.pop_front();
                    let credits = pp.req_out.credits();
                    pp.req_out.set_credits(credits + 1);
                }
                while let Some((at, pkt)) = pp.mailbox.pop_front() {
                    if at != now.raw() {
                        pp.mailbox.push_front((at, pkt));
                        break;
                    }
                    if pp.resp_in.try_inject(pkt).is_err() {
                        // Unreachable: the headroom fence sized the epoch
                        // so the port cannot fill. Surface a typed error
                        // rather than corrupting state.
                        fault = Some(SimError::PortProtocol {
                            component: "l2_partition",
                            cycle: now.raw(),
                            detail: "response crossbar rejected an injection after can_inject"
                                .to_owned(),
                        });
                        break 'cycles;
                    }
                }
            }
        }
        if let Err(e) = tick_fabrics(chunks, req_xbar, resp_xbar, now) {
            fault = Some(e);
            break 'cycles;
        }
        for g in chunks.iter_mut() {
            for cp in &mut g.cores {
                while let Some((at, pkt)) = cp.mailbox.pop_front() {
                    if at != now.raw() {
                        cp.mailbox.push_front((at, pkt));
                        break;
                    }
                    if cp.req_in.try_inject(pkt).is_err() {
                        fault = Some(SimError::PortProtocol {
                            component: "core",
                            cycle: now.raw(),
                            detail: "request crossbar rejected an injection after can_inject"
                                .to_owned(),
                        });
                        break 'cycles;
                    }
                }
                if cp.pops.front() == Some(&now.raw()) {
                    cp.pops.pop_front();
                    let credits = cp.resp_out.credits();
                    cp.resp_out.set_credits(credits + 1);
                }
            }
        }
        for g in chunks.iter_mut() {
            for cp in &mut g.cores {
                cp.req_in.observe();
            }
            for pp in &mut g.parts {
                pp.resp_in.observe();
            }
        }
    }
    for g in chunks.iter_mut() {
        g.restore_epoch_landings();
        if fault.is_some() {
            g.discard_epoch_buffers();
        } else {
            debug_assert!(g
                .cores
                .iter()
                .all(|cp| cp.pops.is_empty() && cp.mailbox.is_empty()));
            debug_assert!(g
                .parts
                .iter()
                .all(|pp| pp.pops.is_empty() && pp.mailbox.is_empty()));
        }
    }
    fault
}

/// Closes a successfully replayed hierarchy epoch: watchdog epoch
/// observation (with serial-exact progress attribution), clock and
/// statistics advance.
fn finish_hier_epoch(
    chunks: &mut [impl DerefMut<Target = HierChunk>],
    state: &mut HarnessState<'_>,
    start: Cycle,
    len: u64,
    dispatched: bool,
    stats: &mut EpochStats,
) {
    let end = start + len;
    if state.watchdog.is_some() {
        let fp = hier_fingerprint(chunks, state);
        let progress = epoch_progress_at(chunks.iter().map(|g| g.last_activity), dispatched, start);
        if let Some(wd) = state.watchdog.as_deref_mut() {
            wd.observe_epoch(end, fp, progress);
        }
    }
    *state.stepped_cycles += len;
    *state.now = end;
    stats.record(len);
}

/// The crossbar port vectors of a reassembled machine, in global order,
/// ready for `restore_ports` (which the engine functions call themselves
/// so every `take_ports` pairs with its restore in one body).
type HierPorts = (
    Vec<IngressPort>,
    Vec<EgressPort>,
    Vec<IngressPort>,
    Vec<EgressPort>,
);

/// Reassembles cores, partitions and counters from hierarchy chunks and
/// returns the port vectors. Chunk order is global order by construction,
/// so a straight concatenation restores every index.
fn reassemble_hierarchy(
    chunks: impl IntoIterator<Item = HierChunk>,
    cores: &mut Vec<SimtCore>,
    partitions: &mut Vec<MemoryPartition>,
    state: &mut HarnessState<'_>,
) -> HierPorts {
    let mut req_ins = Vec::new();
    let mut req_outs = Vec::new();
    let mut resp_ins = Vec::new();
    let mut resp_outs = Vec::new();
    for chunk in chunks {
        for cp in chunk.cores {
            cores.push(cp.core);
            req_ins.push(cp.req_in);
            resp_outs.push(cp.resp_out);
        }
        for pp in chunk.parts {
            partitions.push(pp.part);
            req_outs.push(pp.req_out);
            resp_ins.push(pp.resp_in);
        }
        *state.responses_delivered += chunk.delivered;
        *state.requests_injected += chunk.injected;
    }
    (req_ins, req_outs, resp_ins, resp_outs)
}

#[allow(clippy::too_many_arguments)]
fn run_hierarchy(
    cores: &mut Vec<SimtCore>,
    partitions: &mut Vec<MemoryPartition>,
    req_xbar: &mut Crossbar,
    resp_xbar: &mut Crossbar,
    params: CoreParams,
    mut state: HarnessState<'_>,
    max_cycles: u64,
    threads: usize,
    policy_cap: u64,
    stats: &mut EpochStats,
) -> Outcome {
    let num_cores = cores.len();
    let num_parts = partitions.len();
    let core_ranges = split_ranges(num_cores, threads);
    let part_ranges = split_ranges(num_parts, threads);

    // Dismantle the machine into per-worker chunks; chunk order
    // concatenates to global port order.
    let (req_ins, req_outs) = req_xbar.take_ports();
    let (resp_ins, resp_outs) = resp_xbar.take_ports();
    let mut core_src = cores.drain(..).zip(req_ins).zip(resp_outs);
    let mut part_src = partitions.drain(..).zip(req_outs).zip(resp_ins);
    let chunks: Vec<Mutex<HierChunk>> = (0..threads)
        .map(|i| {
            let (c_lo, c_hi) = core_ranges[i];
            let (p_lo, p_hi) = part_ranges[i];
            Mutex::new(HierChunk {
                cores: (&mut core_src)
                    .take(c_hi - c_lo)
                    .map(|((core, req_in), resp_out)| CorePack::new(core, req_in, resp_out))
                    .collect(),
                parts: (&mut part_src)
                    .take(p_hi - p_lo)
                    .map(|((part, req_out), resp_in)| {
                        PartPack::new(part, req_out, resp_in, &params)
                    })
                    .collect(),
                delivered: 0,
                injected: 0,
                fault: None,
                last_activity: None,
            })
        })
        .collect();
    debug_assert!(core_src.next().is_none() && part_src.next().is_none());
    drop(core_src);
    drop(part_src);

    let barrier = SpinBarrier::new(threads + 1);
    let exit = AtomicBool::new(false);
    let now_cell = AtomicU64::new(state.now.raw());
    // The round command: 0 = legacy per-cycle round, >= 2 = epoch length.
    let epoch_cell = AtomicU64::new(0);
    // One "this worker died" flag per chunk, outside the chunk mutex so the
    // coordinator can poll it without locking.
    let dead: Vec<AtomicBool> = (0..threads).map(|_| AtomicBool::new(false)).collect();
    // The seeded worker-death fixture, if configured (chunk 0 only).
    let panic_at: u64 = state
        .chaos
        .as_deref()
        .and_then(ChaosEngine::worker_panic_at)
        .unwrap_or(u64::MAX);

    let outcome = std::thread::scope(|s| {
        for (idx, chunk) in chunks.iter().enumerate() {
            let barrier = &barrier;
            let exit = &exit;
            let now_cell = &now_cell;
            let epoch_cell = &epoch_cell;
            let my_dead = &dead[idx];
            s.spawn(move || loop {
                barrier.wait(); // 1: round start (or shutdown)
                if exit.load(Ordering::Acquire) {
                    break;
                }
                let now = Cycle::new(now_cell.load(Ordering::Acquire));
                if idx == 0 && now.raw() >= panic_at && !my_dead.load(Ordering::Acquire) {
                    // Simulated worker death at the shard boundary: this
                    // round's state is untouched, so the coordinator can
                    // replay both phases and degrade gracefully. The epoch
                    // clamp guarantees this only fires in a legacy round.
                    my_dead.store(true, Ordering::Release);
                    lock(chunk).fault = Some(ChunkFault::Injected { cycle: now.raw() });
                }
                let epoch = epoch_cell.load(Ordering::Acquire);
                if epoch >= 2 {
                    if !my_dead.load(Ordering::Acquire) {
                        match catch_unwind(AssertUnwindSafe(|| {
                            lock(chunk).run_epoch(now, epoch, &params)
                        })) {
                            Ok(Ok(())) => {}
                            Ok(Err(e)) => {
                                my_dead.store(true, Ordering::Release);
                                lock(chunk).fault = Some(ChunkFault::Error(e));
                            }
                            Err(payload) => {
                                my_dead.store(true, Ordering::Release);
                                lock(chunk).fault = Some(ChunkFault::Panic {
                                    cycle: now.raw(),
                                    message: panic_message(payload.as_ref()),
                                });
                            }
                        }
                    }
                    barrier.wait(); // 2: free-run complete → replay
                    continue;
                }
                if !my_dead.load(Ordering::Acquire) {
                    match catch_unwind(AssertUnwindSafe(|| lock(chunk).phase_partitions(now))) {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => {
                            my_dead.store(true, Ordering::Release);
                            lock(chunk).fault = Some(ChunkFault::Error(e));
                        }
                        Err(payload) => {
                            my_dead.store(true, Ordering::Release);
                            lock(chunk).fault = Some(ChunkFault::Panic {
                                cycle: now.raw(),
                                message: panic_message(payload.as_ref()),
                            });
                        }
                    }
                }
                barrier.wait(); // 2: partitions done → fabric may tick
                barrier.wait(); // 3: fabric done → cores may run
                if !my_dead.load(Ordering::Acquire) {
                    match catch_unwind(AssertUnwindSafe(|| lock(chunk).phase_cores(now, &params))) {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => {
                            my_dead.store(true, Ordering::Release);
                            lock(chunk).fault = Some(ChunkFault::Error(e));
                        }
                        Err(payload) => {
                            my_dead.store(true, Ordering::Release);
                            lock(chunk).fault = Some(ChunkFault::Panic {
                                cycle: now.raw(),
                                message: panic_message(payload.as_ref()),
                            });
                        }
                    }
                }
                barrier.wait(); // 4: cycle closed
            });
        }

        // Coordinator loop (this thread). Workers are parked at a barrier
        // whenever it locks chunks, so the locks never contend.
        let mut coordinator_fault: Option<SimError> = None;
        let mut deadline_check = 0u64;
        let outcome = loop {
            let round = {
                let mut guards: Vec<_> = chunks.iter().map(lock).collect();
                let round = hier_preamble(
                    &mut guards,
                    &mut state,
                    &mut coordinator_fault,
                    &mut deadline_check,
                    max_cycles,
                    policy_cap,
                    panic_at,
                    &params,
                );
                if let Round::Epoch { len, .. } = round {
                    let until = *state.now + len;
                    for g in guards.iter_mut() {
                        g.prepare_epoch(until);
                    }
                }
                round
            };
            let now = *state.now;
            match round {
                Round::Stop(outcome) => {
                    exit.store(true, Ordering::Release);
                    break outcome;
                }
                Round::Legacy => {
                    now_cell.store(now.raw(), Ordering::Release);
                    epoch_cell.store(0, Ordering::Release);
                    barrier.wait(); // 1
                    barrier.wait(); // 2: partition phase complete
                    {
                        let mut guards: Vec<_> = chunks.iter().map(lock).collect();
                        // Replay the partition phase of freshly-dead chunks
                        // whose fault struck before the phase ran (injected
                        // faults only; organic faults abort at the next
                        // round start anyway).
                        for (i, g) in guards.iter_mut().enumerate() {
                            if dead[i].load(Ordering::Acquire)
                                && matches!(g.fault, Some(ChunkFault::Injected { .. }))
                            {
                                if let Err(e) = g.phase_partitions(now) {
                                    g.fault = Some(ChunkFault::Error(e));
                                }
                            }
                        }
                        // No `?` here: the ports are dismantled, so a typed
                        // error is parked and surfaced at the next round
                        // start.
                        if let Err(e) = tick_fabrics(&mut guards, req_xbar, resp_xbar, now) {
                            coordinator_fault = Some(e);
                        }
                    }
                    barrier.wait(); // 3
                    barrier.wait(); // 4: core phase complete
                    if dead.iter().any(|d| d.load(Ordering::Acquire)) {
                        let mut guards: Vec<_> = chunks.iter().map(lock).collect();
                        for (i, g) in guards.iter_mut().enumerate() {
                            if dead[i].load(Ordering::Acquire)
                                && matches!(g.fault, Some(ChunkFault::Injected { .. }))
                            {
                                if let Err(e) = g.phase_cores(now, &params) {
                                    g.fault = Some(ChunkFault::Error(e));
                                }
                            }
                        }
                    }
                    *state.stepped_cycles += 1;
                    *state.now = now.next();
                }
                Round::Epoch { len, dispatched } => {
                    now_cell.store(now.raw(), Ordering::Release);
                    epoch_cell.store(len, Ordering::Release);
                    barrier.wait(); // 1
                    barrier.wait(); // 2: free-run complete
                    let mut guards: Vec<_> = chunks.iter().map(lock).collect();
                    if dead.iter().any(|d| d.load(Ordering::Acquire)) {
                        // A fault tore mid-epoch state: roll back what can
                        // be rolled back and abort at the next round start
                        // without advancing the clock.
                        for g in guards.iter_mut() {
                            g.restore_epoch_landings();
                            g.discard_epoch_buffers();
                        }
                    } else if let Some(e) = replay_epoch(&mut guards, req_xbar, resp_xbar, now, len)
                    {
                        coordinator_fault = Some(e);
                    } else {
                        finish_hier_epoch(&mut guards, &mut state, now, len, dispatched, stats);
                    }
                }
            }
        };
        barrier.wait(); // release workers into the shutdown branch
        outcome
    });

    let (req_ins, req_outs, resp_ins, resp_outs) = reassemble_hierarchy(
        chunks
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner)),
        cores,
        partitions,
        &mut state,
    );
    req_xbar.restore_ports(req_ins, req_outs);
    resp_xbar.restore_ports(resp_ins, resp_outs);
    outcome
}

/// One legacy cycle on the inline engine: the same partitions → fabric →
/// cores order as the threaded choreography, without the barriers.
fn inline_legacy_cycle(
    chunk: &mut HierChunk,
    req_xbar: &mut Crossbar,
    resp_xbar: &mut Crossbar,
    now: Cycle,
    params: &CoreParams,
) -> Result<(), SimError> {
    chunk.phase_partitions(now)?;
    tick_fabrics(&mut [&mut *chunk], req_xbar, resp_xbar, now)?;
    chunk.phase_cores(now, params)
}

/// The single-thread hierarchy engine: the whole machine is one chunk on
/// the calling thread — no spin barrier, no mutex, no `catch_unwind`, and
/// the [`ChaosConfig::worker_panic_at`] fixture is ignored (there is no
/// worker to kill). Epoch logic is shared with the threaded engine, so
/// reports stay bit-identical to `run_stepped` while synchronization
/// overhead drops to zero.
#[allow(clippy::too_many_arguments)]
fn run_hierarchy_inline(
    cores: &mut Vec<SimtCore>,
    partitions: &mut Vec<MemoryPartition>,
    req_xbar: &mut Crossbar,
    resp_xbar: &mut Crossbar,
    params: CoreParams,
    mut state: HarnessState<'_>,
    max_cycles: u64,
    policy_cap: u64,
    stats: &mut EpochStats,
) -> Outcome {
    let (req_ins, req_outs) = req_xbar.take_ports();
    let (resp_ins, resp_outs) = resp_xbar.take_ports();
    let mut chunk = HierChunk {
        cores: cores
            .drain(..)
            .zip(req_ins)
            .zip(resp_outs)
            .map(|((core, req_in), resp_out)| CorePack::new(core, req_in, resp_out))
            .collect(),
        parts: partitions
            .drain(..)
            .zip(req_outs)
            .zip(resp_ins)
            .map(|((part, req_out), resp_in)| PartPack::new(part, req_out, resp_in, &params))
            .collect(),
        delivered: 0,
        injected: 0,
        fault: None,
        last_activity: None,
    };
    let mut parked: Option<SimError> = None;
    let mut deadline_check = 0u64;
    let outcome = loop {
        let round = {
            let mut view = [&mut chunk];
            let round = hier_preamble(
                &mut view,
                &mut state,
                &mut parked,
                &mut deadline_check,
                max_cycles,
                policy_cap,
                u64::MAX,
                &params,
            );
            if let Round::Epoch { len, .. } = round {
                view[0].prepare_epoch(*state.now + len);
            }
            round
        };
        let now = *state.now;
        match round {
            Round::Stop(outcome) => break outcome,
            Round::Legacy => {
                if let Err(e) = inline_legacy_cycle(&mut chunk, req_xbar, resp_xbar, now, &params) {
                    break Outcome::Fault(e);
                }
                *state.stepped_cycles += 1;
                *state.now = now.next();
            }
            Round::Epoch { len, dispatched } => {
                if let Err(e) = chunk.run_epoch(now, len, &params) {
                    chunk.restore_epoch_landings();
                    chunk.discard_epoch_buffers();
                    break Outcome::Fault(e);
                }
                let mut view = [&mut chunk];
                if let Some(e) = replay_epoch(&mut view, req_xbar, resp_xbar, now, len) {
                    break Outcome::Fault(e);
                }
                finish_hier_epoch(&mut view, &mut state, now, len, dispatched, stats);
            }
        }
    };
    let (req_ins, req_outs, resp_ins, resp_outs) =
        reassemble_hierarchy(std::iter::once(chunk), cores, partitions, &mut state);
    req_xbar.restore_ports(req_ins, req_outs);
    resp_xbar.restore_ports(resp_ins, resp_outs);
    outcome
}

/// The watchdog fingerprint in fixed-latency mode (delivered/injected
/// counters live in the globals, updated by the coordinator).
fn fixed_fingerprint(
    chunks: &[impl DerefMut<Target = FixedChunk>],
    state: &HarnessState<'_>,
) -> ProgressFingerprint {
    let instructions: u64 = chunks
        .iter()
        .flat_map(|g| g.cores.iter())
        .map(|fp| fp.core.stats().instructions)
        .sum();
    (
        instructions,
        *state.responses_delivered,
        *state.requests_injected,
        *state.next_cta,
    )
}

/// Round preamble shared by the threaded and inline fixed-latency
/// engines. The epoch base is the memory latency: the heap cannot answer
/// a request submitted inside the epoch before the epoch ends, so the
/// pre-drained inbox schedule is complete.
fn fixed_preamble(
    chunks: &mut [impl DerefMut<Target = FixedChunk>],
    mem: &FixedLatencyMemory,
    state: &mut HarnessState<'_>,
    deadline_check: &mut u64,
    max_cycles: u64,
    policy_cap: u64,
) -> Round {
    if let Some(outcome) = fault_outcome(
        chunks
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.fault.clone().map(|f| (i, f))),
    ) {
        return Round::Stop(outcome);
    }
    let done = *state.next_cta >= state.program.grid_ctas()
        && chunks.iter().all(|g| g.is_idle())
        && mem.is_idle();
    if done {
        return Round::Stop(Outcome::Done);
    }
    if state.now.raw() >= max_cycles {
        return Round::Stop(Outcome::Budget);
    }
    if let Some(budget) = state.deadline_seconds {
        if *state.stepped_cycles >= *deadline_check {
            *deadline_check = (*state.stepped_cycles / 1024 + 1) * 1024;
            if state.wall_start.elapsed_seconds() > budget {
                return Round::Stop(Outcome::Fault(SimError::DeadlineExceeded {
                    cycle: state.now.raw(),
                    budget_seconds: budget,
                }));
            }
        }
    }
    let mut watchdog_bound = u64::MAX;
    if state.watchdog.is_some() {
        let fp = fixed_fingerprint(chunks, state);
        let now = *state.now;
        if let Some(wd) = state.watchdog.as_deref_mut() {
            if wd.observe(now, fp) {
                return Round::Stop(Outcome::Wedged);
            }
            watchdog_bound = wd.last_progress_cycle().raw().saturating_add(wd.horizon());
        }
    }
    let grid = state.program.grid_ctas();
    let cta_before = *state.next_cta;
    dispatch_ctas(
        chunks
            .iter_mut()
            .flat_map(|g| g.cores.iter_mut().map(|fp| &mut fp.core)),
        state.program,
        state.next_cta,
    );
    let dispatched = *state.next_cta != cta_before;
    let dispatching = *state.next_cta < grid;
    // The done check at a cycle can only pass once the heap is empty, so
    // the earliest pending due cycle bounds the completion distance; the
    // per-core epoch bounds cover the compute side.
    let heap_bound = mem
        .next_event(*state.now)
        .map_or(0, |due| due.since(*state.now) + 1);
    let mut completion = 1u64.max(heap_bound);
    let mut retirement = u64::MAX;
    for g in chunks.iter() {
        for fp in &g.cores {
            let bounds = fp.core.epoch_bounds();
            completion = completion.max(bounds.warp_finish);
            retirement = retirement.min(bounds.cta_retirement);
        }
    }
    let limits = EpochLimits {
        headroom: u64::MAX,
        completion,
        retirement,
    };
    let len = clamp_epoch(
        mem.latency(),
        policy_cap,
        *state.now,
        max_cycles,
        dispatching,
        u64::MAX,
        u64::MAX,
        watchdog_bound,
        &limits,
    );
    if len < 2 {
        Round::Legacy
    } else {
        Round::Epoch { len, dispatched }
    }
}

/// Closes a fixed-latency epoch: watchdog epoch observation, clock and
/// statistics advance.
fn finish_fixed_epoch(
    chunks: &mut [impl DerefMut<Target = FixedChunk>],
    state: &mut HarnessState<'_>,
    start: Cycle,
    len: u64,
    dispatched: bool,
    stats: &mut EpochStats,
) {
    let end = start + len;
    if state.watchdog.is_some() {
        let fp = fixed_fingerprint(chunks, state);
        let progress = epoch_progress_at(chunks.iter().map(|g| g.last_activity), dispatched, start);
        if let Some(wd) = state.watchdog.as_deref_mut() {
            wd.observe_epoch(end, fp, progress);
        }
    }
    *state.stepped_cycles += len;
    *state.now = end;
    stats.record(len);
}

fn run_fixed(
    cores: &mut Vec<SimtCore>,
    mem: &mut FixedLatencyMemory,
    mut state: HarnessState<'_>,
    max_cycles: u64,
    threads: usize,
    policy_cap: u64,
    stats: &mut EpochStats,
) -> Outcome {
    let num_cores = cores.len();
    let core_ranges = split_ranges(num_cores, threads);
    // core index → (chunk, index within chunk), for inbox routing.
    let locate: Vec<(usize, usize)> = core_ranges
        .iter()
        .enumerate()
        .flat_map(|(chunk, &(lo, hi))| (lo..hi).map(move |c| (chunk, c - lo)))
        .collect();

    let mut core_src = cores.drain(..);
    let chunks: Vec<Mutex<FixedChunk>> = core_ranges
        .iter()
        .map(|&(lo, hi)| {
            Mutex::new(FixedChunk {
                cores: (&mut core_src).take(hi - lo).map(FixedPack::new).collect(),
                fault: None,
                last_activity: None,
            })
        })
        .collect();
    debug_assert!(core_src.next().is_none());
    drop(core_src);

    let barrier = SpinBarrier::new(threads + 1);
    let exit = AtomicBool::new(false);
    let now_cell = AtomicU64::new(state.now.raw());
    let epoch_cell = AtomicU64::new(0);
    let dead: Vec<AtomicBool> = (0..threads).map(|_| AtomicBool::new(false)).collect();

    let outcome = std::thread::scope(|s| {
        for (idx, chunk) in chunks.iter().enumerate() {
            let barrier = &barrier;
            let exit = &exit;
            let now_cell = &now_cell;
            let epoch_cell = &epoch_cell;
            let my_dead = &dead[idx];
            s.spawn(move || loop {
                barrier.wait(); // 1: round start (or shutdown)
                if exit.load(Ordering::Acquire) {
                    break;
                }
                let now = Cycle::new(now_cell.load(Ordering::Acquire));
                let epoch = epoch_cell.load(Ordering::Acquire);
                if !my_dead.load(Ordering::Acquire) {
                    let phase = catch_unwind(AssertUnwindSafe(|| {
                        let mut g = lock(chunk);
                        if epoch >= 2 {
                            g.run_epoch(now, epoch);
                        } else {
                            g.phase(now);
                        }
                    }));
                    if let Err(payload) = phase {
                        my_dead.store(true, Ordering::Release);
                        lock(chunk).fault = Some(ChunkFault::Panic {
                            cycle: now.raw(),
                            message: panic_message(payload.as_ref()),
                        });
                    }
                }
                barrier.wait(); // 2: round closed
            });
        }

        let mut deadline_check = 0u64;
        let outcome = loop {
            let round = {
                let mut guards: Vec<_> = chunks.iter().map(lock).collect();
                let round = fixed_preamble(
                    &mut guards,
                    mem,
                    &mut state,
                    &mut deadline_check,
                    max_cycles,
                    policy_cap,
                );
                // Route responses to their cores' inboxes. The backend
                // pops in (due, seq) order, so each inbox receives its
                // core's responses in exactly the serial order; epochs
                // pre-drain the whole window, stamping due cycles for the
                // free-run to honour.
                match round {
                    Round::Legacy => {
                        let now = *state.now;
                        while let Some(fetch) = mem.pop_due(now) {
                            let (chunk, local) = locate[fetch.core.index()];
                            guards[chunk].cores[local]
                                .inbox
                                .push_back((now.raw(), fetch));
                            *state.responses_delivered += 1;
                        }
                    }
                    Round::Epoch { len, .. } => {
                        let last = *state.now + (len - 1);
                        while let Some((due, fetch)) = mem.pop_due_at(last) {
                            let (chunk, local) = locate[fetch.core.index()];
                            guards[chunk].cores[local]
                                .inbox
                                .push_back((due.raw(), fetch));
                            *state.responses_delivered += 1;
                        }
                        for g in guards.iter_mut() {
                            g.last_activity = None;
                        }
                    }
                    Round::Stop(_) => {}
                }
                round
            };
            let now = *state.now;
            match round {
                Round::Stop(outcome) => {
                    exit.store(true, Ordering::Release);
                    break outcome;
                }
                Round::Legacy => {
                    now_cell.store(now.raw(), Ordering::Release);
                    epoch_cell.store(0, Ordering::Release);
                    barrier.wait(); // 1
                    barrier.wait(); // 2: core phase complete
                    {
                        // Submit buffered requests in core index order: the
                        // backend stamps arrival sequence numbers, and this
                        // order is exactly the serial engine's.
                        let mut guards: Vec<_> = chunks.iter().map(lock).collect();
                        for g in guards.iter_mut() {
                            for fp in &mut g.cores {
                                for (_, fetch) in fp.outbox.drain(..) {
                                    *state.requests_injected += 1;
                                    mem.submit(fetch, now);
                                }
                            }
                        }
                    }
                    *state.stepped_cycles += 1;
                    *state.now = now.next();
                }
                Round::Epoch { len, dispatched } => {
                    now_cell.store(now.raw(), Ordering::Release);
                    epoch_cell.store(len, Ordering::Release);
                    barrier.wait(); // 1
                    barrier.wait(); // 2: free-run complete
                    let mut guards: Vec<_> = chunks.iter().map(lock).collect();
                    if dead.iter().any(|d| d.load(Ordering::Acquire)) {
                        // Organic fault mid-epoch: drop the buffers and
                        // abort at the next round start without advancing.
                        for g in guards.iter_mut() {
                            for fp in &mut g.cores {
                                fp.inbox.clear();
                                fp.outbox.clear();
                            }
                        }
                    } else {
                        // Replay submissions in cycle-then-core order: the
                        // backend's sequence numbers match the serial
                        // engine's exactly.
                        for k in 0..len {
                            let t = now + k;
                            for g in guards.iter_mut() {
                                for fp in &mut g.cores {
                                    while let Some((at, fetch)) = fp.outbox.pop_front() {
                                        if at != t.raw() {
                                            fp.outbox.push_front((at, fetch));
                                            break;
                                        }
                                        *state.requests_injected += 1;
                                        mem.submit(fetch, t);
                                    }
                                }
                            }
                        }
                        finish_fixed_epoch(&mut guards, &mut state, now, len, dispatched, stats);
                    }
                }
            }
        };
        barrier.wait(); // release workers into the shutdown branch
        outcome
    });

    for chunk in chunks {
        let chunk = chunk.into_inner().unwrap_or_else(PoisonError::into_inner);
        for fp in chunk.cores {
            cores.push(fp.core);
        }
    }
    outcome
}

/// The single-thread fixed-latency engine: one chunk, no barriers, no
/// mutexes; identical epoch logic to the threaded engine.
fn run_fixed_inline(
    cores: &mut Vec<SimtCore>,
    mem: &mut FixedLatencyMemory,
    mut state: HarnessState<'_>,
    max_cycles: u64,
    policy_cap: u64,
    stats: &mut EpochStats,
) -> Outcome {
    let mut chunk = FixedChunk {
        cores: cores.drain(..).map(FixedPack::new).collect(),
        fault: None,
        last_activity: None,
    };
    let mut deadline_check = 0u64;
    let outcome = loop {
        let round = {
            let mut view = [&mut chunk];
            fixed_preamble(
                &mut view,
                mem,
                &mut state,
                &mut deadline_check,
                max_cycles,
                policy_cap,
            )
        };
        let now = *state.now;
        match round {
            Round::Stop(outcome) => break outcome,
            Round::Legacy => {
                while let Some(fetch) = mem.pop_due(now) {
                    chunk.cores[fetch.core.index()]
                        .inbox
                        .push_back((now.raw(), fetch));
                    *state.responses_delivered += 1;
                }
                chunk.phase(now);
                for fp in &mut chunk.cores {
                    for (_, fetch) in fp.outbox.drain(..) {
                        *state.requests_injected += 1;
                        mem.submit(fetch, now);
                    }
                }
                *state.stepped_cycles += 1;
                *state.now = now.next();
            }
            Round::Epoch { len, dispatched } => {
                chunk.last_activity = None;
                let last = now + (len - 1);
                while let Some((due, fetch)) = mem.pop_due_at(last) {
                    chunk.cores[fetch.core.index()]
                        .inbox
                        .push_back((due.raw(), fetch));
                    *state.responses_delivered += 1;
                }
                chunk.run_epoch(now, len);
                for k in 0..len {
                    let t = now + k;
                    for fp in &mut chunk.cores {
                        while let Some((at, fetch)) = fp.outbox.pop_front() {
                            if at != t.raw() {
                                fp.outbox.push_front((at, fetch));
                                break;
                            }
                            *state.requests_injected += 1;
                            mem.submit(fetch, t);
                        }
                    }
                }
                finish_fixed_epoch(&mut [&mut chunk], &mut state, now, len, dispatched, stats);
            }
        }
    };
    for fp in chunk.cores {
        cores.push(fp.core);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_cover_contiguously() {
        for n in 0..20 {
            for chunks in 1..8 {
                let r = split_ranges(n, chunks);
                assert_eq!(r.len(), chunks);
                assert_eq!(r[0].0, 0);
                assert_eq!(r[chunks - 1].1, n);
                for w in r.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }

    #[test]
    fn spin_barrier_synchronizes_rounds() {
        let barrier = SpinBarrier::new(4);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for round in 1..=50 {
                        counter.fetch_add(1, Ordering::AcqRel);
                        barrier.wait();
                        // Between barriers every thread observes the full
                        // round's worth of increments.
                        assert!(counter.load(Ordering::Acquire) >= round * 4);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Acquire), 200);
    }

    #[test]
    fn clamp_epoch_honours_every_fence() {
        let limits = EpochLimits {
            headroom: 10,
            completion: 9,
            retirement: 7,
        };
        let wide = u64::MAX;
        let at = Cycle::new(100);
        // Unfenced: the cross-shard base wins.
        assert_eq!(
            clamp_epoch(6, wide, at, 1000, false, wide, wide, wide, &limits),
            6
        );
        // The policy cap wins when tighter.
        assert_eq!(
            clamp_epoch(6, 3, at, 1000, false, wide, wide, wide, &limits),
            3
        );
        // Cycle budget fence.
        assert_eq!(
            clamp_epoch(
                6,
                wide,
                Cycle::new(996),
                1000,
                false,
                wide,
                wide,
                wide,
                &limits
            ),
            4
        );
        // Chaos schedule fence.
        assert_eq!(
            clamp_epoch(6, wide, at, 1000, false, 103, wide, wide, &limits),
            3
        );
        // Injected worker-panic fence.
        assert_eq!(
            clamp_epoch(6, wide, at, 1000, false, wide, 102, wide, &limits),
            2
        );
        // Watchdog horizon fence.
        assert_eq!(
            clamp_epoch(6, wide, at, 1000, false, wide, wide, 101, &limits),
            1
        );
        // Completion fence binds whenever it is the minimum.
        assert_eq!(
            clamp_epoch(20, wide, at, 1000, false, wide, wide, wide, &limits),
            9
        );
        // Retirement binds only while CTAs remain to dispatch.
        assert_eq!(
            clamp_epoch(20, wide, at, 1000, true, wide, wide, wide, &limits),
            7
        );
        // Headroom fence.
        let tight = EpochLimits {
            headroom: 5,
            completion: 9,
            retirement: 7,
        };
        assert_eq!(
            clamp_epoch(20, wide, at, 1000, false, wide, wide, wide, &tight),
            5
        );
        // An expired fence collapses to zero, not underflow.
        assert_eq!(
            clamp_epoch(6, wide, at, 100, false, wide, wide, wide, &limits),
            0
        );
    }

    use std::sync::Arc;

    use gpumem_config::GpuConfig;
    use gpumem_types::{CtaId, LineAddr};

    use crate::chaos::ChaosConfig;
    use crate::gpu::MemoryMode;
    use crate::{GpuSimulator, SimReport};
    use gpumem_simt::{KernelProgram, WarpInstr};

    /// A memory-heavy kernel with an exact instruction-count hint, so the
    /// retirement fence permits epochs even while CTAs are dispatching.
    struct EpochStream;

    const STREAM_INSTRS: u32 = 8;

    impl KernelProgram for EpochStream {
        fn name(&self) -> &str {
            "epoch-stream"
        }
        fn grid_ctas(&self) -> u32 {
            12
        }
        fn warps_per_cta(&self) -> u32 {
            2
        }
        fn warp_instr_count(&self, _cta: CtaId, _warp: u32) -> Option<u32> {
            Some(STREAM_INSTRS)
        }
        fn instr(&self, cta: CtaId, warp: u32, pc: u32) -> Option<WarpInstr> {
            if pc >= STREAM_INSTRS {
                return None;
            }
            let g = u64::from(cta.index() as u32 * 2 + warp);
            match pc % 4 {
                0 => Some(WarpInstr::load_line(
                    LineAddr::new((g * 67 + u64::from(pc) * 131) % 512),
                    1,
                )),
                1 => Some(WarpInstr::Alu { latency: 3 }),
                2 => Some(WarpInstr::Store {
                    lines: vec![LineAddr::new(1024 + (g * 41 + u64::from(pc)) % 512)],
                }),
                _ => Some(WarpInstr::Alu { latency: 1 }),
            }
        }
    }

    fn fresh(mode: MemoryMode) -> GpuSimulator {
        let mut sim = GpuSimulator::new(GpuConfig::tiny(), Arc::new(EpochStream), mode);
        sim.set_watchdog(Some(10_000));
        sim
    }

    /// [`SimReport`] has no `PartialEq`; compare serialized forms with the
    /// host-perf block (wall-clock, engine-specific) masked out.
    fn masked(mut report: SimReport) -> String {
        report.host = None;
        serde_json::to_string(&report).expect("report serializes")
    }

    #[test]
    fn epoch_engine_matches_serial_across_threads_and_policies() {
        let serial = masked(
            fresh(MemoryMode::Hierarchy)
                .run_stepped(200_000)
                .expect("serial run completes"),
        );
        for threads in [1, 2, 3] {
            for policy in [
                EpochPolicy::PerCycle,
                EpochPolicy::Fixed(2),
                EpochPolicy::Auto,
            ] {
                let report = fresh(MemoryMode::Hierarchy)
                    .run_parallel_with(200_000, threads, policy)
                    .expect("parallel run completes");
                assert_eq!(
                    masked(report),
                    serial,
                    "threads={threads} policy={policy:?} diverged from run_stepped"
                );
            }
        }
    }

    #[test]
    fn auto_policy_batches_cycles_and_respects_the_hop_fence() {
        let hop = GpuConfig::tiny().noc.hop_latency;
        let report = fresh(MemoryMode::Hierarchy)
            .run_parallel_with(200_000, 2, EpochPolicy::Auto)
            .expect("parallel run completes");
        let host = report.host.expect("parallel run reports host perf");
        let rounds = host.epoch_rounds.expect("epoch rounds recorded");
        let max_epoch = host.max_epoch.expect("max epoch recorded");
        assert!(
            rounds > 0,
            "auto policy never found a safe multi-cycle epoch"
        );
        assert!(
            max_epoch <= hop,
            "epoch {max_epoch} exceeded the cross-shard latency {hop}"
        );
    }

    #[test]
    fn chaos_schedules_clamp_epochs_and_preserve_bit_identity() {
        let hop = GpuConfig::tiny().noc.hop_latency;
        let serial = {
            let mut sim = fresh(MemoryMode::Hierarchy);
            sim.set_chaos(ChaosConfig::standard(7));
            masked(
                sim.run_stepped(200_000)
                    .expect("serial chaos run completes"),
            )
        };
        let mut sim = fresh(MemoryMode::Hierarchy);
        sim.set_chaos(ChaosConfig::standard(7));
        let report = sim
            .run_parallel_with(200_000, 2, EpochPolicy::Auto)
            .expect("parallel chaos run completes");
        let max_epoch = report
            .host
            .as_ref()
            .and_then(|h| h.max_epoch)
            .expect("max epoch recorded");
        assert!(
            max_epoch <= hop,
            "epoch {max_epoch} free-ran across a chaos fire (hop {hop})"
        );
        assert_eq!(
            masked(report),
            serial,
            "chaos run diverged from run_stepped"
        );
    }

    #[test]
    fn fixed_latency_epochs_match_serial() {
        let latency = 32;
        let serial = masked(
            fresh(MemoryMode::FixedLatency(latency))
                .run_stepped(200_000)
                .expect("serial run completes"),
        );
        for threads in [1, 2] {
            let report = fresh(MemoryMode::FixedLatency(latency))
                .run_parallel_with(200_000, threads, EpochPolicy::Auto)
                .expect("parallel run completes");
            let host = report.host.clone().expect("host perf present");
            assert!(
                host.epoch_rounds.expect("rounds recorded") > 0,
                "fixed-latency auto policy never batched"
            );
            assert!(host.max_epoch.expect("max epoch recorded") <= latency);
            assert_eq!(masked(report), serial, "threads={threads} diverged");
        }
    }

    #[test]
    fn per_cycle_policy_degenerates_to_the_legacy_engine() {
        let report = fresh(MemoryMode::Hierarchy)
            .run_parallel_with(200_000, 2, EpochPolicy::PerCycle)
            .expect("parallel run completes");
        let host = report.host.expect("host perf present");
        assert_eq!(
            host.epoch_rounds,
            Some(0),
            "per-cycle policy must never enter an epoch round"
        );
        assert_eq!(host.epoch_cycles, Some(0));
    }
}
