//! Deterministic sharded-clock parallel stepping.
//!
//! [`run`] reproduces [`GpuSimulator::run_stepped`] bit for bit while
//! spreading each cycle's work across persistent worker threads. The
//! sharding follows the machine's natural ownership structure:
//!
//! * A **core shard** is a [`SimtCore`] (with its L1) plus the two
//!   crossbar ports only that core touches — its ingress port on the
//!   request network and its egress port on the response network.
//! * A **partition shard** is a [`MemoryPartition`] (L2 slice + DRAM
//!   channel) plus *its* two ports — its egress port on the request
//!   network and its ingress port on the response network.
//!
//! The only state shared between shards is the crossbar fabric, and the
//! serial [`step`](GpuSimulator::step) already orders every cycle as
//! *partitions → fabric → cores*: partitions consume the ejection state
//! the fabric left last cycle and buffer responses in their own ingress
//! ports; the fabric then arbitrates across all ports; cores then consume
//! the fresh ejections and buffer requests in their own ingress ports.
//! Each phase touches disjoint state per shard, so the phases themselves
//! parallelize freely and the fabric tick runs serially between them on
//! the coordinating thread. Every queue a worker mutates is exclusively
//! its own, every packet a worker "injects" lands in a port that belongs
//! to exactly one shard, and ports are always presented to the fabric in
//! fixed global order — which is why the result is deterministic for
//! every thread count, not merely race-free.
//!
//! Cycle structure (hierarchy mode; four barrier crossings per cycle):
//!
//! ```text
//! main: faults? is_done? budget? deadline? watchdog? dispatch CTAs, chaos
//!         ── barrier 1 ──
//! workers: partition shards step (pop req egress, L2+DRAM, push resp ingress)
//!         ── barrier 2 ──
//! main: replay dead chunks' partition phase, then request + response
//!       fabric tick over all ports in global order
//!         ── barrier 3 ──
//! workers: core shards step (pop resp egress, L1 fill, core cycle,
//!          push req ingress), per-shard queue observes
//!         ── barrier 4 ──
//! main: replay dead chunks' core phase, advance clock
//! ```
//!
//! Fixed-latency mode needs only two crossings: the backend has no
//! cross-shard structure besides the response heap, which the
//! coordinating thread drains into per-core inboxes (preserving its
//! `(due, seq)` pop order per core) and refills from per-core outboxes in
//! core index order (preserving submission sequence numbers).
//!
//! # Robustness
//!
//! Workers never unwind across the barrier protocol. Each phase runs under
//! `catch_unwind`; a panic or a typed [`SimError`] marks the chunk *dead*
//! and records a [`ChunkFault`], and the worker keeps honouring barriers
//! (doing no further work) so nobody deadlocks. The coordinator notices
//! the fault at the next cycle start:
//!
//! * An **injected** fault (the [`ChaosConfig::worker_panic_at`] fixture)
//!   strikes at the shard boundary, before the worker touched this cycle's
//!   state, so the coordinator replays both phases for the dead chunk —
//!   bit-identical, since the phases only touch chunk-local state — and
//!   the run degrades gracefully: it resumes on the sequential engine and
//!   the report records the downgrade.
//! * An **organic** panic may have torn mid-phase state, so the run aborts
//!   with [`SimError::WorkerPanic`] instead of silently continuing.
//! * A typed model error aborts with that error, exactly like the serial
//!   engine.
//!
//! Chunk mutexes are locked poison-tolerantly throughout: a worker panic
//! poisons its chunk, but the chunk data is still needed for diagnosis and
//! reassembly.
//!
//! The barriers are sense-reversing spin barriers that yield after a
//! short spin: on hosts with fewer hardware threads than workers (CI
//! runners, single-CPU containers) pure spinning would deadlock-by-
//! starvation the very thread everyone is waiting for.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use gpumem_noc::{Crossbar, EgressPort, IngressPort, Packet};
use gpumem_simt::SimtCore;
use gpumem_types::{host_wall_clock, Cycle, Degradation, HostStopwatch, MemFetch, PartitionId};

use crate::chaos::ChaosEngine;
use crate::gpu::Backend;
use crate::report::HostPerf;
use crate::watchdog::Watchdog;
use crate::{FixedLatencyMemory, GpuSimulator, MemoryPartition, SimError, SimReport};

/// How a parallel run ended.
enum Outcome {
    /// Kernel complete, memory drained.
    Done,
    /// `max_cycles` exhausted.
    Budget,
    /// The no-progress watchdog tripped.
    Wedged,
    /// An injected worker fault was absorbed; finish on the serial engine.
    Degraded { at_cycle: u64 },
    /// A typed error (model invariant, organic worker panic, deadline).
    Fault(SimError),
}

/// What went wrong inside one worker's chunk.
#[derive(Clone)]
enum ChunkFault {
    /// The seeded [`ChaosConfig::worker_panic_at`] fixture: the worker
    /// "died" at the shard boundary, before touching this cycle's state.
    Injected { cycle: u64 },
    /// A real panic escaped a phase; chunk state may be mid-cycle.
    Panic { cycle: u64, message: String },
    /// A typed model error surfaced inside a phase.
    Error(SimError),
}

/// Poison-tolerant lock: a worker that panicked mid-phase has already been
/// recorded as a [`ChunkFault`], and the chunk data is still needed for
/// fault reporting, diagnosis and reassembly.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A reusable sense-reversing barrier for `total` participants.
///
/// Spins briefly, then yields: correctness must not depend on having as
/// many hardware threads as participants.
struct SpinBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Reset before publishing the new generation: a racer from the
            // next round can only touch `arrived` after it observes the
            // bumped generation, by which time the reset is visible.
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins = spins.saturating_add(1);
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Contiguous `[begin, end)` ranges splitting `n` items across `chunks`
/// shard groups. Contiguity matters: concatenating the chunks in chunk-id
/// order must reproduce global port order for the fabric tick.
fn split_ranges(n: usize, chunks: usize) -> Vec<(usize, usize)> {
    (0..chunks)
        .map(|i| ((i * n) / chunks, ((i + 1) * n) / chunks))
        .collect()
}

/// Parameters the core phase needs, copied into every worker.
#[derive(Clone, Copy)]
struct CoreParams {
    num_partitions: u64,
    line_bytes: u64,
    flit_bytes: u64,
}

/// One core shard: the core plus the two ports only it touches.
struct CorePack {
    core: SimtCore,
    /// This core's ingress port on the request crossbar.
    req_in: IngressPort,
    /// This core's egress port on the response crossbar.
    resp_out: EgressPort,
}

/// One partition shard: the partition plus the two ports only it touches.
struct PartPack {
    part: MemoryPartition,
    /// This partition's egress port on the request crossbar.
    req_out: EgressPort,
    /// This partition's ingress port on the response crossbar.
    resp_in: IngressPort,
}

/// Everything one worker owns, behind one mutex: workers lock only their
/// own chunk during a phase, the coordinator locks all chunks only while
/// every worker is parked at a barrier (so the locks never contend).
struct HierChunk {
    cores: Vec<CorePack>,
    parts: Vec<PartPack>,
    /// Responses delivered to this chunk's cores (merged on exit).
    delivered: u64,
    /// Requests injected by this chunk's cores (merged on exit).
    injected: u64,
    /// First fault this chunk suffered, if any (the coordinator aborts or
    /// degrades the run at the next cycle start).
    fault: Option<ChunkFault>,
}

impl HierChunk {
    /// Phase A: step the partition shards for `now`.
    fn phase_partitions(&mut self, now: Cycle) -> Result<(), SimError> {
        for pp in &mut self.parts {
            pp.part.cycle(now, &mut pp.req_out, &mut pp.resp_in)?;
            // The serial loop observes partitions after the cores run, but
            // core activity never touches partition-internal queues, so
            // observing here is bit-identical and saves a phase.
            pp.part.observe();
        }
        Ok(())
    }

    /// Phase B: step the core shards for `now`, then close the cycle's
    /// statistics window for every port this chunk owns (the fabric is
    /// quiescent again by this point).
    fn phase_cores(&mut self, now: Cycle, params: &CoreParams) -> Result<(), SimError> {
        for cp in &mut self.cores {
            // One L1 fill per cycle from the response network.
            if let Some(pkt) = cp.resp_out.pop_ejected() {
                cp.core.accept_response(pkt.fetch, now);
                self.delivered += 1;
            }
            cp.core.cycle(now);
            // Inject as many fill requests as the input buffer accepts.
            while cp.core.peek_memory_request().is_some() && cp.req_in.can_inject() {
                let Some(mut fetch) = cp.core.pop_memory_request() else {
                    break;
                };
                let part = (fetch.line.index() % params.num_partitions) as usize;
                fetch.partition = Some(PartitionId::new(part as u32));
                fetch.timeline.icnt_inject = Some(now);
                let bytes = fetch.request_bytes(params.line_bytes);
                let pkt = Packet::new(fetch, part, bytes, params.flit_bytes);
                if cp.req_in.try_inject(pkt).is_err() {
                    return Err(SimError::PortProtocol {
                        component: "core",
                        cycle: now.raw(),
                        detail: "request crossbar rejected an injection after can_inject"
                            .to_owned(),
                    });
                }
                self.injected += 1;
            }
            cp.core.observe();
            cp.req_in.observe();
            cp.resp_out.observe();
        }
        for pp in &mut self.parts {
            pp.req_out.observe();
            pp.resp_in.observe();
        }
        Ok(())
    }

    /// True when every shard in this chunk is drained (the chunk's share
    /// of the serial `is_done` condition).
    fn is_idle(&self) -> bool {
        self.cores.iter().all(|cp| {
            cp.core.all_ctas_retired()
                && !cp.core.has_pending_memory()
                && cp.req_in.is_empty()
                && cp.resp_out.is_idle()
        }) && self
            .parts
            .iter()
            .all(|pp| pp.part.is_idle() && pp.req_out.is_idle() && pp.resp_in.is_empty())
    }
}

/// One core shard in fixed-latency mode: responses arrive through the
/// inbox (filled by the coordinator in backend pop order), requests leave
/// through the outbox (drained by the coordinator in core index order so
/// backend sequence numbers match the serial engine).
struct FixedPack {
    core: SimtCore,
    inbox: Vec<MemFetch>,
    outbox: Vec<MemFetch>,
}

struct FixedChunk {
    cores: Vec<FixedPack>,
    fault: Option<ChunkFault>,
}

impl FixedChunk {
    fn phase(&mut self, now: Cycle) {
        for fp in &mut self.cores {
            for fetch in fp.inbox.drain(..) {
                fp.core.accept_response(fetch, now);
            }
            fp.core.cycle(now);
            while let Some(mut fetch) = fp.core.pop_memory_request() {
                fetch.timeline.icnt_inject = Some(now);
                fp.outbox.push(fetch);
            }
            fp.core.observe();
        }
    }

    fn is_idle(&self) -> bool {
        self.cores
            .iter()
            .all(|fp| fp.core.all_ctas_retired() && !fp.core.has_pending_memory())
    }
}

/// Runs `sim` to completion with `threads` worker threads, bit-identical
/// to `run_stepped`. Entry point for [`GpuSimulator::run_parallel`];
/// callers guarantee `threads >= 2`.
pub(crate) fn run(
    sim: &mut GpuSimulator,
    max_cycles: u64,
    threads: usize,
) -> Result<SimReport, SimError> {
    let wall_start = host_wall_clock();
    let mut watchdog = sim.watchdog_horizon.map(Watchdog::new);
    let outcome = match &mut sim.backend {
        Backend::Hierarchy {
            req_xbar,
            resp_xbar,
            partitions,
        } => run_hierarchy(
            &mut sim.cores,
            partitions,
            req_xbar,
            resp_xbar,
            CoreParams {
                num_partitions: sim.cfg.num_partitions as u64,
                line_bytes: sim.cfg.line_bytes,
                flit_bytes: sim.cfg.noc.flit_bytes,
            },
            HarnessState {
                program: &*sim.program,
                next_cta: &mut sim.next_cta,
                now: &mut sim.now,
                stepped_cycles: &mut sim.stepped_cycles,
                responses_delivered: &mut sim.responses_delivered,
                requests_injected: &mut sim.requests_injected,
                watchdog: watchdog.as_mut(),
                chaos: sim.chaos.as_mut(),
                deadline_seconds: sim.deadline_seconds,
                wall_start: &wall_start,
            },
            max_cycles,
            threads,
        ),
        // The fixed backend ignores chaos, exactly like the serial engine
        // (its step has no ports or partitions to inject into).
        Backend::Fixed(mem) => run_fixed(
            &mut sim.cores,
            mem,
            HarnessState {
                program: &*sim.program,
                next_cta: &mut sim.next_cta,
                now: &mut sim.now,
                stepped_cycles: &mut sim.stepped_cycles,
                responses_delivered: &mut sim.responses_delivered,
                requests_injected: &mut sim.requests_injected,
                watchdog: watchdog.as_mut(),
                chaos: None,
                deadline_seconds: sim.deadline_seconds,
                wall_start: &wall_start,
            },
            max_cycles,
            threads,
        ),
    };

    match outcome {
        Outcome::Budget => Err(SimError::Watchdog {
            cycle: sim.now.raw(),
            instructions: sim.total_instructions(),
            detail: sim.liveness_detail(),
        }),
        Outcome::Wedged => {
            let diagnosis = match &watchdog {
                Some(wd) => sim.wedge_diagnosis(wd),
                // Unreachable: Wedged is only produced with a watchdog
                // armed; keep the code total regardless.
                None => sim.wedge_diagnosis(&Watchdog::new(1)),
            };
            Err(SimError::Wedged {
                diagnosis: Box::new(diagnosis),
            })
        }
        Outcome::Degraded { at_cycle } => {
            // The faulted cycle was fully replayed by the coordinator, so
            // the machine state equals the serial engine's at `now` and the
            // sequential resume stays bit-identical.
            sim.degraded = Some(Degradation {
                at_cycle,
                reason: format!(
                    "worker fault at cycle {at_cycle}; cycle replayed by the \
                     coordinator, run resumed on the sequential engine"
                ),
            });
            sim.run_stepped(max_cycles)
        }
        Outcome::Fault(e) => Err(e),
        Outcome::Done => {
            sim.check_conservation()?;
            let wall = wall_start.elapsed_seconds();
            let mut report = sim.report();
            report.host = Some(HostPerf {
                wall_seconds: wall,
                cycles_per_sec: if wall > 0.0 {
                    sim.now.raw() as f64 / wall
                } else {
                    0.0
                },
                stepped_cycles: sim.stepped_cycles,
                skipped_cycles: sim.skipped_cycles(),
                skipped_fraction: if sim.now.raw() > 0 {
                    sim.skipped_cycles() as f64 / sim.now.raw() as f64
                } else {
                    0.0
                },
                threads: threads as u64,
            });
            Ok(report)
        }
    }
}

/// The simulator-global loop state both engines advance, borrowed
/// field-by-field so the backend can be borrowed alongside.
struct HarnessState<'a> {
    program: &'a dyn gpumem_simt::KernelProgram,
    next_cta: &'a mut u32,
    now: &'a mut Cycle,
    stepped_cycles: &'a mut u64,
    responses_delivered: &'a mut u64,
    requests_injected: &'a mut u64,
    watchdog: Option<&'a mut Watchdog>,
    chaos: Option<&'a mut ChaosEngine>,
    deadline_seconds: Option<f64>,
    wall_start: &'a HostStopwatch,
}

/// Dispatches ready CTAs over `cores` exactly like the serial
/// `GpuSimulator::dispatch_ctas`: cores in index order, greedily.
fn dispatch_ctas<'a>(
    cores: impl Iterator<Item = &'a mut SimtCore>,
    program: &dyn gpumem_simt::KernelProgram,
    next_cta: &mut u32,
) {
    let grid = program.grid_ctas();
    if *next_cta >= grid {
        return;
    }
    for core in cores {
        while *next_cta < grid && core.can_accept_cta() {
            core.assign_cta(gpumem_types::CtaId::new(*next_cta));
            *next_cta += 1;
        }
        if *next_cta >= grid {
            break;
        }
    }
}

/// Converts the first recorded chunk fault (scanning in chunk order) into
/// the outcome that ends the run.
fn fault_outcome(faults: impl Iterator<Item = (usize, ChunkFault)>) -> Option<Outcome> {
    faults.into_iter().next().map(|(idx, f)| match f {
        ChunkFault::Injected { cycle } => Outcome::Degraded { at_cycle: cycle },
        ChunkFault::Panic { cycle, message } => Outcome::Fault(SimError::WorkerPanic {
            cycle,
            chunk: idx,
            message,
        }),
        ChunkFault::Error(e) => Outcome::Fault(e),
    })
}

#[allow(clippy::too_many_arguments)]
fn run_hierarchy(
    cores: &mut Vec<SimtCore>,
    partitions: &mut Vec<MemoryPartition>,
    req_xbar: &mut Crossbar,
    resp_xbar: &mut Crossbar,
    params: CoreParams,
    mut state: HarnessState<'_>,
    max_cycles: u64,
    threads: usize,
) -> Outcome {
    let num_cores = cores.len();
    let num_parts = partitions.len();
    let core_ranges = split_ranges(num_cores, threads);
    let part_ranges = split_ranges(num_parts, threads);

    // Dismantle the machine into per-worker chunks. Draining back to
    // front keeps `remove(lo)` O(1)-amortized-ish irrelevant at this
    // scale; what matters is that chunk order concatenates to global
    // port order.
    let (req_ins, req_outs) = req_xbar.take_ports();
    let (resp_ins, resp_outs) = resp_xbar.take_ports();
    let mut core_src = cores.drain(..).zip(req_ins).zip(resp_outs);
    let mut part_src = partitions.drain(..).zip(req_outs).zip(resp_ins);
    let chunks: Vec<Mutex<HierChunk>> = (0..threads)
        .map(|i| {
            let (c_lo, c_hi) = core_ranges[i];
            let (p_lo, p_hi) = part_ranges[i];
            Mutex::new(HierChunk {
                cores: (&mut core_src)
                    .take(c_hi - c_lo)
                    .map(|((core, req_in), resp_out)| CorePack {
                        core,
                        req_in,
                        resp_out,
                    })
                    .collect(),
                parts: (&mut part_src)
                    .take(p_hi - p_lo)
                    .map(|((part, req_out), resp_in)| PartPack {
                        part,
                        req_out,
                        resp_in,
                    })
                    .collect(),
                delivered: 0,
                injected: 0,
                fault: None,
            })
        })
        .collect();
    debug_assert!(core_src.next().is_none() && part_src.next().is_none());
    drop(core_src);
    drop(part_src);

    let barrier = SpinBarrier::new(threads + 1);
    let exit = AtomicBool::new(false);
    let now_cell = AtomicU64::new(state.now.raw());
    // One "this worker died" flag per chunk, outside the chunk mutex so the
    // coordinator can poll it without locking.
    let dead: Vec<AtomicBool> = (0..threads).map(|_| AtomicBool::new(false)).collect();
    // The seeded worker-death fixture, if configured (chunk 0 only).
    let panic_at: u64 = state
        .chaos
        .as_deref()
        .and_then(ChaosEngine::worker_panic_at)
        .unwrap_or(u64::MAX);

    let outcome = std::thread::scope(|s| {
        for (idx, chunk) in chunks.iter().enumerate() {
            let barrier = &barrier;
            let exit = &exit;
            let now_cell = &now_cell;
            let my_dead = &dead[idx];
            s.spawn(move || loop {
                barrier.wait(); // 1: cycle start (or shutdown)
                if exit.load(Ordering::Acquire) {
                    break;
                }
                let now = Cycle::new(now_cell.load(Ordering::Acquire));
                if idx == 0 && now.raw() >= panic_at && !my_dead.load(Ordering::Acquire) {
                    // Simulated worker death at the shard boundary: this
                    // cycle's state is untouched, so the coordinator can
                    // replay both phases and degrade gracefully.
                    my_dead.store(true, Ordering::Release);
                    lock(chunk).fault = Some(ChunkFault::Injected { cycle: now.raw() });
                }
                if !my_dead.load(Ordering::Acquire) {
                    match catch_unwind(AssertUnwindSafe(|| lock(chunk).phase_partitions(now))) {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => {
                            my_dead.store(true, Ordering::Release);
                            lock(chunk).fault = Some(ChunkFault::Error(e));
                        }
                        Err(payload) => {
                            my_dead.store(true, Ordering::Release);
                            lock(chunk).fault = Some(ChunkFault::Panic {
                                cycle: now.raw(),
                                message: panic_message(payload.as_ref()),
                            });
                        }
                    }
                }
                barrier.wait(); // 2: partitions done → fabric may tick
                barrier.wait(); // 3: fabric done → cores may run
                if !my_dead.load(Ordering::Acquire) {
                    match catch_unwind(AssertUnwindSafe(|| lock(chunk).phase_cores(now, &params))) {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => {
                            my_dead.store(true, Ordering::Release);
                            lock(chunk).fault = Some(ChunkFault::Error(e));
                        }
                        Err(payload) => {
                            my_dead.store(true, Ordering::Release);
                            lock(chunk).fault = Some(ChunkFault::Panic {
                                cycle: now.raw(),
                                message: panic_message(payload.as_ref()),
                            });
                        }
                    }
                }
                barrier.wait(); // 4: cycle closed
            });
        }

        // Coordinator loop (this thread). Workers are parked at a barrier
        // whenever it locks chunks, so the locks never contend.
        let mut coordinator_fault: Option<SimError> = None;
        let outcome = loop {
            // faults → is_done → budget → deadline → watchdog → dispatch →
            // chaos; the last five mirror the serial loop's order exactly.
            {
                let mut guards: Vec<_> = chunks.iter().map(lock).collect();
                if let Some(e) = coordinator_fault.take() {
                    exit.store(true, Ordering::Release);
                    break Outcome::Fault(e);
                }
                if let Some(outcome) = fault_outcome(
                    guards
                        .iter()
                        .enumerate()
                        .filter_map(|(i, g)| g.fault.clone().map(|f| (i, f))),
                ) {
                    exit.store(true, Ordering::Release);
                    break outcome;
                }
                let done = *state.next_cta >= state.program.grid_ctas()
                    && guards.iter().all(|g| g.is_idle());
                if done {
                    exit.store(true, Ordering::Release);
                    break Outcome::Done;
                }
                if state.now.raw() >= max_cycles {
                    exit.store(true, Ordering::Release);
                    break Outcome::Budget;
                }
                if let Some(budget) = state.deadline_seconds {
                    if (*state.stepped_cycles).is_multiple_of(1024)
                        && state.wall_start.elapsed_seconds() > budget
                    {
                        exit.store(true, Ordering::Release);
                        break Outcome::Fault(SimError::DeadlineExceeded {
                            cycle: state.now.raw(),
                            budget_seconds: budget,
                        });
                    }
                }
                if let Some(wd) = state.watchdog.as_deref_mut() {
                    let instructions: u64 = guards
                        .iter()
                        .flat_map(|g| g.cores.iter())
                        .map(|cp| cp.core.stats().instructions)
                        .sum();
                    let delivered = *state.responses_delivered
                        + guards.iter().map(|g| g.delivered).sum::<u64>();
                    let injected =
                        *state.requests_injected + guards.iter().map(|g| g.injected).sum::<u64>();
                    if wd.observe(
                        *state.now,
                        (instructions, delivered, injected, *state.next_cta),
                    ) {
                        exit.store(true, Ordering::Release);
                        break Outcome::Wedged;
                    }
                }
                dispatch_ctas(
                    guards
                        .iter_mut()
                        .flat_map(|g| g.cores.iter_mut().map(|cp| &mut cp.core)),
                    state.program,
                    state.next_cta,
                );
                if let Some(chaos) = state.chaos.as_deref_mut() {
                    // Same injection point and same global port/partition
                    // order as the serial step(), so the schedule lands on
                    // identical targets at identical cycles.
                    let mut req_ins: Vec<&mut IngressPort> = Vec::with_capacity(num_cores);
                    let mut resp_ins: Vec<&mut IngressPort> = Vec::with_capacity(num_parts);
                    let mut parts: Vec<&mut MemoryPartition> = Vec::with_capacity(num_parts);
                    for g in guards.iter_mut() {
                        let chunk = &mut **g;
                        for cp in &mut chunk.cores {
                            req_ins.push(&mut cp.req_in);
                        }
                        for pp in &mut chunk.parts {
                            resp_ins.push(&mut pp.resp_in);
                            parts.push(&mut pp.part);
                        }
                    }
                    chaos.apply(*state.now, &mut req_ins, &mut resp_ins, &mut parts);
                }
            }
            let now = *state.now;
            now_cell.store(now.raw(), Ordering::Release);
            barrier.wait(); // 1
            barrier.wait(); // 2: partition phase complete
            {
                let mut guards: Vec<_> = chunks.iter().map(lock).collect();
                // Replay the partition phase of freshly-dead chunks whose
                // fault struck before the phase ran (injected faults only;
                // organic faults abort at the next cycle start anyway).
                for (i, g) in guards.iter_mut().enumerate() {
                    if dead[i].load(Ordering::Acquire)
                        && matches!(g.fault, Some(ChunkFault::Injected { .. }))
                    {
                        if let Err(e) = g.phase_partitions(now) {
                            g.fault = Some(ChunkFault::Error(e));
                        }
                    }
                }
                let mut req_ins: Vec<&mut IngressPort> = Vec::with_capacity(num_cores);
                let mut req_outs: Vec<&mut EgressPort> = Vec::with_capacity(num_parts);
                let mut resp_ins: Vec<&mut IngressPort> = Vec::with_capacity(num_parts);
                let mut resp_outs: Vec<&mut EgressPort> = Vec::with_capacity(num_cores);
                for g in guards.iter_mut() {
                    let chunk = &mut **g;
                    for cp in &mut chunk.cores {
                        req_ins.push(&mut cp.req_in);
                        resp_outs.push(&mut cp.resp_out);
                    }
                    for pp in &mut chunk.parts {
                        req_outs.push(&mut pp.req_out);
                        resp_ins.push(&mut pp.resp_in);
                    }
                }
                // No `?` here: the ports are dismantled, so a typed error
                // is parked and surfaced at the next cycle start.
                let ticked = req_xbar
                    .fabric_mut()
                    .tick(now, &mut req_ins, &mut req_outs)
                    .and_then(|()| {
                        resp_xbar
                            .fabric_mut()
                            .tick(now, &mut resp_ins, &mut resp_outs)
                    });
                if let Err(e) = ticked {
                    coordinator_fault = Some(e);
                }
            }
            barrier.wait(); // 3
            barrier.wait(); // 4: core phase complete
            if dead.iter().any(|d| d.load(Ordering::Acquire)) {
                let mut guards: Vec<_> = chunks.iter().map(lock).collect();
                for (i, g) in guards.iter_mut().enumerate() {
                    if dead[i].load(Ordering::Acquire)
                        && matches!(g.fault, Some(ChunkFault::Injected { .. }))
                    {
                        if let Err(e) = g.phase_cores(now, &params) {
                            g.fault = Some(ChunkFault::Error(e));
                        }
                    }
                }
            }
            *state.stepped_cycles += 1;
            *state.now = now.next();
        };
        barrier.wait(); // release workers into the shutdown branch
        outcome
    });

    // Reassemble the machine. Chunk order is global order by
    // construction, so a straight concatenation restores every index.
    let mut req_ins = Vec::with_capacity(num_cores);
    let mut req_outs = Vec::with_capacity(num_parts);
    let mut resp_ins = Vec::with_capacity(num_parts);
    let mut resp_outs = Vec::with_capacity(num_cores);
    for chunk in chunks {
        let chunk = chunk.into_inner().unwrap_or_else(PoisonError::into_inner);
        for cp in chunk.cores {
            cores.push(cp.core);
            req_ins.push(cp.req_in);
            resp_outs.push(cp.resp_out);
        }
        for pp in chunk.parts {
            partitions.push(pp.part);
            req_outs.push(pp.req_out);
            resp_ins.push(pp.resp_in);
        }
        *state.responses_delivered += chunk.delivered;
        *state.requests_injected += chunk.injected;
    }
    req_xbar.restore_ports(req_ins, req_outs);
    resp_xbar.restore_ports(resp_ins, resp_outs);
    outcome
}

fn run_fixed(
    cores: &mut Vec<SimtCore>,
    mem: &mut FixedLatencyMemory,
    mut state: HarnessState<'_>,
    max_cycles: u64,
    threads: usize,
) -> Outcome {
    let num_cores = cores.len();
    let core_ranges = split_ranges(num_cores, threads);
    // core index → (chunk, index within chunk), for inbox routing.
    let locate: Vec<(usize, usize)> = core_ranges
        .iter()
        .enumerate()
        .flat_map(|(chunk, &(lo, hi))| (lo..hi).map(move |c| (chunk, c - lo)))
        .collect();

    let mut core_src = cores.drain(..);
    let chunks: Vec<Mutex<FixedChunk>> = core_ranges
        .iter()
        .map(|&(lo, hi)| {
            Mutex::new(FixedChunk {
                cores: (&mut core_src)
                    .take(hi - lo)
                    .map(|core| FixedPack {
                        core,
                        inbox: Vec::new(),
                        outbox: Vec::new(),
                    })
                    .collect(),
                fault: None,
            })
        })
        .collect();
    debug_assert!(core_src.next().is_none());
    drop(core_src);

    let barrier = SpinBarrier::new(threads + 1);
    let exit = AtomicBool::new(false);
    let now_cell = AtomicU64::new(state.now.raw());
    let dead: Vec<AtomicBool> = (0..threads).map(|_| AtomicBool::new(false)).collect();

    let outcome = std::thread::scope(|s| {
        for (idx, chunk) in chunks.iter().enumerate() {
            let barrier = &barrier;
            let exit = &exit;
            let now_cell = &now_cell;
            let my_dead = &dead[idx];
            s.spawn(move || loop {
                barrier.wait(); // 1: cycle start (or shutdown)
                if exit.load(Ordering::Acquire) {
                    break;
                }
                let now = Cycle::new(now_cell.load(Ordering::Acquire));
                if !my_dead.load(Ordering::Acquire) {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| lock(chunk).phase(now)))
                    {
                        my_dead.store(true, Ordering::Release);
                        lock(chunk).fault = Some(ChunkFault::Panic {
                            cycle: now.raw(),
                            message: panic_message(payload.as_ref()),
                        });
                    }
                }
                barrier.wait(); // 2: cycle closed
            });
        }

        let outcome = loop {
            {
                let mut guards: Vec<_> = chunks.iter().map(lock).collect();
                if let Some(outcome) = fault_outcome(
                    guards
                        .iter()
                        .enumerate()
                        .filter_map(|(i, g)| g.fault.clone().map(|f| (i, f))),
                ) {
                    exit.store(true, Ordering::Release);
                    break outcome;
                }
                let done = *state.next_cta >= state.program.grid_ctas()
                    && guards.iter().all(|g| g.is_idle())
                    && mem.is_idle();
                if done {
                    exit.store(true, Ordering::Release);
                    break Outcome::Done;
                }
                if state.now.raw() >= max_cycles {
                    exit.store(true, Ordering::Release);
                    break Outcome::Budget;
                }
                if let Some(budget) = state.deadline_seconds {
                    if (*state.stepped_cycles).is_multiple_of(1024)
                        && state.wall_start.elapsed_seconds() > budget
                    {
                        exit.store(true, Ordering::Release);
                        break Outcome::Fault(SimError::DeadlineExceeded {
                            cycle: state.now.raw(),
                            budget_seconds: budget,
                        });
                    }
                }
                if let Some(wd) = state.watchdog.as_deref_mut() {
                    let instructions: u64 = guards
                        .iter()
                        .flat_map(|g| g.cores.iter())
                        .map(|fp| fp.core.stats().instructions)
                        .sum();
                    if wd.observe(
                        *state.now,
                        (
                            instructions,
                            *state.responses_delivered,
                            *state.requests_injected,
                            *state.next_cta,
                        ),
                    ) {
                        exit.store(true, Ordering::Release);
                        break Outcome::Wedged;
                    }
                }
                dispatch_ctas(
                    guards
                        .iter_mut()
                        .flat_map(|g| g.cores.iter_mut().map(|fp| &mut fp.core)),
                    state.program,
                    state.next_cta,
                );
                // Route every due response to its core's inbox. The
                // backend pops in (due, seq) order, so each inbox receives
                // its core's responses in exactly the serial order.
                let now = *state.now;
                while let Some(fetch) = mem.pop_due(now) {
                    let (chunk, local) = locate[fetch.core.index()];
                    guards[chunk].cores[local].inbox.push(fetch);
                    *state.responses_delivered += 1;
                }
            }
            let now = *state.now;
            now_cell.store(now.raw(), Ordering::Release);
            barrier.wait(); // 1
            barrier.wait(); // 2: core phase complete
            {
                // Submit buffered requests in core index order: the
                // backend stamps arrival sequence numbers, and this order
                // is exactly the serial engine's.
                let mut guards: Vec<_> = chunks.iter().map(lock).collect();
                for g in guards.iter_mut() {
                    for fp in &mut g.cores {
                        for fetch in fp.outbox.drain(..) {
                            *state.requests_injected += 1;
                            mem.submit(fetch, now);
                        }
                    }
                }
            }
            *state.stepped_cycles += 1;
            *state.now = now.next();
        };
        barrier.wait(); // release workers into the shutdown branch
        outcome
    });

    for chunk in chunks {
        let chunk = chunk.into_inner().unwrap_or_else(PoisonError::into_inner);
        for fp in chunk.cores {
            cores.push(fp.core);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_cover_contiguously() {
        for n in 0..20 {
            for chunks in 1..8 {
                let r = split_ranges(n, chunks);
                assert_eq!(r.len(), chunks);
                assert_eq!(r[0].0, 0);
                assert_eq!(r[chunks - 1].1, n);
                for w in r.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }

    #[test]
    fn spin_barrier_synchronizes_rounds() {
        let barrier = SpinBarrier::new(4);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for round in 1..=50 {
                        counter.fetch_add(1, Ordering::AcqRel);
                        barrier.wait();
                        // Between barriers every thread observes the full
                        // round's worth of increments.
                        assert!(counter.load(Ordering::Acquire) >= round * 4);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Acquire), 200);
    }
}
