//! A memory partition: one banked slice of the shared L2 plus its DRAM
//! channel.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gpumem_cache::{MshrTable, ReplacementOutcome, TagArray};
use gpumem_config::GpuConfig;
use gpumem_dram::DramChannel;
use gpumem_noc::{EgressPort, IngressPort, Packet};
use gpumem_trace::{OccupancyProbe, TraceConfig};
use gpumem_types::{
    AccessKind, Cycle, FetchArena, FetchId, LineAddr, MemFetch, PartitionId, QueueStats, SimError,
    SimQueue, SlotId,
};

/// Component label used in this partition's typed errors.
const COMPONENT: &str = "l2_partition";

/// Activity counters for one partition's L2 slice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct L2Stats {
    /// Load hits.
    pub load_hits: u64,
    /// Store hits.
    pub store_hits: u64,
    /// Misses that allocated a fresh MSHR entry (one DRAM fetch each).
    pub misses: u64,
    /// Misses merged into outstanding entries.
    pub merged_misses: u64,
    /// Dirty evictions written back to DRAM.
    pub writebacks: u64,
    /// Fills installed from DRAM.
    pub fills: u64,
    /// Head-of-queue stalls: target bank busy.
    pub stall_bank_busy: u64,
    /// Head-of-queue stalls: MSHR table full / merge exhausted.
    pub stall_mshr: u64,
    /// Head-of-queue stalls: miss queue towards DRAM full.
    pub stall_miss_queue: u64,
    /// Fill stalls: response-side resources (to-interconnect queue or
    /// writeback slot) unavailable.
    pub stall_fill: u64,
}

impl L2Stats {
    /// Accumulates another partition's counters.
    pub fn merge(&mut self, other: &L2Stats) {
        self.load_hits += other.load_hits;
        self.store_hits += other.store_hits;
        self.misses += other.misses;
        self.merged_misses += other.merged_misses;
        self.writebacks += other.writebacks;
        self.fills += other.fills;
        self.stall_bank_busy += other.stall_bank_busy;
        self.stall_mshr += other.stall_mshr;
        self.stall_miss_queue += other.stall_miss_queue;
        self.stall_fill += other.stall_fill;
    }

    /// Hit rate over demand accesses (loads + stores, merges counted as
    /// misses).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.load_hits + self.store_hits;
        let total = hits + self.misses + self.merged_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// One request waiting on an outstanding L2 miss.
///
/// The primary (the request that allocated the MSHR entry) travels
/// downstream *as* the DRAM request — only its original access kind stays
/// behind, so no body is copied. Merged requests park their bodies in the
/// partition's arena and wait as 4-byte handles.
#[derive(Debug, Clone, Copy)]
enum L2Waiter {
    /// The allocating request; its body is the in-flight DRAM fetch.
    Primary(AccessKind),
    /// A merged request parked in the arena.
    Merged(SlotId),
}

/// Trace state owned by one partition: occupancy probes for its two
/// headline queues (the write-path latency histograms live in the embedded
/// [`DramChannel`]). Lives behind an `Option<Box<_>>` so an untraced run
/// pays one never-taken branch per hook.
#[derive(Debug, Clone)]
pub struct PartitionTrace {
    /// L2 access-queue depth series (the paper's 46% queue).
    pub l2_access: OccupancyProbe,
    /// DRAM read-scheduler queue depth series (the paper's 39% queue).
    pub dram_sched: OccupancyProbe,
}

#[derive(Debug)]
struct BankCompletion {
    done_at: Cycle,
    seq: u64,
    fetch: MemFetch,
}

impl PartialEq for BankCompletion {
    fn eq(&self, other: &Self) -> bool {
        self.done_at == other.done_at && self.seq == other.seq
    }
}
impl Eq for BankCompletion {}
impl PartialOrd for BankCompletion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for BankCompletion {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.done_at, other.seq).cmp(&(self.done_at, self.seq))
    }
}

/// One memory partition: banked L2 slice, its queues, the data port to the
/// response crossbar, and the DRAM channel behind it.
///
/// All four Table I (b) queues live here (access, miss, response, plus the
/// MSHR table); the Table I (a) structures live in the embedded
/// [`DramChannel`]. The Section III congestion metric *"L2 access queues
/// are full for 46% of their usage lifetime"* reads
/// [`access_queue_stats`](MemoryPartition::access_queue_stats).
pub struct MemoryPartition {
    id: PartitionId,
    line_bytes: u64,
    num_partitions: u64,
    banks: usize,
    sets_per_bank: usize,
    bank_latency: u64,
    port_cycles: u64,
    flit_bytes: u64,
    tags: Vec<TagArray>,
    bank_next_accept: Vec<Cycle>,
    completions: BinaryHeap<BankCompletion>,
    access_queue: SimQueue<MemFetch>,
    mshr: MshrTable<L2Waiter>,
    /// Parked bodies of merged misses (primaries travel to DRAM).
    arena: FetchArena,
    /// Misses traversing the bank pipeline (tag access + request
    /// generation) before becoming eligible for the miss queue.
    miss_pipeline: std::collections::VecDeque<(Cycle, MemFetch)>,
    miss_queue: SimQueue<MemFetch>,
    /// Dirty evictions awaiting the DRAM write queue (kept separate from
    /// the read miss queue so a clogged read path can never deadlock the
    /// fill pipeline).
    wb_queue: SimQueue<MemFetch>,
    response_queue: SimQueue<MemFetch>,
    to_icnt: SimQueue<MemFetch>,
    port_free_at: Cycle,
    dram: DramChannel,
    next_seq: u64,
    next_wb_seq: u64,
    stats: L2Stats,
    /// Fault injection: the MSHR miss path stalls (as if the table were
    /// full) before this cycle. `Cycle::ZERO` = inert.
    chaos_mshr_until: Cycle,
    /// Fault injection: no request is forwarded to the DRAM channel before
    /// this cycle. `Cycle::ZERO` = inert.
    chaos_dram_until: Cycle,
    trace: Option<Box<PartitionTrace>>,
    /// Host-time attribution: accumulate the wall time spent inside the
    /// DRAM channel (tick + return drain) when profiling is enabled.
    /// Never read by the timing model, so it cannot affect results.
    host_profile: bool,
    host_dram_seconds: f64,
}

impl std::fmt::Debug for MemoryPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryPartition")
            .field("id", &self.id)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MemoryPartition {
    /// Builds partition `id` of the configured GPU.
    ///
    /// # Panics
    ///
    /// Panics if `l2.sets_per_partition` is not divisible by
    /// `l2.banks_per_partition`.
    pub fn new(id: PartitionId, cfg: &GpuConfig) -> Self {
        let banks = cfg.l2.banks_per_partition;
        assert!(
            cfg.l2.sets_per_partition.is_multiple_of(banks),
            "L2 sets per partition must divide evenly across banks"
        );
        let sets_per_bank = cfg.l2.sets_per_partition / banks;
        MemoryPartition {
            id,
            line_bytes: cfg.line_bytes,
            num_partitions: cfg.num_partitions as u64,
            banks,
            sets_per_bank,
            bank_latency: cfg.l2.bank_latency,
            port_cycles: cfg.l2_port_cycles(),
            flit_bytes: cfg.noc.flit_bytes,
            tags: (0..banks)
                .map(|_| TagArray::new(sets_per_bank, cfg.l2.assoc))
                .collect(),
            bank_next_accept: vec![Cycle::ZERO; banks],
            completions: BinaryHeap::new(),
            access_queue: SimQueue::new("l2_access", cfg.l2.access_queue),
            mshr: MshrTable::new(cfg.l2.mshr_entries, cfg.l2.mshr_merge),
            arena: FetchArena::with_capacity(cfg.l2.mshr_entries * cfg.l2.mshr_merge),
            miss_pipeline: std::collections::VecDeque::new(),
            miss_queue: SimQueue::new("l2_miss", cfg.l2.miss_queue),
            wb_queue: SimQueue::new("l2_writeback", cfg.l2.miss_queue),
            response_queue: SimQueue::new("l2_response", cfg.l2.response_queue),
            to_icnt: SimQueue::new("l2_to_icnt", cfg.l2.access_queue),
            port_free_at: Cycle::ZERO,
            dram: DramChannel::new(cfg, id.index()),
            next_seq: 0,
            next_wb_seq: 0,
            stats: L2Stats::default(),
            chaos_mshr_until: Cycle::ZERO,
            chaos_dram_until: Cycle::ZERO,
            trace: None,
            host_profile: false,
            host_dram_seconds: 0.0,
        }
    }

    /// Starts attributing host wall time spent in the DRAM channel to
    /// [`host_dram_seconds`](MemoryPartition::host_dram_seconds).
    /// Timing-model-invisible; enable before running.
    pub fn enable_host_profile(&mut self) {
        self.host_profile = true;
    }

    /// Host seconds spent inside the DRAM channel since profiling was
    /// enabled.
    pub fn host_dram_seconds(&self) -> f64 {
        self.host_dram_seconds
    }

    /// Turns on fetch-lifecycle tracing for this partition and its DRAM
    /// channel. Idempotent; enable before running.
    pub fn enable_trace(&mut self, cfg: &TraceConfig) {
        self.dram.enable_trace();
        if self.trace.is_none() {
            self.trace = Some(Box::new(PartitionTrace {
                l2_access: OccupancyProbe::new(cfg),
                dram_sched: OccupancyProbe::new(cfg),
            }));
        }
    }

    /// The partition's trace state, if tracing was enabled.
    pub fn trace(&self) -> Option<&PartitionTrace> {
        self.trace.as_deref()
    }

    /// This partition's id.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// (bank, set) decoding of a line address within this partition.
    fn map(&self, line: LineAddr) -> (usize, usize) {
        let local = line.index() / self.num_partitions;
        let bank = (local % self.banks as u64) as usize;
        let set = ((local / self.banks as u64) % self.sets_per_bank as u64) as usize;
        (bank, set)
    }

    /// Advances the partition one cycle. Pulls requests from its ejection
    /// port on the request crossbar (`req_ej`), pushes responses into its
    /// input port on the response crossbar (`resp_in`).
    ///
    /// Taking the two ports rather than whole crossbars is what makes a
    /// partition shardable: these are the only pieces of interconnect
    /// state it touches, and both are exclusively its own.
    ///
    /// # Errors
    ///
    /// Returns a typed [`SimError`] when an internal invariant is violated
    /// (queue overflow after a fullness check, MSHR bookkeeping leak, port
    /// protocol violation) — never on ordinary congestion.
    pub fn cycle(
        &mut self,
        now: Cycle,
        req_ej: &mut EgressPort,
        resp_in: &mut IngressPort,
    ) -> Result<(), SimError> {
        // Occupancy sampling happens at pre-step state on a pure-function-
        // of-cycle cadence, so every engine (and the fast-forward backfill)
        // observes identical depths.
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.l2_access.sample(now, self.access_queue.len() as u64);
            tr.dram_sched.sample(now, self.dram.read_queue_len() as u64);
        }
        self.intake(now, req_ej)?;
        if self.host_profile {
            let sw = gpumem_types::host_wall_clock();
            self.dram.tick(now)?;
            self.drain_dram_returns(now)?;
            self.host_dram_seconds += sw.elapsed_seconds();
        } else {
            self.dram.tick(now)?;
            self.drain_dram_returns(now)?;
        }
        self.process_fill(now)?;
        self.land_bank_completions(now)?;
        self.serve_access_queue(now)?;
        self.drain_miss_pipeline(now)?;
        self.forward_misses_to_dram(now)?;
        self.inject_responses(now, resp_in)
    }

    fn overflow(&self, queue: &'static str, now: Cycle) -> SimError {
        SimError::QueueOverflow {
            component: COMPONENT,
            queue,
            cycle: now.raw(),
        }
    }

    /// Moves one request per cycle from the crossbar ejection queue into
    /// the L2 access queue (stamping its arrival).
    fn intake(&mut self, now: Cycle, req_ej: &mut EgressPort) -> Result<(), SimError> {
        if self.access_queue.is_full() {
            return Ok(()); // ejection queue backs up → crossbar credits stall
        }
        if let Some(mut pkt) = req_ej.pop_ejected() {
            pkt.fetch.timeline.l2_arrive = Some(now);
            if self.access_queue.push(pkt.fetch).is_err() {
                return Err(self.overflow("l2_access", now));
            }
        }
        Ok(())
    }

    fn drain_dram_returns(&mut self, now: Cycle) -> Result<(), SimError> {
        while !self.response_queue.is_full() {
            match self.dram.pop_return() {
                Some(f) => {
                    if self.response_queue.push(f).is_err() {
                        return Err(self.overflow("l2_response", now));
                    }
                }
                None => break,
            }
        }
        Ok(())
    }

    /// Installs one DRAM fill per cycle: allocates the line, emits a
    /// writeback for a dirty victim, and releases every merged waiter.
    fn process_fill(&mut self, now: Cycle) -> Result<(), SimError> {
        let Some(head) = self.response_queue.front() else {
            return Ok(());
        };
        let line = head.line;
        let (bank, set) = self.map(line);
        // Resources needed in the worst case: one writeback slot, and a
        // to_icnt slot per load waiter.
        if self.wb_queue.is_full() {
            self.stats.stall_fill += 1;
            return Ok(());
        }
        let load_waiters = self
            .mshr
            .waiters_of(line)
            .map(|ws| {
                ws.iter()
                    .filter(|w| match w {
                        L2Waiter::Primary(kind) => kind.is_load(),
                        L2Waiter::Merged(slot) => self.arena.get(*slot).kind.is_load(),
                    })
                    .count()
            })
            .unwrap_or(0);
        if self.to_icnt.free() < load_waiters {
            self.stats.stall_fill += 1;
            return Ok(());
        }

        let Some(fill) = self.response_queue.pop() else {
            return Ok(());
        };
        self.stats.fills += 1;
        match self.tags[bank].fill(set, line, now) {
            ReplacementOutcome::Evicted(e) if e.dirty => {
                // Writeback ids: top bit set, partition in bits 40..63.
                let wb_id =
                    FetchId::new((1 << 63) | ((self.id.index() as u64) << 40) | self.next_wb_seq);
                self.next_wb_seq += 1;
                let wb = MemFetch::new_writeback(wb_id, e.line, self.id);
                self.stats.writebacks += 1;
                if self.wb_queue.push(wb).is_err() {
                    return Err(self.overflow("l2_writeback", now));
                }
            }
            _ => {}
        }

        // The fill *is* the primary waiter's body (it travelled to DRAM
        // and back); merged waiters come out of the arena. Waiter order —
        // primary first, then merges in arrival order — matches the old
        // clone-based path exactly.
        let dram_arrive = fill.timeline.dram_arrive;
        let dram_issue = fill.timeline.dram_issue;
        let dram_data = fill.timeline.dram_data;
        let mut primary = Some(fill);
        for w in self.mshr.complete(line) {
            match w {
                L2Waiter::Primary(kind) => {
                    let Some(body) = primary.take() else {
                        return Err(SimError::MshrLeak {
                            component: COMPONENT,
                            cycle: now.raw(),
                            detail: format!("two primary waiters on MSHR entry for {line:?}"),
                        });
                    };
                    match kind {
                        // A load primary's response is the fill itself:
                        // same id/kind/timeline as the request that
                        // allocated the entry, dram_arrive already stamped.
                        AccessKind::Load => {
                            if self.to_icnt.push(body).is_err() {
                                return Err(self.overflow("l2_to_icnt", now));
                            }
                        }
                        // A store primary fetched the line write-allocate
                        // style; it only dirties the installed line.
                        AccessKind::Store => {
                            self.tags[bank].mark_dirty(set, line);
                        }
                    }
                }
                L2Waiter::Merged(slot) => {
                    let mut f = self.arena.take(slot);
                    match f.kind {
                        AccessKind::Load => {
                            // The primary carried the line through DRAM; its
                            // stamps apply to this waiter only if it merged
                            // before the line reached the channel. A later
                            // merger keeps its whole wait in the L2 stages,
                            // so every timeline stays monotone.
                            let merged_before_dram = match (dram_arrive, f.timeline.l2_serve) {
                                (Some(arr), Some(serve)) => serve <= arr,
                                _ => false,
                            };
                            if merged_before_dram {
                                f.timeline.dram_arrive = dram_arrive;
                                f.timeline.dram_issue = dram_issue;
                                f.timeline.dram_data = dram_data;
                            }
                            if self.to_icnt.push(f).is_err() {
                                return Err(self.overflow("l2_to_icnt", now));
                            }
                        }
                        AccessKind::Store => {
                            self.tags[bank].mark_dirty(set, line);
                        }
                    }
                }
            }
        }
        // Every MSHR entry holds exactly one primary; a fill that consumed
        // no primary means the entry was missing or malformed — a leak that
        // must fail loudly, not drop the line on the floor.
        if primary.is_some() {
            return Err(SimError::MshrLeak {
                component: COMPONENT,
                cycle: now.raw(),
                detail: format!("fill for {line:?} found no primary waiter (stray fill)"),
            });
        }
        Ok(())
    }

    /// Lands finished bank accesses (load hits) into the response path.
    fn land_bank_completions(&mut self, now: Cycle) -> Result<(), SimError> {
        while let Some(head) = self.completions.peek() {
            if head.done_at > now || self.to_icnt.is_full() {
                if head.done_at <= now {
                    self.stats.stall_fill += 1;
                }
                break;
            }
            let Some(c) = self.completions.pop() else {
                break;
            };
            if self.to_icnt.push(c.fetch).is_err() {
                return Err(self.overflow("l2_to_icnt", now));
            }
        }
        Ok(())
    }

    /// Serves the head of the access queue (one access per cycle).
    fn serve_access_queue(&mut self, now: Cycle) -> Result<(), SimError> {
        let Some(head) = self.access_queue.front() else {
            return Ok(());
        };
        let line = head.line;
        let kind = head.kind;
        let (bank, set) = self.map(line);

        if self.bank_next_accept[bank] > now {
            self.stats.stall_bank_busy += 1;
            return Ok(());
        }

        // A load hit needs somewhere to put its response. If the path to
        // the interconnect is clogged (and the bank pipeline already holds
        // a backlog), stall the access queue instead of buffering
        // unboundedly — this is how response-side congestion propagates
        // back into the L2 access queue (the paper's 46% metric).
        if kind == AccessKind::Load
            && self.to_icnt.is_full()
            && self.completions.len() >= self.banks
            && self.tags[bank].probe(set, line).is_some()
        {
            self.stats.stall_fill += 1;
            return Ok(());
        }

        let resident = self.tags[bank].access(set, line, now);
        if resident {
            let Some(mut fetch) = self.access_queue.pop() else {
                return Ok(());
            };
            fetch.timeline.l2_serve = Some(now);
            match kind {
                AccessKind::Load => {
                    self.stats.load_hits += 1;
                    self.bank_next_accept[bank] = now + self.port_cycles;
                    self.completions.push(BankCompletion {
                        done_at: now + self.bank_latency,
                        seq: self.next_seq,
                        fetch,
                    });
                    self.next_seq += 1;
                }
                AccessKind::Store => {
                    self.stats.store_hits += 1;
                    self.tags[bank].mark_dirty(set, line);
                    self.bank_next_accept[bank] = now + self.port_cycles;
                }
            }
            return Ok(());
        }

        // Fault injection: a transient MSHR stall behaves exactly like a
        // full table (inert while `chaos_mshr_until` is ZERO).
        if now < self.chaos_mshr_until {
            self.stats.stall_mshr += 1;
            return Ok(());
        }

        // Miss path: merge if outstanding, else allocate + fetch from DRAM.
        if self.mshr.contains(line) {
            if !self.mshr.can_accept(line) {
                self.stats.stall_mshr += 1;
                return Ok(());
            }
            let Some(mut fetch) = self.access_queue.pop() else {
                return Ok(());
            };
            fetch.timeline.l2_serve = Some(now);
            let slot = self.arena.insert(fetch);
            if self.mshr.allocate(line, L2Waiter::Merged(slot)).is_err() {
                return Err(SimError::MshrLeak {
                    component: COMPONENT,
                    cycle: now.raw(),
                    detail: format!("merge for {line:?} rejected after capacity check"),
                });
            }
            self.stats.merged_misses += 1;
            self.bank_next_accept[bank] = now.next();
            return Ok(());
        }
        if !self.mshr.can_accept(line) {
            self.stats.stall_mshr += 1;
            return Ok(());
        }
        let Some(mut dram_req) = self.access_queue.pop() else {
            return Ok(());
        };
        dram_req.timeline.l2_serve = Some(now);
        // The downstream request always *reads* the line (write-allocate:
        // a store miss fetches the line, then the waiter dirties it). The
        // allocating request itself becomes the DRAM fetch — only its
        // original kind stays behind in the MSHR entry. The request first
        // traverses the bank pipeline (tag access + request generation)
        // before becoming eligible for the miss queue.
        if self
            .mshr
            .allocate(line, L2Waiter::Primary(dram_req.kind))
            .is_err()
        {
            return Err(SimError::MshrLeak {
                component: COMPONENT,
                cycle: now.raw(),
                detail: format!("allocation for {line:?} rejected after capacity check"),
            });
        }
        dram_req.kind = AccessKind::Load;
        self.stats.misses += 1;
        self.miss_pipeline
            .push_back((now + self.bank_latency, dram_req));
        self.bank_next_accept[bank] = now.next();
        Ok(())
    }

    /// Moves misses whose bank-pipeline delay elapsed into the bounded
    /// miss queue (in order; the head blocks on a full queue).
    fn drain_miss_pipeline(&mut self, now: Cycle) -> Result<(), SimError> {
        while let Some((ready, _)) = self.miss_pipeline.front() {
            if *ready > now {
                break;
            }
            if self.miss_queue.is_full() {
                self.stats.stall_miss_queue += 1;
                break;
            }
            let Some((_, fetch)) = self.miss_pipeline.pop_front() else {
                break;
            };
            if self.miss_queue.push(fetch).is_err() {
                return Err(self.overflow("l2_miss", now));
            }
        }
        Ok(())
    }

    fn forward_misses_to_dram(&mut self, now: Cycle) -> Result<(), SimError> {
        // Fault injection: DRAM lockout — the channel stops accepting new
        // requests (in-service ones still complete). Inert while
        // `chaos_dram_until` is ZERO.
        if now < self.chaos_dram_until {
            return Ok(());
        }
        if self.miss_queue.front().is_some() && self.dram.can_accept(AccessKind::Load) {
            if let Some(fetch) = self.miss_queue.pop() {
                if self.dram.try_push(fetch, now).is_err() {
                    return Err(self.overflow("dram_sched", now));
                }
            }
        }
        if self.wb_queue.front().is_some() && self.dram.can_accept(AccessKind::Store) {
            if let Some(wb) = self.wb_queue.pop() {
                if self.dram.try_push(wb, now).is_err() {
                    return Err(self.overflow("dram_write", now));
                }
            }
        }
        Ok(())
    }

    /// Streams one response through the data port into this partition's
    /// input port on the response crossbar.
    fn inject_responses(&mut self, now: Cycle, resp_in: &mut IngressPort) -> Result<(), SimError> {
        if self.port_free_at > now {
            return Ok(());
        }
        let Some(head) = self.to_icnt.front() else {
            return Ok(());
        };
        if !resp_in.can_inject() {
            return Ok(());
        }
        let Some(bytes) = head.response_bytes(self.line_bytes) else {
            return Err(SimError::PortProtocol {
                component: COMPONENT,
                cycle: now.raw(),
                detail: format!(
                    "non-load fetch {:?} reached the response port (only loads may enter l2_to_icnt)",
                    head.id
                ),
            });
        };
        let Some(mut fetch) = self.to_icnt.pop() else {
            return Ok(());
        };
        fetch.timeline.resp_inject = Some(now);
        let dest = fetch.core.index();
        let packet = Packet::new(fetch, dest, bytes, self.flit_bytes);
        if resp_in.try_inject(packet).is_err() {
            return Err(SimError::PortProtocol {
                component: COMPONENT,
                cycle: now.raw(),
                detail: "response crossbar rejected an injection after can_inject".to_owned(),
            });
        }
        self.port_free_at = now + self.port_cycles;
        Ok(())
    }

    /// Per-cycle statistics bookkeeping.
    pub fn observe(&mut self) {
        self.access_queue.observe();
        self.miss_queue.observe();
        self.wb_queue.observe();
        self.response_queue.observe();
        self.to_icnt.observe();
        self.dram.observe();
    }

    /// The earliest cycle at or after `now` at which this partition can do
    /// anything other than repeat a head-of-queue bank-busy stall, or
    /// `None` when it is completely idle.
    ///
    /// Every path through [`cycle`](MemoryPartition::cycle) that moves a
    /// request or bumps a stall counter other than
    /// [`L2Stats::stall_bank_busy`] forces a return of `now`; the only
    /// deferred candidates are timer expiries (bank completions, the bank
    /// pipeline, the response port, DRAM timing) plus the bank-busy window
    /// of the access-queue head, whose per-cycle stall accounting
    /// [`fast_forward`](MemoryPartition::fast_forward) replays in closed
    /// form.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // A non-empty response, miss or writeback queue can interact with
        // fill installs or the DRAM queues this very cycle.
        if !self.response_queue.is_empty()
            || !self.miss_queue.is_empty()
            || !self.wb_queue.is_empty()
        {
            return Some(now);
        }
        let mut earliest: Option<Cycle> = None;
        let fold = |t: Cycle, earliest: &mut Option<Cycle>| {
            *earliest = Some(match *earliest {
                Some(e) if e <= t => e,
                _ => t,
            });
        };
        if let Some(head) = self.completions.peek() {
            if head.done_at <= now {
                return Some(now);
            }
            fold(head.done_at, &mut earliest);
        }
        if let Some(head) = self.access_queue.front() {
            let (bank, _) = self.map(head.line);
            let free_at = self.bank_next_accept[bank];
            if free_at <= now {
                return Some(now);
            }
            fold(free_at, &mut earliest);
        }
        if let Some((ready, _)) = self.miss_pipeline.front() {
            if *ready <= now {
                return Some(now);
            }
            fold(*ready, &mut earliest);
        }
        if !self.to_icnt.is_empty() {
            if self.port_free_at <= now {
                return Some(now);
            }
            fold(self.port_free_at, &mut earliest);
        }
        match self.dram.next_event(now) {
            Some(t) if t <= now => return Some(now),
            Some(t) => fold(t, &mut earliest),
            None => {}
        }
        earliest
    }

    /// Replays `cycles` consecutive cycles proven inactive via
    /// [`next_event`](MemoryPartition::next_event): advances queue and
    /// DRAM occupancy statistics, and accounts the per-cycle bank-busy
    /// stall of a waiting access-queue head.
    pub fn fast_forward(&mut self, now: Cycle, cycles: u64) {
        if cycles == 0 {
            return;
        }
        if let Some(head) = self.access_queue.front() {
            let (bank, _) = self.map(head.line);
            debug_assert!(
                self.bank_next_accept[bank] > now,
                "skipped window must start inside a bank-busy stall"
            );
            self.stats.stall_bank_busy += cycles;
        }
        self.access_queue.observe_many(cycles);
        self.miss_queue.observe_many(cycles);
        self.wb_queue.observe_many(cycles);
        self.response_queue.observe_many(cycles);
        self.to_icnt.observe_many(cycles);
        self.dram.observe_many(cycles);
        // Queue depths are provably frozen over the skipped window, so the
        // probes backfill the cadence points with the current depths.
        if let Some(tr) = self.trace.as_deref_mut() {
            let access_depth = self.access_queue.len() as u64;
            let dram_depth = self.dram.read_queue_len() as u64;
            tr.l2_access.backfill(now, cycles, access_depth);
            tr.dram_sched.backfill(now, cycles, dram_depth);
        }
    }

    /// True when no request is anywhere inside the partition or its DRAM.
    pub fn is_idle(&self) -> bool {
        self.access_queue.is_empty()
            && self.miss_pipeline.is_empty()
            && self.miss_queue.is_empty()
            && self.wb_queue.is_empty()
            && self.response_queue.is_empty()
            && self.to_icnt.is_empty()
            && self.completions.is_empty()
            && self.mshr.is_empty()
            && self.dram.is_idle()
    }

    /// L2 slice counters.
    pub fn stats(&self) -> &L2Stats {
        &self.stats
    }

    /// Occupancy of the L2 access queue (Section III's 46% metric).
    pub fn access_queue_stats(&self) -> &QueueStats {
        self.access_queue.stats()
    }

    /// Occupancy of the L2 miss queue.
    pub fn miss_queue_stats(&self) -> &QueueStats {
        self.miss_queue.stats()
    }

    /// Occupancy of the writeback queue towards the DRAM write scheduler.
    pub fn wb_queue_stats(&self) -> &QueueStats {
        self.wb_queue.stats()
    }

    /// Occupancy of the L2 response queue.
    pub fn response_queue_stats(&self) -> &QueueStats {
        self.response_queue.stats()
    }

    /// Occupancy of the response path towards the interconnect.
    pub fn to_icnt_queue_stats(&self) -> &QueueStats {
        self.to_icnt.stats()
    }

    /// The DRAM channel behind this partition.
    pub fn dram(&self) -> &DramChannel {
        &self.dram
    }

    /// Fault injection: stall the MSHR miss path (as if the table were
    /// full) until `until`.
    pub fn chaos_stall_mshr(&mut self, until: Cycle) {
        self.chaos_mshr_until = until;
    }

    /// Fault injection: lock the DRAM channel intake (in-service requests
    /// still complete) until `until`.
    pub fn chaos_lock_dram(&mut self, until: Cycle) {
        self.chaos_dram_until = until;
    }

    /// Pipeline-ordered occupancy of every stage in this partition, for
    /// liveness reporting and wedge diagnosis. Stages with zero pending
    /// work are included so the breakdown has a stable shape.
    pub fn pending_breakdown(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("l2_access", self.access_queue.len() as u64),
            (
                "l2_bank_pipeline",
                (self.miss_pipeline.len() + self.completions.len()) as u64,
            ),
            ("l2_mshr", self.mshr.len() as u64),
            ("l2_miss", self.miss_queue.len() as u64),
            ("l2_writeback", self.wb_queue.len() as u64),
            ("dram", self.dram.in_flight() as u64),
            ("l2_response", self.response_queue.len() as u64),
            ("l2_to_icnt", self.to_icnt.len() as u64),
        ]
    }

    /// Total physical fetches resident in this partition (MSHR waiter
    /// handles are excluded — their bodies are counted where they sit).
    pub fn pending_requests(&self) -> u64 {
        (self.access_queue.len()
            + self.miss_pipeline.len()
            + self.miss_queue.len()
            + self.wb_queue.len()
            + self.response_queue.len()
            + self.to_icnt.len()
            + self.completions.len()
            + self.dram.in_flight()) as u64
    }

    /// Pipeline-ordered names of the stages currently unable to accept
    /// work — the raw material for a wedge diagnosis blocked chain.
    pub fn blocked_stages(&self, now: Cycle) -> Vec<&'static str> {
        let mut blocked = Vec::new();
        if self.access_queue.is_full() {
            blocked.push("l2_access(full)");
        }
        if self.mshr.len() >= self.mshr.capacity() {
            blocked.push("l2_mshr(full)");
        }
        if now < self.chaos_mshr_until {
            blocked.push("l2_mshr(chaos-stalled)");
        }
        if self.miss_queue.is_full() {
            blocked.push("l2_miss(full)");
        }
        if self.wb_queue.is_full() {
            blocked.push("l2_writeback(full)");
        }
        if now < self.chaos_dram_until {
            blocked.push("dram(locked)");
        }
        if !self.dram.can_accept(AccessKind::Load) {
            blocked.push("dram_sched(full)");
        }
        if self.response_queue.is_full() {
            blocked.push("l2_response(full)");
        }
        if self.to_icnt.is_full() {
            blocked.push("l2_to_icnt(full)");
        }
        blocked
    }

    /// Every fetch physically resident in this partition, for oldest-fetch
    /// wedge diagnosis. Merged-miss bodies parked in the arena are
    /// intentionally skipped: their primary travels through DRAM and is
    /// surveyed there.
    pub fn fetches(&self) -> impl Iterator<Item = &MemFetch> {
        self.access_queue
            .iter()
            .chain(self.miss_pipeline.iter().map(|(_, f)| f))
            .chain(self.miss_queue.iter())
            .chain(self.wb_queue.iter())
            .chain(self.response_queue.iter())
            .chain(self.to_icnt.iter())
            .chain(self.completions.iter().map(|c| &c.fetch))
            .chain(self.dram.fetches())
    }
}
